//! RAII tracing spans with a thread-local span stack.
//!
//! A span is a scoped timer: opening pushes a frame on the current thread's
//! stack, dropping pops it and records the elapsed time into the histogram
//! `span.<name>` (unit: seconds). Because the stack tracks nesting, a
//! parent additionally records its **self time** — elapsed minus time spent
//! in child spans — into `span.<name>.self`, so phase breakdowns like
//! `index.build` → `index.build.spill` / `index.build.aggregate` sum
//! without double counting.
//!
//! Guards are `!Send` by construction (they time one thread's work) and
//! must be dropped in LIFO order, which scoped `let _span = …;` usage
//! guarantees.

use std::cell::RefCell;
use std::time::Instant;

use crate::{Histogram, Registry, Unit};

struct Frame {
    name: &'static str,
    /// Nanoseconds spent in already-closed child spans.
    child_nanos: u64,
}

thread_local! {
    static STACK: RefCell<Vec<Frame>> = const { RefCell::new(Vec::new()) };
}

/// Where a closing span records its timings: resolved lazily by name (the
/// one-off [`span`] path) or into histograms cached at handle creation
/// (the hot-path [`SpanHandle`]).
enum Recorder {
    Lazy(Registry),
    Cached {
        total: Histogram,
        exclusive: Histogram,
    },
}

/// Scoped timer; see the module docs. Created by [`Registry::span`], the
/// free function [`span`] (global registry), or [`SpanHandle::start`].
pub struct SpanGuard {
    /// `None` when recording was disabled at open time — the drop is free.
    recorder: Option<Recorder>,
    name: &'static str,
    start: Instant,
    // Spans time one thread; keep the guard on it.
    _not_send: std::marker::PhantomData<*const ()>,
}

impl SpanGuard {
    pub(crate) fn open(registry: Registry, name: &'static str) -> SpanGuard {
        let recorder = registry.is_enabled().then_some(Recorder::Lazy(registry));
        Self::with_recorder(recorder, name)
    }

    fn with_recorder(recorder: Option<Recorder>, name: &'static str) -> SpanGuard {
        if recorder.is_some() {
            STACK.with(|s| {
                s.borrow_mut().push(Frame {
                    name,
                    child_nanos: 0,
                })
            });
        }
        SpanGuard {
            recorder,
            name,
            start: Instant::now(),
            _not_send: std::marker::PhantomData,
        }
    }

    /// The span's name.
    pub fn name(&self) -> &'static str {
        self.name
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(recorder) = self.recorder.take() else {
            return;
        };
        let elapsed = self.start.elapsed().as_nanos().min(u64::MAX as u128) as u64;
        let child_nanos = STACK.with(|s| {
            let mut stack = s.borrow_mut();
            let frame = stack.pop();
            debug_assert!(
                frame.as_ref().is_some_and(|f| f.name == self.name),
                "span stack corrupted: expected {}, found {:?}",
                self.name,
                frame.as_ref().map(|f| f.name)
            );
            if let Some(parent) = stack.last_mut() {
                parent.child_nanos += elapsed;
            }
            frame.map_or(0, |f| f.child_nanos)
        });
        match recorder {
            Recorder::Lazy(registry) => {
                let total = registry.histogram(
                    &format!("span.{}", self.name),
                    "span wall time",
                    Unit::Seconds,
                );
                total.record_nanos(elapsed);
                if child_nanos > 0 {
                    let exclusive = registry.histogram(
                        &format!("span.{}.self", self.name),
                        "span wall time excluding child spans",
                        Unit::Seconds,
                    );
                    exclusive.record_nanos(elapsed.saturating_sub(child_nanos));
                }
            }
            Recorder::Cached { total, exclusive } => {
                total.record_nanos(elapsed);
                if child_nanos > 0 {
                    exclusive.record_nanos(elapsed.saturating_sub(child_nanos));
                }
            }
        }
    }
}

/// A span whose histograms were resolved once up front: `start` and the
/// guard's drop touch no registry lock and format no name, just the
/// thread-local stack and a few atomic adds. Use for spans opened per
/// query or per IO, where [`span`]'s lookup cost shows up in profiles.
///
/// Cloning shares the underlying histograms.
#[derive(Clone)]
pub struct SpanHandle {
    registry: Registry,
    name: &'static str,
    total: Histogram,
    exclusive: Histogram,
}

impl SpanHandle {
    pub(crate) fn register(registry: Registry, name: &'static str) -> SpanHandle {
        let total = registry.histogram(&format!("span.{name}"), "span wall time", Unit::Seconds);
        let exclusive = registry.histogram(
            &format!("span.{name}.self"),
            "span wall time excluding child spans",
            Unit::Seconds,
        );
        SpanHandle {
            registry,
            name,
            total,
            exclusive,
        }
    }

    /// Opens a span recording into the pre-registered histograms.
    pub fn start(&self) -> SpanGuard {
        let recorder = self.registry.is_enabled().then(|| Recorder::Cached {
            total: self.total.clone(),
            exclusive: self.exclusive.clone(),
        });
        SpanGuard::with_recorder(recorder, self.name)
    }
}

/// Opens a span on the global registry.
pub fn span(name: &'static str) -> SpanGuard {
    Registry::global().span(name)
}

/// Pre-registers a span's histograms on the global registry; see
/// [`SpanHandle`].
pub fn span_handle(name: &'static str) -> SpanHandle {
    Registry::global().span_handle(name)
}

/// Depth of the current thread's span stack (0 outside any span).
pub fn span_depth() -> usize {
    STACK.with(|s| s.borrow().len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MetricValue;

    fn hist_of(reg: &Registry, name: &str) -> crate::HistogramSnapshot {
        for m in reg.snapshot() {
            if m.name == name {
                if let MetricValue::Histogram(h) = m.value {
                    return h;
                }
            }
        }
        panic!("metric {name} not found");
    }

    #[test]
    fn span_records_and_stack_balances() {
        let reg = Registry::new();
        assert_eq!(span_depth(), 0);
        {
            let _outer = reg.span("outer");
            assert_eq!(span_depth(), 1);
            std::thread::sleep(std::time::Duration::from_millis(2));
            {
                let _inner = reg.span("inner");
                assert_eq!(span_depth(), 2);
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            assert_eq!(span_depth(), 1);
        }
        assert_eq!(span_depth(), 0);
        let outer = hist_of(&reg, "span.outer");
        let inner = hist_of(&reg, "span.inner");
        let outer_self = hist_of(&reg, "span.outer.self");
        assert_eq!(outer.count, 1);
        assert_eq!(inner.count, 1);
        assert_eq!(outer_self.count, 1);
        // total(outer) ≥ total(inner), and self excludes the child.
        assert!(outer.sum >= inner.sum);
        assert!(outer_self.sum <= outer.sum - inner.sum);
    }

    #[test]
    fn disabled_spans_cost_nothing_and_keep_stack_empty() {
        let reg = Registry::new();
        reg.set_enabled(false);
        {
            let _s = reg.span("quiet");
            assert_eq!(span_depth(), 0);
        }
        reg.set_enabled(true);
        assert!(reg.snapshot().iter().all(|m| m.name != "span.quiet"));
    }

    #[test]
    fn sibling_spans_accumulate_into_one_histogram() {
        let reg = Registry::new();
        for _ in 0..5 {
            let _s = reg.span("repeat");
        }
        assert_eq!(hist_of(&reg, "span.repeat").count, 5);
    }

    #[test]
    fn handle_spans_record_like_lazy_spans_and_respect_disable() {
        let reg = Registry::new();
        let handle = reg.span_handle("hot");
        {
            let _outer = handle.start();
            assert_eq!(span_depth(), 1);
            let _inner = reg.span("hot.child");
        }
        assert_eq!(span_depth(), 0);
        assert_eq!(hist_of(&reg, "span.hot").count, 1);
        assert_eq!(hist_of(&reg, "span.hot.child").count, 1);
        assert_eq!(hist_of(&reg, "span.hot.self").count, 1);
        // Disabling the registry disables handles registered earlier.
        reg.set_enabled(false);
        {
            let _quiet = handle.start();
            assert_eq!(span_depth(), 0);
        }
        reg.set_enabled(true);
        assert_eq!(hist_of(&reg, "span.hot").count, 1);
    }

    #[test]
    fn spans_on_different_threads_do_not_interfere() {
        let reg = Registry::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                let reg = reg.clone();
                s.spawn(move || {
                    let _a = reg.span("threaded");
                    assert_eq!(span_depth(), 1);
                    let _b = reg.span("threaded.child");
                    assert_eq!(span_depth(), 2);
                });
            }
        });
        assert_eq!(hist_of(&reg, "span.threaded").count, 4);
        assert_eq!(hist_of(&reg, "span.threaded.child").count, 4);
    }
}
