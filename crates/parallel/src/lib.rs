//! Scoped-thread work distribution.
//!
//! The index builder, the batch query engine, and the facade all need the
//! same shape of parallelism: map a function over a slice on N threads and
//! get the results back **in input order**, deterministically, regardless of
//! which thread finished first. `std::thread::scope` gives us that without
//! a work-stealing runtime: items are handed out through a shared cursor
//! (so a slow item never stalls the queue behind a fixed pre-partition) and
//! each result lands in its input slot.
//!
//! Panics in workers propagate: the scope joins every thread, and the first
//! worker panic is resumed on the caller.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Number of worker threads to use when the caller does not pin one:
/// the machine's available parallelism, or 1 if unknown.
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Maps `f` over `items` on up to `threads` threads; `results[i]` is always
/// `f(i, &items[i])`. With `threads <= 1` (or one item) this runs inline on
/// the caller with no spawn at all, so serial paths pay nothing.
pub fn map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let workers = threads.min(items.len());
    if workers <= 1 {
        return items
            .iter()
            .enumerate()
            .map(|(i, item)| f(i, item))
            .collect();
    }
    let slots: Mutex<Vec<Option<R>>> = Mutex::new((0..items.len()).map(|_| None).collect());
    let cursor = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                let Some(item) = items.get(i) else { break };
                let result = f(i, item);
                slots.lock().unwrap()[i] = Some(result);
            });
        }
    });
    collect_slots(slots)
}

fn collect_slots<R>(slots: Mutex<Vec<Option<R>>>) -> Vec<R> {
    slots
        .into_inner()
        .unwrap()
        .into_iter()
        .map(|slot| slot.expect("worker skipped a slot"))
        .collect()
}

/// Like [`map`], but each item is visited through `&mut`: the slice is
/// split into exclusive references handed out one at a time, so workers
/// mutate disjoint items without locks around the items themselves.
pub fn map_mut<T, R, F>(items: &mut [T], threads: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, &mut T) -> R + Sync,
{
    let workers = threads.min(items.len());
    if workers <= 1 {
        return items
            .iter_mut()
            .enumerate()
            .map(|(i, item)| f(i, item))
            .collect();
    }
    let slots: Mutex<Vec<Option<R>>> = Mutex::new((0..items.len()).map(|_| None).collect());
    let queue = Mutex::new(items.iter_mut().enumerate());
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let next = queue.lock().unwrap().next();
                let Some((i, item)) = next else { break };
                let result = f(i, item);
                slots.lock().unwrap()[i] = Some(result);
            });
        }
    });
    collect_slots(slots)
}

/// Maps a fallible `f` and short-circuits on the first error **by input
/// order** (matching what a serial loop would report), after all workers
/// drain.
pub fn try_map<T, R, E, F>(items: &[T], threads: usize, f: F) -> Result<Vec<R>, E>
where
    T: Sync,
    R: Send,
    E: Send,
    F: Fn(usize, &T) -> Result<R, E> + Sync,
{
    map(items, threads, f).into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_in_input_order() {
        let items: Vec<usize> = (0..257).collect();
        for threads in [1, 2, 8] {
            let out = map(&items, threads, |i, &x| {
                assert_eq!(i, x);
                x * 2
            });
            assert_eq!(out, items.iter().map(|x| x * 2).collect::<Vec<_>>());
        }
    }

    #[test]
    fn map_mut_mutates_every_item_exactly_once() {
        let mut items = vec![0u32; 100];
        let out = map_mut(&mut items, 4, |i, item| {
            *item += 1;
            i
        });
        assert!(items.iter().all(|&x| x == 1));
        assert_eq!(out, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn try_map_reports_first_error_by_input_order() {
        let items: Vec<usize> = (0..64).collect();
        let r: Result<Vec<usize>, usize> =
            try_map(
                &items,
                8,
                |_, &x| {
                    if x == 7 || x == 40 {
                        Err(x)
                    } else {
                        Ok(x)
                    }
                },
            );
        assert_eq!(r, Err(7));
    }

    #[test]
    fn empty_and_single_inputs_work() {
        let empty: Vec<u32> = Vec::new();
        assert!(map(&empty, 8, |_, &x| x).is_empty());
        assert_eq!(map(&[5u32], 8, |_, &x| x + 1), vec![6]);
    }

    #[test]
    fn worker_panic_propagates() {
        let items = vec![0u32; 16];
        let caught = std::panic::catch_unwind(|| {
            map(&items, 4, |i, _| {
                if i == 3 {
                    panic!("boom");
                }
                i
            })
        });
        assert!(caught.is_err());
    }
}
