//! Parallel batch query execution with failure isolation and load
//! shedding.
//!
//! Memorization evaluation is a *throughput* workload: thousands of model
//! generations are checked against the training corpus, and each query is
//! independent. [`BatchSearcher`] fans a query set out over a thread pool
//! and returns outcomes **in input order**, each with per-query
//! [`crate::QueryStats`] attributed through that query's own IO accumulator.
//!
//! This only became safe/fast when the index layer dropped its `Mutex<File>`
//! readers: a [`ndss_index::DiskIndex`] is `Sync` with positioned reads, so
//! N threads issue N concurrent preads into the same files with no lock
//! convoy, and the sharded hot caches are shared across all queries in the
//! batch.
//!
//! Batches survive individual failures: a [`FailurePolicy`] decides whether
//! one query's budget exhaustion or IO error poisons the batch
//! ([`FailurePolicy::FailFast`]) or stays its own per-query `Err`
//! ([`FailurePolicy::Isolate`]); an admission cap sheds excess queries up
//! front ([`crate::QueryError::Overloaded`]); and a batch-wide deadline
//! bounds the whole run — queries not started by then are shed, queries in
//! flight stop at their next governor checkpoint with a sound partial
//! result.

use std::time::{Duration, Instant};

use ndss_hash::TokenId;
use ndss_index::IndexAccess;

use crate::governor::{CancelToken, QueryBudget};
use crate::search::{NearDupSearcher, PrefixFilter, SearchOutcome};
use crate::QueryError;

/// Why the batch engine shed a query before starting it, reported in
/// [`QueryError::Overloaded`]. An admission-cap shed means the batch was
/// over capacity (add workers, shrink batches); a deadline shed means the
/// latency budget ran out first (raise the deadline, speed up queries) —
/// conflating them used to misreport deadline sheds as cap sheds with a
/// fabricated cap equal to the batch size.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShedReason {
    /// The query's position was at or beyond the batch's admission cap.
    AdmissionCap {
        /// The admission cap in force.
        cap: usize,
    },
    /// The batch-wide deadline had already passed when the query came up
    /// for execution.
    BatchDeadline,
}

impl std::fmt::Display for ShedReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShedReason::AdmissionCap { cap } => write!(f, "admission cap {cap}"),
            ShedReason::BatchDeadline => write!(f, "batch deadline"),
        }
    }
}

/// How a batch reacts to one query failing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FailurePolicy {
    /// Abort the whole batch on the first failure: workers stop picking up
    /// new queries and in-flight queries abandon work at their next
    /// governor checkpoint. This is [`BatchSearcher::search_all`]'s
    /// behavior.
    #[default]
    FailFast,
    /// Isolate failures: every query runs to its own `Ok`/`Err`, so one
    /// poisoned query (bad input, exhausted budget, failed IO) never
    /// discards the rest of the batch's work.
    Isolate,
}

/// Runs many queries against one index across a thread pool.
///
/// Results are deterministic: `search_all(queries, θ)[i]` equals
/// `NearDupSearcher::search(queries[i], θ)`, whatever the thread count.
/// Stats are exact per query, but timing fields vary run to run, and with
/// a shared hot-list cache `io_bytes`/hit counts depend on which query
/// touched a list first (disable the cache for schedule-independent IO
/// attribution).
pub struct BatchSearcher<'a, I: IndexAccess + ?Sized> {
    searcher: NearDupSearcher<'a, I>,
    threads: usize,
    policy: FailurePolicy,
    admission_cap: Option<usize>,
    batch_deadline: Option<Duration>,
    budget: QueryBudget,
}

impl<'a, I: IndexAccess + ?Sized> BatchSearcher<'a, I> {
    /// A batch searcher with prefix filtering disabled and one thread per
    /// available core.
    pub fn new(index: &'a I) -> Result<Self, QueryError> {
        Self::with_prefix_filter(index, PrefixFilter::Disabled)
    }

    /// A batch searcher with the given prefix-filtering policy.
    pub fn with_prefix_filter(index: &'a I, filter: PrefixFilter) -> Result<Self, QueryError> {
        Ok(Self {
            searcher: NearDupSearcher::with_prefix_filter(index, filter)?,
            threads: ndss_parallel::default_threads(),
            policy: FailurePolicy::default(),
            admission_cap: None,
            batch_deadline: None,
            budget: QueryBudget::unlimited(),
        })
    }

    /// Pins the worker-thread count (`0` or `1` runs serially inline).
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Sets how [`Self::search_all_governed`] reacts to per-query failures
    /// (default [`FailurePolicy::FailFast`]).
    pub fn failure_policy(mut self, policy: FailurePolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Admission control: at most `cap` queries per batch are admitted;
    /// the rest are shed immediately with [`QueryError::Overloaded`]
    /// (counted in `query.shed`) without consuming index IO.
    pub fn admission_cap(mut self, cap: usize) -> Self {
        self.admission_cap = Some(cap);
        self
    }

    /// A wall-clock deadline for the whole batch, measured from the start
    /// of `search_all*`. Queries not started by the deadline are shed
    /// ([`QueryError::Overloaded`]); queries in flight observe it as their
    /// own deadline and stop with a sound partial result
    /// ([`QueryError::BudgetExceeded`]).
    pub fn batch_deadline(mut self, deadline: Duration) -> Self {
        self.batch_deadline = Some(deadline);
        self
    }

    /// A per-query resource budget applied to every query in the batch
    /// (combined with the batch deadline, whichever is earlier).
    pub fn budget(mut self, budget: QueryBudget) -> Self {
        self.budget = budget;
        self
    }

    /// The underlying single-query searcher (shared configuration).
    pub fn searcher(&self) -> &NearDupSearcher<'a, I> {
        &self.searcher
    }

    /// Runs every query at threshold `theta`; `results[i]` corresponds to
    /// `queries[i]`. Fails fast with the first error **in input order**
    /// among queries that failed on their own (not ones cancelled by the
    /// abort below).
    ///
    /// Fail-fast is cooperative, not instantaneous: when any query fails,
    /// a shared abort flag stops workers from picking up further queries,
    /// and queries already in flight abandon work at their next governor
    /// checkpoint (between stages, posting lists, and candidate texts) —
    /// so a failed batch stops issuing new IO promptly. Queries that
    /// completed before the failure was observed have their results
    /// discarded; there is no rollback, only early termination.
    pub fn search_all(
        &self,
        queries: &[Vec<TokenId>],
        theta: f64,
    ) -> Result<Vec<SearchOutcome>, QueryError> {
        let per_query = self.run(queries, theta, FailurePolicy::FailFast);
        let mut outcomes = Vec::with_capacity(per_query.len());
        let mut first_cancelled = None;
        for result in per_query {
            match result {
                Ok(outcome) => outcomes.push(outcome),
                // A cancelled query is collateral of the real failure;
                // keep scanning for the error that tripped the abort.
                Err(QueryError::Cancelled) => {
                    first_cancelled.get_or_insert(QueryError::Cancelled);
                }
                Err(e) => return Err(e),
            }
        }
        match first_cancelled {
            // Defensive: cancellation implies some query errored first.
            Some(e) => Err(e),
            None => Ok(outcomes),
        }
    }

    /// Runs every query under the configured [`FailurePolicy`], admission
    /// cap, batch deadline, and per-query budget, returning one `Result`
    /// per query in input order. Under [`FailurePolicy::Isolate`] a
    /// poisoned query is exactly one `Err` — every other query's outcome
    /// is bit-identical to a solo run.
    pub fn search_all_governed(
        &self,
        queries: &[Vec<TokenId>],
        theta: f64,
    ) -> Vec<Result<SearchOutcome, QueryError>> {
        self.run(queries, theta, self.policy)
    }

    fn run(
        &self,
        queries: &[Vec<TokenId>],
        theta: f64,
        policy: FailurePolicy,
    ) -> Vec<Result<SearchOutcome, QueryError>> {
        let _span = ndss_obs::span("query.batch");
        let reg = ndss_obs::Registry::global();
        let queue_wait = reg.histogram(
            "query.batch.queue_wait.seconds",
            "Delay between batch start and each query's pickup by a worker",
            ndss_obs::Unit::Seconds,
        );
        let start = Instant::now();
        let deadline = self.batch_deadline.map(|d| start + d);
        let budget = match deadline {
            Some(d) => self.budget.clone().deadline_at(d),
            None => self.budget.clone(),
        };
        let cap = self.admission_cap.unwrap_or(usize::MAX);
        let abort = CancelToken::new();

        let results = ndss_parallel::map(queries, self.threads, |i, query| {
            // Pickup delay: how long this query sat in the work queue behind
            // earlier queries (p50/p95/p99 come from the histogram).
            queue_wait.record_duration(start.elapsed());
            // Load shedding, before any index work: over the admission cap,
            // past the batch deadline, or the batch already failed fast.
            if i >= cap {
                self.searcher.metrics().record_shed();
                return Err(QueryError::Overloaded {
                    position: i,
                    reason: ShedReason::AdmissionCap { cap },
                });
            }
            if deadline.is_some_and(|d| Instant::now() >= d) {
                self.searcher.metrics().record_shed();
                return Err(QueryError::Overloaded {
                    position: i,
                    reason: ShedReason::BatchDeadline,
                });
            }
            if abort.is_cancelled() {
                return Err(QueryError::Cancelled);
            }
            let result = self
                .searcher
                .search_cancellable(query, theta, &budget, &abort);
            if result.is_err() && policy == FailurePolicy::FailFast {
                abort.cancel();
            }
            result
        });

        // Utilization: total per-query busy time over thread-seconds of
        // wall time. 100% = every worker searching the whole batch.
        let wall = start.elapsed();
        if !results.is_empty() && !wall.is_zero() {
            let busy: Duration = results
                .iter()
                .filter_map(|r| r.as_ref().ok().map(|o| o.stats.total))
                .sum();
            let pct = 100.0 * busy.as_secs_f64() / (self.threads as f64 * wall.as_secs_f64());
            reg.gauge(
                "query.batch.utilization.percent",
                "Worker busy time over thread-seconds in the last batch (0-100)",
            )
            .set(pct.round() as i64);
        }
        results
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ndss_corpus::{CorpusSource, SyntheticCorpusBuilder};
    use ndss_index::{IndexConfig, MemoryIndex};

    fn workload() -> (ndss_corpus::InMemoryCorpus, Vec<Vec<u32>>) {
        let (corpus, planted) = SyntheticCorpusBuilder::new(71)
            .num_texts(50)
            .duplicates_per_text(1.0)
            .mutation_rate(0.03)
            .build();
        let queries: Vec<Vec<u32>> = planted
            .iter()
            .take(12)
            .map(|p| corpus.sequence_to_vec(p.dst).unwrap())
            .collect();
        (corpus, queries)
    }

    #[test]
    fn batch_matches_serial_in_input_order() {
        let (corpus, queries) = workload();
        let index = MemoryIndex::build(&corpus, IndexConfig::new(16, 25, 9)).unwrap();

        let serial = NearDupSearcher::new(&index).unwrap();
        let expected: Vec<_> = queries
            .iter()
            .map(|q| serial.search(q, 0.8).unwrap().enumerate_all())
            .collect();

        for threads in [1, 4, 8] {
            let batch = BatchSearcher::new(&index).unwrap().threads(threads);
            let got = batch.search_all(&queries, 0.8).unwrap();
            assert_eq!(got.len(), queries.len());
            for (i, outcome) in got.iter().enumerate() {
                assert_eq!(
                    outcome.enumerate_all(),
                    expected[i],
                    "query {i} diverged at {threads} threads"
                );
            }
        }
    }

    #[test]
    fn empty_batch_and_bad_query_propagate() {
        let (corpus, _) = SyntheticCorpusBuilder::new(72).num_texts(5).build();
        let index = MemoryIndex::build(&corpus, IndexConfig::new(4, 25, 1)).unwrap();
        let batch = BatchSearcher::new(&index).unwrap().threads(4);
        assert!(batch.search_all(&[], 0.8).unwrap().is_empty());
        let queries = vec![vec![1u32, 2, 3], Vec::new()];
        assert!(matches!(
            batch.search_all(&queries, 0.8),
            Err(QueryError::EmptyQuery)
        ));
    }

    /// Isolate mode: the poisoned query is exactly one `Err` at its own
    /// index; every other outcome is bit-identical to a solo run.
    #[test]
    fn isolate_mode_confines_a_poisoned_query() {
        let (corpus, mut queries) = workload();
        let index = MemoryIndex::build(&corpus, IndexConfig::new(16, 25, 9)).unwrap();
        let serial = NearDupSearcher::new(&index).unwrap();
        let expected: Vec<_> = queries
            .iter()
            .map(|q| serial.search(q, 0.8).unwrap().enumerate_all())
            .collect();
        let poisoned = 3;
        queries[poisoned] = Vec::new(); // EmptyQuery on arrival

        for threads in [1, 4] {
            let batch = BatchSearcher::new(&index)
                .unwrap()
                .threads(threads)
                .failure_policy(FailurePolicy::Isolate);
            let results = batch.search_all_governed(&queries, 0.8);
            assert_eq!(results.len(), queries.len());
            for (i, r) in results.iter().enumerate() {
                if i == poisoned {
                    assert!(matches!(r, Err(QueryError::EmptyQuery)), "index {i}");
                } else {
                    assert_eq!(
                        r.as_ref().unwrap().enumerate_all(),
                        expected[i],
                        "index {i}"
                    );
                }
            }
        }
    }

    /// Admission control sheds exactly the queries beyond the cap, and the
    /// admitted prefix is unchanged.
    #[test]
    fn admission_cap_sheds_the_tail() {
        let (corpus, queries) = workload();
        let index = MemoryIndex::build(&corpus, IndexConfig::new(16, 25, 9)).unwrap();
        let cap = 5;
        let batch = BatchSearcher::new(&index)
            .unwrap()
            .threads(4)
            .failure_policy(FailurePolicy::Isolate)
            .admission_cap(cap);
        let results = batch.search_all_governed(&queries, 0.8);
        for (i, r) in results.iter().enumerate() {
            if i < cap {
                assert!(r.is_ok(), "admitted query {i} failed: {r:?}");
            } else {
                assert!(
                    matches!(r, Err(QueryError::Overloaded { position, reason })
                        if *position == i && *reason == (ShedReason::AdmissionCap { cap })),
                    "query {i} not shed: {r:?}"
                );
            }
        }
    }

    /// A zero batch deadline sheds every query before any index work.
    #[test]
    fn expired_batch_deadline_sheds_everything() {
        let (corpus, queries) = workload();
        let index = MemoryIndex::build(&corpus, IndexConfig::new(16, 25, 9)).unwrap();
        let batch = BatchSearcher::new(&index)
            .unwrap()
            .threads(4)
            .failure_policy(FailurePolicy::Isolate)
            .batch_deadline(Duration::ZERO);
        let results = batch.search_all_governed(&queries, 0.8);
        assert!(results.iter().all(|r| matches!(
            r,
            Err(QueryError::Overloaded {
                reason: ShedReason::BatchDeadline,
                ..
            })
        )));
    }
}
