//! Parallel batch query execution.
//!
//! Memorization evaluation is a *throughput* workload: thousands of model
//! generations are checked against the training corpus, and each query is
//! independent. [`BatchSearcher`] fans a query set out over a thread pool
//! and returns outcomes **in input order**, each with per-query
//! [`crate::QueryStats`] attributed through that query's own IO accumulator.
//!
//! This only became safe/fast when the index layer dropped its `Mutex<File>`
//! readers: a [`ndss_index::DiskIndex`] is `Sync` with positioned reads, so
//! N threads issue N concurrent preads into the same files with no lock
//! convoy, and the sharded hot caches are shared across all queries in the
//! batch.

use ndss_hash::TokenId;
use ndss_index::IndexAccess;

use crate::search::{NearDupSearcher, PrefixFilter, SearchOutcome};
use crate::QueryError;

/// Runs many queries against one index across a thread pool.
///
/// Results are deterministic: `search_all(queries, θ)[i]` equals
/// `NearDupSearcher::search(queries[i], θ)`, whatever the thread count.
/// Stats are exact per query, but timing fields vary run to run, and with
/// a shared hot-list cache `io_bytes`/hit counts depend on which query
/// touched a list first (disable the cache for schedule-independent IO
/// attribution).
pub struct BatchSearcher<'a, I: IndexAccess + ?Sized> {
    searcher: NearDupSearcher<'a, I>,
    threads: usize,
}

impl<'a, I: IndexAccess + ?Sized> BatchSearcher<'a, I> {
    /// A batch searcher with prefix filtering disabled and one thread per
    /// available core.
    pub fn new(index: &'a I) -> Result<Self, QueryError> {
        Self::with_prefix_filter(index, PrefixFilter::Disabled)
    }

    /// A batch searcher with the given prefix-filtering policy.
    pub fn with_prefix_filter(index: &'a I, filter: PrefixFilter) -> Result<Self, QueryError> {
        Ok(Self {
            searcher: NearDupSearcher::with_prefix_filter(index, filter)?,
            threads: ndss_parallel::default_threads(),
        })
    }

    /// Pins the worker-thread count (`0` or `1` runs serially inline).
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// The underlying single-query searcher (shared configuration).
    pub fn searcher(&self) -> &NearDupSearcher<'a, I> {
        &self.searcher
    }

    /// Runs every query at threshold `theta`; `results[i]` corresponds to
    /// `queries[i]`. Fails fast with the first error in input order.
    pub fn search_all(
        &self,
        queries: &[Vec<TokenId>],
        theta: f64,
    ) -> Result<Vec<SearchOutcome>, QueryError> {
        let _span = ndss_obs::span("query.batch");
        let reg = ndss_obs::Registry::global();
        let queue_wait = reg.histogram(
            "query.batch.queue_wait.seconds",
            "Delay between batch start and each query's pickup by a worker",
            ndss_obs::Unit::Seconds,
        );
        let start = std::time::Instant::now();
        let results = ndss_parallel::try_map(queries, self.threads, |_, query| {
            // Pickup delay: how long this query sat in the work queue behind
            // earlier queries (p50/p95/p99 come from the histogram).
            queue_wait.record_duration(start.elapsed());
            self.searcher.search(query, theta)
        })?;
        // Utilization: total per-query busy time over thread-seconds of
        // wall time. 100% = every worker searching the whole batch.
        let wall = start.elapsed();
        if !results.is_empty() && !wall.is_zero() {
            let busy: std::time::Duration = results.iter().map(|o| o.stats.total).sum();
            let pct = 100.0 * busy.as_secs_f64() / (self.threads as f64 * wall.as_secs_f64());
            reg.gauge(
                "query.batch.utilization.percent",
                "Worker busy time over thread-seconds in the last batch (0-100)",
            )
            .set(pct.round() as i64);
        }
        Ok(results)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ndss_corpus::{CorpusSource, SyntheticCorpusBuilder};
    use ndss_index::{IndexConfig, MemoryIndex};

    #[test]
    fn batch_matches_serial_in_input_order() {
        let (corpus, planted) = SyntheticCorpusBuilder::new(71)
            .num_texts(50)
            .duplicates_per_text(1.0)
            .mutation_rate(0.03)
            .build();
        let index = MemoryIndex::build(&corpus, IndexConfig::new(16, 25, 9)).unwrap();
        let queries: Vec<Vec<u32>> = planted
            .iter()
            .take(12)
            .map(|p| corpus.sequence_to_vec(p.dst).unwrap())
            .collect();

        let serial = NearDupSearcher::new(&index).unwrap();
        let expected: Vec<_> = queries
            .iter()
            .map(|q| serial.search(q, 0.8).unwrap().enumerate_all())
            .collect();

        for threads in [1, 4, 8] {
            let batch = BatchSearcher::new(&index).unwrap().threads(threads);
            let got = batch.search_all(&queries, 0.8).unwrap();
            assert_eq!(got.len(), queries.len());
            for (i, outcome) in got.iter().enumerate() {
                assert_eq!(
                    outcome.enumerate_all(),
                    expected[i],
                    "query {i} diverged at {threads} threads"
                );
            }
        }
    }

    #[test]
    fn empty_batch_and_bad_query_propagate() {
        let (corpus, _) = SyntheticCorpusBuilder::new(72).num_texts(5).build();
        let index = MemoryIndex::build(&corpus, IndexConfig::new(4, 25, 1)).unwrap();
        let batch = BatchSearcher::new(&index).unwrap().threads(4);
        assert!(batch.search_all(&[], 0.8).unwrap().is_empty());
        let queries = vec![vec![1u32, 2, 3], Vec::new()];
        assert!(matches!(
            batch.search_all(&queries, 0.8),
            Err(QueryError::EmptyQuery)
        ));
    }
}
