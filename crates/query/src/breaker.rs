//! Per-shard fault isolation: error taxonomy and circuit breakers.
//!
//! A sharded scatter-gather (PR 8) fails the whole query when any shard
//! errors, and keeps re-failing on every subsequent request while the sick
//! shard stays sick. This module gives each shard a **circuit breaker** so
//! a runtime fault (bit rot surfacing mid-read, a torn disk, exhausted IO
//! retries) is contained to the shard it happened on:
//!
//! - **closed** — healthy; queries flow. Consecutive transient failures
//!   count toward the trip threshold; one corruption or permanent fault
//!   trips immediately (retrying cannot help).
//! - **open** — quarantined; the shard is skipped without touching its
//!   files until a backoff deadline passes. Backoff doubles per trip up to
//!   a cap, so a flapping shard converges to the cap instead of thrashing.
//! - **half-open** — the backoff expired and exactly one request (or the
//!   health prober) is admitted as a probe. Success closes the breaker;
//!   failure re-opens it with doubled backoff.
//!
//! The taxonomy ([`FaultKind`]) separates what *can* heal by waiting
//! (transient IO) from what needs repair (corruption) or operator action
//! (permanent: deleted/forbidden files). The serving layer surfaces
//! quarantined shards as [`DegradedShard`] ranges on otherwise-successful
//! responses, preserving per-healthy-shard soundness while labeling
//! exactly which text-id ranges went unsearched.
//!
//! All state is atomics: admission on the healthy path is one relaxed
//! load, so breakers cost nothing measurable per query (the serve bench
//! gates this < 2%).

use std::sync::atomic::{AtomicU32, AtomicU64, Ordering::Relaxed};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use ndss_corpus::TextId;

use crate::QueryError;

/// What a per-shard query failure tells us about the shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Backoff-and-retry may heal it: interrupted syscalls, timeouts,
    /// transient resource exhaustion that outlived the IO retry budget.
    Transient,
    /// The shard's bytes are wrong: malformed structures, failed
    /// checksums, truncation. Needs repair + re-verification, not retry.
    Corruption,
    /// The shard is gone or forbidden (deleted directory, permission
    /// change). Needs operator action; probing is still cheap enough to
    /// notice repair.
    Permanent,
}

impl FaultKind {
    /// Stable lowercase label for metrics and degraded-response payloads.
    pub fn label(&self) -> &'static str {
        match self {
            FaultKind::Transient => "transient",
            FaultKind::Corruption => "corruption",
            FaultKind::Permanent => "permanent",
        }
    }

    /// Stable wire encoding: transient 0, corruption 1, permanent 2.
    pub fn as_wire(&self) -> u8 {
        match self {
            FaultKind::Transient => 0,
            FaultKind::Corruption => 1,
            FaultKind::Permanent => 2,
        }
    }

    /// Inverse of [`Self::as_wire`]; unknown bytes decode as transient
    /// (the weakest claim).
    pub fn from_wire(byte: u8) -> Self {
        match byte {
            1 => FaultKind::Corruption,
            2 => FaultKind::Permanent,
            _ => FaultKind::Transient,
        }
    }
}

/// Classifies a per-shard query error, or `None` when the error is not a
/// shard fault (budget trips, admission sheds, caller mistakes) and must
/// keep propagating unchanged.
pub fn classify(err: &QueryError) -> Option<FaultKind> {
    use ndss_index::IndexError;
    match err {
        QueryError::Index(IndexError::Io(e)) => Some(match e.kind() {
            std::io::ErrorKind::Interrupted
            | std::io::ErrorKind::WouldBlock
            | std::io::ErrorKind::TimedOut => FaultKind::Transient,
            // A read past the recorded section length means the file no
            // longer matches its own header: truncation-style corruption.
            std::io::ErrorKind::UnexpectedEof => FaultKind::Corruption,
            std::io::ErrorKind::NotFound | std::io::ErrorKind::PermissionDenied => {
                FaultKind::Permanent
            }
            _ => FaultKind::Transient,
        }),
        QueryError::Index(IndexError::Malformed(_))
        | QueryError::Index(IndexError::FunctionOutOfRange(..)) => Some(FaultKind::Corruption),
        QueryError::Index(IndexError::Corpus(_)) | QueryError::Corpus(_) => {
            Some(FaultKind::Corruption)
        }
        _ => None,
    }
}

/// Breaker tuning; the defaults suit a serving daemon (trip fast, probe
/// after a second, never back off more than a minute).
#[derive(Debug, Clone)]
pub struct BreakerConfig {
    /// Consecutive transient failures that trip the breaker. Corruption
    /// and permanent faults trip on the first occurrence regardless.
    pub failure_threshold: u32,
    /// Quarantine duration after the first trip.
    pub backoff: Duration,
    /// Backoff ceiling; doubling stops here.
    pub max_backoff: Duration,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        Self {
            failure_threshold: 3,
            backoff: Duration::from_secs(1),
            max_backoff: Duration::from_secs(60),
        }
    }
}

/// Breaker position, for metrics and status reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy; queries flow.
    Closed,
    /// Quarantined; queries skip the shard until the backoff passes.
    Open,
    /// One probe in flight deciding between the two.
    HalfOpen,
}

impl BreakerState {
    /// Stable gauge encoding: closed 0, open 1, half-open 2.
    pub fn as_gauge(&self) -> i64 {
        match self {
            BreakerState::Closed => 0,
            BreakerState::Open => 1,
            BreakerState::HalfOpen => 2,
        }
    }
}

const STATE_CLOSED: u32 = 0;
const STATE_OPEN: u32 = 1;
const STATE_HALF_OPEN: u32 = 2;

/// What the breaker says about an arriving query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// Closed: search the shard normally.
    Admit,
    /// Half-open: this caller won the probe slot; its result decides the
    /// breaker. Exactly one `Probe` is granted per backoff expiry.
    Probe,
    /// Open (or a probe is already in flight): skip the shard.
    Quarantined,
}

/// One shard's circuit breaker. All methods are lock-free on the healthy
/// path; the `last_fault` label takes a mutex only when a failure is
/// being recorded or a degraded response is being built.
pub struct ShardBreaker {
    state: AtomicU32,
    consecutive: AtomicU32,
    /// Quarantine deadline, µs since `epoch`.
    open_until_us: AtomicU64,
    /// Next quarantine duration in ms (doubles per trip).
    backoff_ms: AtomicU64,
    trips: AtomicU64,
    last_fault: Mutex<Option<(FaultKind, String)>>,
}

impl ShardBreaker {
    fn new() -> Self {
        Self {
            state: AtomicU32::new(STATE_CLOSED),
            consecutive: AtomicU32::new(0),
            open_until_us: AtomicU64::new(0),
            backoff_ms: AtomicU64::new(0),
            trips: AtomicU64::new(0),
            last_fault: Mutex::new(None),
        }
    }

    fn state(&self) -> BreakerState {
        match self.state.load(Relaxed) {
            STATE_OPEN => BreakerState::Open,
            STATE_HALF_OPEN => BreakerState::HalfOpen,
            _ => BreakerState::Closed,
        }
    }

    fn admit(&self, now_us: u64, config: &BreakerConfig) -> Admission {
        // `failure_threshold == 0` disables the breaker entirely.
        if config.failure_threshold == 0 {
            return Admission::Admit;
        }
        match self.state.load(Relaxed) {
            STATE_CLOSED => Admission::Admit,
            STATE_HALF_OPEN => Admission::Quarantined,
            _ => {
                if now_us < self.open_until_us.load(Relaxed) {
                    return Admission::Quarantined;
                }
                // Backoff expired: exactly one caller flips open →
                // half-open and probes; the rest stay quarantined.
                if self
                    .state
                    .compare_exchange(STATE_OPEN, STATE_HALF_OPEN, Relaxed, Relaxed)
                    .is_ok()
                {
                    Admission::Probe
                } else {
                    Admission::Quarantined
                }
            }
        }
    }

    fn record_success(&self) {
        self.consecutive.store(0, Relaxed);
        self.backoff_ms.store(0, Relaxed);
        if self.state.swap(STATE_CLOSED, Relaxed) != STATE_CLOSED {
            *self.last_fault.lock().unwrap() = None;
        }
    }

    fn record_failure(&self, kind: FaultKind, reason: &str, now_us: u64, config: &BreakerConfig) {
        *self.last_fault.lock().unwrap() = Some((kind, reason.to_string()));
        let was = self.state.load(Relaxed);
        let consecutive = self.consecutive.fetch_add(1, Relaxed) + 1;
        let trip = was == STATE_HALF_OPEN // a failed probe always re-opens
            || kind != FaultKind::Transient
            || consecutive >= config.failure_threshold;
        if trip {
            self.trip(now_us, config);
        }
    }

    fn trip(&self, now_us: u64, config: &BreakerConfig) {
        // `as_millis` is u128: a pathological `Duration` must saturate, not
        // truncate (a truncated cap can wrap the doubling loop back to tiny
        // backoffs on long uptimes). The base is clamped at the cap too, so
        // the very first trip already honours `max_backoff`.
        let base = u64::try_from(config.backoff.as_millis())
            .unwrap_or(u64::MAX)
            .max(1);
        let cap = u64::try_from(config.max_backoff.as_millis())
            .unwrap_or(u64::MAX)
            .max(1);
        let prev = self.backoff_ms.load(Relaxed);
        let next = if prev == 0 {
            base
        } else {
            prev.saturating_mul(2)
        }
        .min(cap);
        self.backoff_ms.store(next, Relaxed);
        self.open_until_us
            .store(now_us.saturating_add(next.saturating_mul(1000)), Relaxed);
        self.state.store(STATE_OPEN, Relaxed);
        self.consecutive.store(0, Relaxed);
        self.trips.fetch_add(1, Relaxed);
    }

    fn last_fault(&self) -> (FaultKind, String) {
        self.last_fault
            .lock()
            .unwrap()
            .clone()
            .unwrap_or((FaultKind::Transient, "unknown".to_string()))
    }
}

/// A text-id range the response does **not** cover because its shard is
/// quarantined. `first_text .. first_text + num_texts` went unsearched.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DegradedShard {
    /// Shard ordinal in the manifest.
    pub shard: usize,
    /// First global text id the shard owns.
    pub first_text: TextId,
    /// Number of texts the shard owns (all unsearched).
    pub num_texts: u64,
    /// Why the shard is out.
    pub kind: FaultKind,
    /// Human-readable cause (the classified error, or the breaker's last
    /// recorded fault when the shard was skipped without being touched).
    pub reason: String,
}

/// Point-in-time view of one shard's breaker, for `/metrics` and status
/// endpoints.
#[derive(Debug, Clone)]
pub struct BreakerSnapshot {
    /// Shard ordinal.
    pub shard: usize,
    /// Current position.
    pub state: BreakerState,
    /// Cumulative closed→open transitions.
    pub trips: u64,
    /// Current backoff (ms) a quarantined shard is serving.
    pub backoff_ms: u64,
}

/// The breaker set for one opened view: one [`ShardBreaker`] per shard,
/// sharing a config and a time epoch. Lives inside the view (and thus
/// inside the `Arc` the serving layer pins), so state persists across
/// requests and resets naturally when a reload opens a fresh view.
pub struct ShardHealth {
    epoch: Instant,
    config: BreakerConfig,
    breakers: Vec<ShardBreaker>,
}

impl ShardHealth {
    /// A breaker per shard, all closed.
    pub fn new(num_shards: usize, config: BreakerConfig) -> Self {
        Self {
            epoch: Instant::now(),
            config,
            breakers: (0..num_shards).map(|_| ShardBreaker::new()).collect(),
        }
    }

    fn now_us(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }

    /// Admission decision for shard `i` right now.
    pub fn admit(&self, i: usize) -> Admission {
        self.breakers[i].admit(self.now_us(), &self.config)
    }

    /// Records a successful search (or probe) on shard `i`; closes the
    /// breaker and resets backoff.
    pub fn record_success(&self, i: usize) {
        self.breakers[i].record_success();
    }

    /// Records a classified failure on shard `i`; may trip the breaker.
    pub fn record_failure(&self, i: usize, kind: FaultKind, reason: &str) {
        self.breakers[i].record_failure(kind, reason, self.now_us(), &self.config);
    }

    /// Current state of shard `i`'s breaker.
    pub fn state(&self, i: usize) -> BreakerState {
        self.breakers[i].state()
    }

    /// The last fault recorded for shard `i` (kind + human-readable
    /// reason); a placeholder if none was ever recorded.
    pub fn last_fault(&self, i: usize) -> (FaultKind, String) {
        self.breakers[i].last_fault()
    }

    /// Shards currently not closed (open or half-open): the quarantine
    /// set a health prober should be re-verifying.
    pub fn quarantined(&self) -> Vec<usize> {
        (0..self.breakers.len())
            .filter(|&i| self.breakers[i].state() != BreakerState::Closed)
            .collect()
    }

    /// Per-shard snapshots for metrics export.
    pub fn snapshot(&self) -> Vec<BreakerSnapshot> {
        self.breakers
            .iter()
            .enumerate()
            .map(|(shard, b)| BreakerSnapshot {
                shard,
                state: b.state(),
                trips: b.trips.load(Relaxed),
                backoff_ms: b.backoff_ms.load(Relaxed),
            })
            .collect()
    }

    /// Number of shards covered.
    pub fn num_shards(&self) -> usize {
        self.breakers.len()
    }

    /// The config the set was built with.
    pub fn config(&self) -> &BreakerConfig {
        &self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(threshold: u32, backoff_ms: u64) -> BreakerConfig {
        BreakerConfig {
            failure_threshold: threshold,
            backoff: Duration::from_millis(backoff_ms),
            max_backoff: Duration::from_millis(backoff_ms * 8),
        }
    }

    /// Transient failures accumulate to the threshold; success resets the
    /// streak so intermittent blips never trip.
    #[test]
    fn transient_failures_trip_only_in_a_row() {
        let h = ShardHealth::new(1, cfg(3, 50));
        h.record_failure(0, FaultKind::Transient, "blip");
        h.record_failure(0, FaultKind::Transient, "blip");
        h.record_success(0);
        h.record_failure(0, FaultKind::Transient, "blip");
        h.record_failure(0, FaultKind::Transient, "blip");
        assert_eq!(h.state(0), BreakerState::Closed);
        h.record_failure(0, FaultKind::Transient, "blip");
        assert_eq!(h.state(0), BreakerState::Open);
        assert_eq!(h.admit(0), Admission::Quarantined);
    }

    /// Corruption and permanent faults trip on first sight.
    #[test]
    fn hard_faults_trip_immediately() {
        for kind in [FaultKind::Corruption, FaultKind::Permanent] {
            let h = ShardHealth::new(1, cfg(3, 50));
            h.record_failure(0, kind, "boom");
            assert_eq!(h.state(0), BreakerState::Open);
            assert_eq!(h.last_fault(0).0, kind);
        }
    }

    /// After the backoff expires exactly one caller gets the probe slot;
    /// a successful probe closes the breaker, a failed one re-opens it
    /// with doubled backoff.
    #[test]
    fn half_open_grants_one_probe() {
        let h = ShardHealth::new(1, cfg(1, 10));
        h.record_failure(0, FaultKind::Transient, "x");
        assert_eq!(h.state(0), BreakerState::Open);
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(h.admit(0), Admission::Probe);
        assert_eq!(h.admit(0), Admission::Quarantined, "probe slot is single");
        h.record_success(0);
        assert_eq!(h.state(0), BreakerState::Closed);
        assert_eq!(h.admit(0), Admission::Admit);

        // Failed probe: backoff doubles.
        h.record_failure(0, FaultKind::Transient, "x");
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(h.admit(0), Admission::Probe);
        h.record_failure(0, FaultKind::Transient, "still bad");
        let snap = &h.snapshot()[0];
        assert_eq!(snap.state, BreakerState::Open);
        assert_eq!(snap.backoff_ms, 20, "second trip doubles the 10ms base");
        assert_eq!(snap.trips, 3);
    }

    /// Backoff doubling is capped at `max_backoff`.
    #[test]
    fn backoff_is_bounded() {
        let h = ShardHealth::new(1, cfg(1, 10));
        for _ in 0..10 {
            h.record_failure(0, FaultKind::Corruption, "rot");
            std::thread::sleep(Duration::from_millis(1));
            // Force re-arm without waiting out the backoff: trip again.
        }
        let snap = &h.snapshot()[0];
        assert!(snap.backoff_ms <= 80, "cap is 8× base: {}", snap.backoff_ms);
    }

    /// The doubling loop at the overflow boundary: a pathologically large
    /// `max_backoff` must saturate (u128 → u64) instead of truncating —
    /// a truncated cap can wrap the doubled backoff back to a tiny value
    /// on long uptimes — and repeated trips at `u64::MAX` ms must stay
    /// pinned there rather than wrapping around zero.
    #[test]
    fn backoff_doubling_saturates_at_the_overflow_boundary() {
        let h = ShardHealth::new(
            1,
            BreakerConfig {
                failure_threshold: 1,
                backoff: Duration::from_millis(u64::MAX),
                max_backoff: Duration::MAX, // as_millis() > u64::MAX
            },
        );
        for trip in 1..=3 {
            h.record_failure(0, FaultKind::Corruption, "rot");
            let snap = &h.snapshot()[0];
            assert_eq!(
                snap.backoff_ms,
                u64::MAX,
                "trip {trip} wrapped instead of saturating"
            );
            assert_eq!(snap.state, BreakerState::Open);
            // A saturated deadline must still quarantine (no wrap past now).
            assert_eq!(h.admit(0), Admission::Quarantined);
        }
    }

    /// A base backoff above the ceiling is clamped from the very first
    /// trip, not only once doubling begins.
    #[test]
    fn first_trip_honours_max_backoff() {
        let h = ShardHealth::new(
            1,
            BreakerConfig {
                failure_threshold: 1,
                backoff: Duration::from_millis(100),
                max_backoff: Duration::from_millis(30),
            },
        );
        h.record_failure(0, FaultKind::Corruption, "rot");
        assert_eq!(h.snapshot()[0].backoff_ms, 30);
    }

    /// `failure_threshold == 0` disables the breaker: even a tripped
    /// shard admits queries.
    #[test]
    fn zero_threshold_disables() {
        let h = ShardHealth::new(1, cfg(0, 10));
        h.record_failure(0, FaultKind::Corruption, "rot");
        assert_eq!(h.admit(0), Admission::Admit);
    }

    /// Error classification: IO kinds map to the right taxonomy and
    /// non-shard errors stay unclassified.
    #[test]
    fn classification_taxonomy() {
        use ndss_index::IndexError;
        let io = |kind| QueryError::Index(IndexError::Io(std::io::Error::new(kind, "x")));
        assert_eq!(
            classify(&io(std::io::ErrorKind::Interrupted)),
            Some(FaultKind::Transient)
        );
        assert_eq!(
            classify(&io(std::io::ErrorKind::TimedOut)),
            Some(FaultKind::Transient)
        );
        assert_eq!(
            classify(&io(std::io::ErrorKind::UnexpectedEof)),
            Some(FaultKind::Corruption)
        );
        assert_eq!(
            classify(&io(std::io::ErrorKind::NotFound)),
            Some(FaultKind::Permanent)
        );
        assert_eq!(
            classify(&io(std::io::ErrorKind::PermissionDenied)),
            Some(FaultKind::Permanent)
        );
        assert_eq!(
            classify(&QueryError::Index(IndexError::Malformed("bad".into()))),
            Some(FaultKind::Corruption)
        );
        assert_eq!(classify(&QueryError::EmptyQuery), None);
        assert_eq!(classify(&QueryError::Cancelled), None);
    }
}
