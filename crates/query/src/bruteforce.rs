//! Brute-force reference implementations of both problem definitions.
//!
//! These are the ground-truth oracles the test suite measures the indexed
//! search against, and the "no index" baselines the benchmark harness uses
//! to demonstrate the speedups the paper's design buys:
//!
//! * [`definition1_scan`] — the exact problem (paper Definition 1): report
//!   every sequence with true distinct Jaccard ≥ θ. Runs in `O(Σ n²)` with
//!   `O(1)` incremental similarity updates per extension.
//! * [`definition2_scan`] — the approximate problem (Definition 2): report
//!   every sequence of length ≥ t whose min-hash collides with the query's
//!   on ≥ ⌈kθ⌉ functions. Runs in `O(k · Σ n²)` with `O(k)` incremental
//!   min-hash updates. The indexed search must equal this oracle *exactly*
//!   (Theorem 2) — the central correctness property of the system.

use std::collections::HashMap;

use ndss_corpus::{CorpusError, CorpusSource, SeqRef, TextId};
use ndss_hash::minhash::collision_threshold;
use ndss_hash::{HashValue, MinHasher, TokenId};

/// Exact near-duplicate sequence search (Definition 1) by exhaustive scan.
///
/// For each text and each start position `i`, the scan extends `j` rightward
/// maintaining (a) per-token counts of the window, (b) the number of
/// distinct window tokens, and (c) the number of distinct window tokens also
/// present in the query — which gives the distinct Jaccard in O(1) per step:
/// `J = shared / (|Q_set| + distinct_in_window − shared)`.
///
/// Only sequences with `j − i + 1 ≥ t` are reported, mirroring the
/// approximate problem's length constraint.
pub fn definition1_scan<C: CorpusSource + ?Sized>(
    corpus: &C,
    query: &[TokenId],
    theta: f64,
    t: usize,
) -> Result<Vec<SeqRef>, CorpusError> {
    let mut query_set: Vec<TokenId> = query.to_vec();
    query_set.sort_unstable();
    query_set.dedup();
    let q_distinct = query_set.len();
    let in_query = |tok: TokenId| query_set.binary_search(&tok).is_ok();

    let mut out = Vec::new();
    let mut text = Vec::new();
    for id in 0..corpus.num_texts() as TextId {
        corpus.read_text(id, &mut text)?;
        let n = text.len();
        let mut counts: HashMap<TokenId, u32> = HashMap::new();
        for i in 0..n {
            counts.clear();
            let mut distinct = 0usize;
            let mut shared = 0usize;
            #[allow(clippy::needless_range_loop)] // j is the sequence endpoint, not just an index
            for j in i..n {
                let tok = text[j];
                let c = counts.entry(tok).or_insert(0);
                if *c == 0 {
                    distinct += 1;
                    if in_query(tok) {
                        shared += 1;
                    }
                }
                *c += 1;
                if j - i + 1 < t {
                    continue;
                }
                let union = q_distinct + distinct - shared;
                let jaccard = shared as f64 / union as f64;
                if jaccard + 1e-12 >= theta {
                    out.push(SeqRef::new(id, i as u32, j as u32));
                }
            }
        }
    }
    out.sort_unstable();
    Ok(out)
}

/// Approximate near-duplicate sequence search (Definition 2) by exhaustive
/// scan: for every sequence of length ≥ t, count on how many of the `k`
/// functions its min-hash equals the query's, and report those reaching
/// `β = ⌈kθ⌉`.
pub fn definition2_scan<C: CorpusSource + ?Sized>(
    corpus: &C,
    hasher: &MinHasher,
    query: &[TokenId],
    theta: f64,
    t: usize,
) -> Result<Vec<SeqRef>, CorpusError> {
    let k = hasher.k();
    let beta = collision_threshold(k, theta);
    let query_sketch = hasher.sketch(query);

    let mut out = Vec::new();
    let mut text = Vec::new();
    // Position-hash arrays per function, recomputed per text.
    let mut pos_hashes: Vec<Vec<HashValue>> = vec![Vec::new(); k];
    for id in 0..corpus.num_texts() as TextId {
        corpus.read_text(id, &mut text)?;
        let n = text.len();
        for (func, hashes) in pos_hashes.iter_mut().enumerate() {
            hasher.hash_positions_into(func, &text, hashes);
        }
        let mut mins = vec![HashValue::MAX; k];
        for i in 0..n {
            mins.iter_mut().for_each(|m| *m = HashValue::MAX);
            #[allow(clippy::needless_range_loop)] // j is the sequence endpoint, not just an index
            for j in i..n {
                // Extend the window: update each function's running min.
                for (func, m) in mins.iter_mut().enumerate() {
                    let h = pos_hashes[func][j];
                    if h < *m {
                        *m = h;
                    }
                }
                if j - i + 1 < t {
                    continue;
                }
                let collisions = mins
                    .iter()
                    .enumerate()
                    .filter(|&(func, &m)| m == query_sketch.value(func))
                    .count();
                if collisions >= beta {
                    out.push(SeqRef::new(id, i as u32, j as u32));
                }
            }
        }
    }
    out.sort_unstable();
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::search::NearDupSearcher;
    use ndss_corpus::{InMemoryCorpus, SyntheticCorpusBuilder};
    use ndss_hash::jaccard::distinct_jaccard;
    use ndss_index::{IndexAccess, IndexConfig, MemoryIndex};

    #[test]
    fn definition1_finds_planted_exact_copy() {
        let (corpus, planted) = SyntheticCorpusBuilder::new(51)
            .num_texts(15)
            .text_len(80, 120)
            .duplicates_per_text(1.0)
            .dup_len(30, 40)
            .mutation_rate(0.0)
            .build();
        let p = planted.first().unwrap();
        let query = corpus.sequence_to_vec(p.dst).unwrap();
        let hits = definition1_scan(&corpus, &query, 0.95, 20).unwrap();
        assert!(hits.iter().any(|s| s.text == p.src.text));
        // Every reported hit really is similar.
        for s in &hits {
            let tokens = corpus.sequence_to_vec(*s).unwrap();
            assert!(distinct_jaccard(&query, &tokens) >= 0.95 - 1e-9);
        }
    }

    #[test]
    fn definition1_reports_nothing_for_unrelated_query() {
        let corpus = InMemoryCorpus::from_texts(vec![(0..100u32).collect()]);
        let query: Vec<u32> = (1000..1050).collect();
        assert!(definition1_scan(&corpus, &query, 0.5, 10)
            .unwrap()
            .is_empty());
    }

    #[test]
    fn definition2_matches_indexed_search_small() {
        // The central exactness property on a small corpus: the indexed
        // search and the brute-force Definition 2 oracle agree perfectly.
        let (corpus, _) = SyntheticCorpusBuilder::new(52)
            .num_texts(12)
            .text_len(40, 70)
            .vocab_size(200)
            .duplicates_per_text(1.0)
            .dup_len(20, 30)
            .mutation_rate(0.1)
            .build();
        let config = IndexConfig::new(8, 10, 777);
        let index = MemoryIndex::build(&corpus, config).unwrap();
        let searcher = NearDupSearcher::new(&index).unwrap();
        let hasher = index.config().hasher();

        let query = corpus.text(3)[5..35].to_vec();
        for theta in [0.5, 0.7, 0.9, 1.0] {
            let oracle = definition2_scan(&corpus, &hasher, &query, theta, 10).unwrap();
            let indexed = searcher.search(&query, theta).unwrap().enumerate_all();
            assert_eq!(indexed, oracle, "theta = {theta}");
        }
    }

    #[test]
    fn definition2_is_superset_of_definition1_matches() {
        // Min-hash collisions at β = ⌈kθ⌉ is an estimator: with k large,
        // every true near-duplicate at θ' well above θ should collide
        // enough. We check the weaker, deterministic property that a
        // *verbatim* copy (J = 1) always reaches β.
        let (corpus, planted) = SyntheticCorpusBuilder::new(53)
            .num_texts(15)
            .duplicates_per_text(1.0)
            .mutation_rate(0.0)
            .dup_len(40, 60)
            .build();
        let hasher = MinHasher::new(16, 99);
        let p = planted.first().unwrap();
        let query = corpus.sequence_to_vec(p.dst).unwrap();
        let hits = definition2_scan(&corpus, &hasher, &query, 1.0, 25).unwrap();
        assert!(hits.iter().any(|s| s.text == p.src.text));
    }
}
