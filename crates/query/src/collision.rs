//! `CollisionCount` (paper Algorithm 4).
//!
//! Input: the compact windows of **one text** gathered from the query's
//! retrieved inverted lists, plus a collision threshold `α`. Because each
//! window `(l, c, r)` attests one min-hash collision for every sequence
//! `T[i..=j]` with `i ∈ [l, c]`, `j ∈ [c, r]`, a sequence's collision count
//! is the number of windows covering it. Splitting windows into left
//! (`[l, c]`) and right (`[c, r]`) intervals reduces "covered by ≥ α
//! windows" to two nested interval sweeps:
//!
//! 1. sweep the left intervals: each hit gives an elementary start-range
//!    `[x, x']` and the subset `C'` of windows whose left interval covers it;
//! 2. sweep the right intervals of `C'`: each hit gives an end-range
//!    `[y, y']` where `|C''| ≥ α` of those windows remain active.
//!
//! Every sequence `(i, j)` with `i ∈ [x, x']` and `j ∈ [y, y']` then collides
//! exactly `|C''|` times. The produced [`Rectangle`]s are pairwise disjoint
//! (elementary ranges partition the `i` axis; for fixed `i`, the nested
//! sweep partitions the `j` axis), so downstream counting never
//! double-counts.

use ndss_windows::CompactWindow;

/// A maximal axis-aligned block of sequences sharing one collision count:
/// all `T[i..=j]` with `i ∈ [x_lo, x_hi]`, `j ∈ [y_lo, y_hi]` collide with
/// the query exactly `collisions` times. Invariant: `x_hi ≤ y_lo`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Rectangle {
    /// Inclusive range of sequence start positions.
    pub x_lo: u32,
    /// Inclusive upper bound of start positions.
    pub x_hi: u32,
    /// Inclusive range of sequence end positions.
    pub y_lo: u32,
    /// Inclusive upper bound of end positions.
    pub y_hi: u32,
    /// The common collision count (≥ the α used to produce it).
    pub collisions: u32,
}

impl Rectangle {
    /// Whether the sequence `(i, j)` lies in this rectangle.
    pub fn contains(&self, i: u32, j: u32) -> bool {
        self.x_lo <= i && i <= self.x_hi && self.y_lo <= j && j <= self.y_hi
    }

    /// Number of sequences `(i, j)` in the rectangle with `j − i + 1 ≥ t`.
    ///
    /// Closed form, O(1): for each start `i`, valid ends are
    /// `max(y_lo, i + t − 1) ..= y_hi`. The i-axis splits at the point where
    /// the length constraint overtakes `y_lo` — full rows before it, an
    /// arithmetic series after. `t = 0` counts the same sequences as
    /// `t = 1` (every `(i, j)` has length ≥ 1) instead of underflowing.
    pub fn sequences_at_least(&self, t: u32) -> u64 {
        let d = t.saturating_sub(1) as i128;
        let (x0, x1) = (self.x_lo as i128, self.x_hi as i128);
        let (y0, y1) = (self.y_lo as i128, self.y_hi as i128);
        // Starts with i + d ≤ y_lo see the full end-range [y_lo, y_hi].
        let full_rows = (x1.min(y0 - d) - x0 + 1).max(0);
        let mut total = full_rows * (y1 - y0 + 1);
        // Length-constrained starts: row i holds (y1 − d + 1) − i ends.
        let a = x0.max(y0 - d + 1);
        let b = x1.min(y1 - d);
        if a <= b {
            total += (b - a + 1) * (2 * (y1 - d + 1) - a - b) / 2;
        }
        total.max(0) as u64
    }

    /// The union of token positions covered by the rectangle's sequences of
    /// length ≥ t, as a single span `[x_lo, y_hi]` — or `None` when no
    /// sequence in the rectangle is long enough. (If any qualifying `(i, j)`
    /// exists, the shortest-start one begins at `x_lo` and the longest ends
    /// at `y_hi`, and coverage in between is contiguous.)
    pub fn covered_span(&self, t: u32) -> Option<(u32, u32)> {
        if self.sequences_at_least(t) == 0 {
            None
        } else {
            Some((self.x_lo, self.y_hi))
        }
    }
}

/// Reusable buffers for [`collision_count_into`]. The query loop runs one
/// collision count per candidate text — thousands per query — and the
/// sweeps' endpoint lists are the only heap state they need, so one scratch
/// per query removes every per-text allocation.
#[derive(Debug, Default)]
pub struct CollisionScratch {
    /// Left-sweep endpoints: `(position << 1 | is_end, window index)`. The
    /// packed key sorts by `(position, is_end)` with one u64 comparison.
    left: Vec<(u64, u32)>,
    /// Right-sweep endpoints, `position << 1 | is_end` — the right sweep
    /// only needs active *counts*, not identities, so the packed key is the
    /// whole event.
    right: Vec<u64>,
    /// Window indices active in the left sweep.
    active: Vec<u32>,
    /// `slot[idx]` = position of window `idx` inside `active` (or `u32::MAX`
    /// when inactive), so end events remove in O(1) instead of scanning.
    slot: Vec<u32>,
}

/// Runs Algorithm 4 on the windows of one text. Returns the rectangles of
/// all sequences covered by at least `alpha` of the given windows.
///
/// Windows may repeat pivots or overlap arbitrarily (they come from up to
/// `k` different hash functions, and one function can contribute several
/// windows of the same text).
pub fn collision_count(windows: &[CompactWindow], alpha: usize) -> Vec<Rectangle> {
    let mut rects = Vec::new();
    collision_count_into(windows, alpha, &mut CollisionScratch::default(), &mut rects);
    rects
}

/// [`collision_count`] without the allocations: clears `out` and fills it
/// with the same rectangles, reusing `scratch`'s buffers across calls.
pub fn collision_count_into(
    windows: &[CompactWindow],
    alpha: usize,
    scratch: &mut CollisionScratch,
    out: &mut Vec<Rectangle>,
) {
    collision_count_fn_into(windows.len(), |i| windows[i], alpha, scratch, out);
}

/// [`collision_count_into`] over any indexed window source — the query loop
/// feeds posting runs straight in, without first copying their windows into
/// a buffer.
///
/// Both sweeps of the paper's nested formulation run inline here (the
/// outer sweep tracks which windows are active so their right intervals
/// can be swept; the inner sweep only tracks how many remain active, which
/// is the rectangle's collision count).
pub fn collision_count_fn_into(
    num_windows: usize,
    window_at: impl Fn(usize) -> CompactWindow,
    alpha: usize,
    scratch: &mut CollisionScratch,
    out: &mut Vec<Rectangle>,
) {
    assert!(alpha >= 1, "collision threshold must be at least 1");
    out.clear();
    if num_windows < alpha {
        return;
    }
    // Left sweep over the [l, c] intervals. Positions are widened to u64
    // before packing so `hi + 1` cannot overflow at u32::MAX; the packed
    // key `pos << 1 | is_end` orders events exactly like a `(pos, is_end)`
    // tuple sort — starts before ends at the same position.
    let left = &mut scratch.left;
    left.clear();
    for idx in 0..num_windows {
        let w = window_at(idx);
        left.push(((w.l as u64) << 1, idx as u32));
        left.push(((w.c as u64 + 1) << 1 | 1, idx as u32));
    }
    left.sort_unstable_by_key(|&(key, _)| key);
    let active = &mut scratch.active;
    active.clear();
    let slot = &mut scratch.slot;
    slot.clear();
    slot.resize(num_windows, u32::MAX);
    let mut i = 0;
    while i < left.len() {
        let pos = left[i].0 >> 1;
        while i < left.len() && left[i].0 >> 1 == pos {
            let (key, idx) = left[i];
            if key & 1 == 1 {
                let at = slot[idx as usize] as usize;
                debug_assert!(at != u32::MAX as usize, "ending an inactive interval");
                active.swap_remove(at);
                if at < active.len() {
                    slot[active[at] as usize] = at as u32;
                }
                slot[idx as usize] = u32::MAX;
            } else {
                slot[idx as usize] = active.len() as u32;
                active.push(idx);
            }
            i += 1;
        }
        if active.len() < alpha {
            continue;
        }
        // The active set persists until the next distinct endpoint (ends
        // exist for all active intervals, so `left[i]` is in bounds).
        let (x_lo, x_hi) = (pos as u32, ((left[i].0 >> 1) - 1) as u32);
        // Right sweep over the active windows' [c, r] intervals.
        let right = &mut scratch.right;
        right.clear();
        for &idx in active.iter() {
            let w = window_at(idx as usize);
            right.push((w.c as u64) << 1);
            right.push((w.r as u64 + 1) << 1 | 1);
        }
        right.sort_unstable();
        let mut count = 0usize;
        let mut j = 0;
        while j < right.len() {
            let rpos = right[j] >> 1;
            while j < right.len() && right[j] >> 1 == rpos {
                if right[j] & 1 == 1 {
                    count -= 1;
                } else {
                    count += 1;
                }
                j += 1;
            }
            if count >= alpha {
                out.push(Rectangle {
                    x_lo,
                    x_hi,
                    y_lo: rpos as u32,
                    y_hi: ((right[j] >> 1) - 1) as u32,
                    collisions: count as u32,
                });
            }
        }
    }
}

/// Brute-force oracle for tests: collision count of every sequence `(i, j)`
/// is the number of windows covering it; returns those with count ≥ alpha
/// as `((i, j), count)`.
pub fn bruteforce_collisions(
    windows: &[CompactWindow],
    alpha: usize,
    max_pos: u32,
) -> Vec<((u32, u32), u32)> {
    let mut out = Vec::new();
    for i in 0..=max_pos {
        for j in i..=max_pos {
            let count = windows.iter().filter(|w| w.covers(i, j)).count() as u32;
            if count as usize >= alpha {
                out.push(((i, j), count));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn expand(rects: &[Rectangle]) -> Vec<((u32, u32), u32)> {
        let mut out = Vec::new();
        for r in rects {
            for i in r.x_lo..=r.x_hi {
                for j in r.y_lo..=r.y_hi {
                    assert!(i <= j, "rectangle yields inverted sequence ({i},{j})");
                    out.push(((i, j), r.collisions));
                }
            }
        }
        out.sort();
        out
    }

    fn check(windows: &[CompactWindow], alpha: usize, max_pos: u32) {
        let rects = collision_count(windows, alpha);
        assert_eq!(
            expand(&rects),
            bruteforce_collisions(windows, alpha, max_pos),
            "mismatch for {windows:?} alpha={alpha}"
        );
    }

    #[test]
    fn single_window() {
        let w = [CompactWindow::new(2, 4, 8)];
        check(&w, 1, 10);
    }

    #[test]
    fn two_overlapping_windows() {
        let w = [CompactWindow::new(0, 3, 9), CompactWindow::new(1, 5, 7)];
        for alpha in 1..=2 {
            check(&w, alpha, 10);
        }
    }

    #[test]
    fn stacked_identical_windows() {
        let w = [
            CompactWindow::new(1, 4, 9),
            CompactWindow::new(1, 4, 9),
            CompactWindow::new(1, 4, 9),
        ];
        for alpha in 1..=3 {
            check(&w, alpha, 11);
        }
    }

    #[test]
    fn disjoint_windows_never_stack() {
        let w = [CompactWindow::new(0, 1, 3), CompactWindow::new(5, 6, 9)];
        check(&w, 1, 10);
        assert!(collision_count(&w, 2).is_empty());
    }

    #[test]
    fn rectangles_are_disjoint() {
        let w = [
            CompactWindow::new(0, 5, 12),
            CompactWindow::new(2, 6, 10),
            CompactWindow::new(3, 5, 15),
            CompactWindow::new(0, 8, 12),
        ];
        let rects = collision_count(&w, 2);
        let seqs = expand(&rects);
        let mut keys: Vec<(u32, u32)> = seqs.iter().map(|&(ij, _)| ij).collect();
        let before = keys.len();
        keys.dedup();
        assert_eq!(keys.len(), before, "a sequence appeared in two rectangles");
        check(&w, 2, 16);
    }

    #[test]
    fn pseudorandom_cross_check() {
        let mut state = 99u64;
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            (state >> 33) as u32
        };
        for _ in 0..40 {
            let n = 1 + (next() % 8) as usize;
            let windows: Vec<CompactWindow> = (0..n)
                .map(|_| {
                    let l = next() % 12;
                    let c = l + next() % 6;
                    let r = c + next() % 8;
                    CompactWindow::new(l, c, r)
                })
                .collect();
            for alpha in 1..=n {
                check(&windows, alpha, 30);
            }
        }
    }

    #[test]
    fn sequences_at_least_counts_triangle() {
        // Rectangle i ∈ [0, 2], j ∈ [1, 4], t = 3:
        //  i=0: j ≥ 2 → j ∈ {2,3,4} → 3
        //  i=1: j ≥ 3 → {3,4}      → 2
        //  i=2: j ≥ 4 → {4}        → 1
        let r = Rectangle {
            x_lo: 0,
            x_hi: 2,
            y_lo: 1,
            y_hi: 4,
            collisions: 5,
        };
        assert_eq!(r.sequences_at_least(3), 6);
        // t = 1: i=0 → j∈{1..4}, i=1 → {1..4} (j ≥ i), i=2 → {2..4}.
        assert_eq!(r.sequences_at_least(1), 4 + 4 + 3);
        assert_eq!(r.sequences_at_least(6), 0);
        assert_eq!(r.covered_span(3), Some((0, 4)));
        assert_eq!(r.covered_span(6), None);
    }

    /// Closed form agrees with the per-start loop it replaced, including the
    /// t = 0 case that used to underflow `t - 1`.
    #[test]
    fn sequences_at_least_matches_bruteforce() {
        fn brute(r: &Rectangle, t: u32) -> u64 {
            let mut total = 0u64;
            for i in r.x_lo..=r.x_hi {
                for j in r.y_lo..=r.y_hi {
                    if j >= i && (j - i + 1) as u64 >= t.max(1) as u64 {
                        total += 1;
                    }
                }
            }
            total
        }
        let rects = [
            Rectangle {
                x_lo: 0,
                x_hi: 2,
                y_lo: 1,
                y_hi: 4,
                collisions: 1,
            },
            Rectangle {
                x_lo: 3,
                x_hi: 3,
                y_lo: 3,
                y_hi: 3,
                collisions: 1,
            },
            Rectangle {
                x_lo: 0,
                x_hi: 9,
                y_lo: 9,
                y_hi: 30,
                collisions: 1,
            },
            Rectangle {
                x_lo: 5,
                x_hi: 7,
                y_lo: 7,
                y_hi: 8,
                collisions: 1,
            },
        ];
        for r in &rects {
            for t in 0..40u32 {
                assert_eq!(r.sequences_at_least(t), brute(r, t), "{r:?} t={t}");
            }
            // t = 0 is "any sequence", identical to t = 1, and must not panic.
            assert_eq!(r.sequences_at_least(0), r.sequences_at_least(1));
            assert_eq!(r.sequences_at_least(u32::MAX), 0);
        }
        // Huge coordinates: the closed form must not overflow.
        let big = Rectangle {
            x_lo: 0,
            x_hi: u32::MAX - 1,
            y_lo: 0,
            y_hi: u32::MAX - 1,
            collisions: 1,
        };
        assert_eq!(big.sequences_at_least(u32::MAX), 1);
        assert!(big.sequences_at_least(1) > 0);
    }

    #[test]
    fn threshold_larger_than_group_is_empty() {
        let w = [CompactWindow::new(0, 1, 5)];
        assert!(collision_count(&w, 2).is_empty());
    }
}
