//! Document-level near-duplicate search.
//!
//! The paper's applications never issue one isolated query: the
//! memorization evaluation slides fixed-width windows over each generated
//! text (§5), and the plagiarism/dedup use cases slide windows over a
//! suspicious document. This module packages that loop: slide a window of
//! `width` tokens with a `stride` over the document, search every window,
//! and aggregate the hits **per corpus text** — merged matched regions, how
//! many document windows hit the text, and the best collision count.
//!
//! Results order by evidence: texts hit by more windows first, ties by best
//! collision count, then text id (deterministic).

use std::collections::BTreeMap;

use ndss_corpus::{SeqSpan, TextId};
use ndss_hash::TokenId;
use ndss_index::IndexAccess;

use crate::search::NearDupSearcher;
use crate::QueryError;

/// Aggregated evidence that `text` shares near-duplicate content with the
/// queried document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DocumentMatch {
    /// The corpus text.
    pub text: TextId,
    /// Merged, disjoint matched regions within that text.
    pub regions: Vec<SeqSpan>,
    /// Number of document windows with at least one hit in this text.
    pub query_windows: usize,
    /// Spans of the document (token ranges) whose windows hit this text,
    /// merged and disjoint — "which parts of my document are copied".
    pub document_regions: Vec<SeqSpan>,
    /// The best per-window collision count observed (out of k).
    pub best_collisions: u32,
}

/// Configuration of the sliding-window scan.
#[derive(Debug, Clone, Copy)]
pub struct DocumentScan {
    /// Window width in tokens (the paper's `x`).
    pub width: usize,
    /// Step between window starts; `width` = non-overlapping (the paper's
    /// §5 protocol), smaller = denser coverage.
    pub stride: usize,
}

impl DocumentScan {
    /// Non-overlapping windows of `width` tokens (paper §5).
    pub fn non_overlapping(width: usize) -> Self {
        Self {
            width,
            stride: width,
        }
    }

    /// Overlapping windows with an explicit stride.
    pub fn with_stride(width: usize, stride: usize) -> Self {
        assert!(stride >= 1, "stride must be at least 1");
        Self { width, stride }
    }
}

impl<I: IndexAccess + ?Sized> NearDupSearcher<'_, I> {
    /// Scans `document` with sliding windows and aggregates near-duplicate
    /// evidence per corpus text. Windows shorter than `scan.width` (at the
    /// document tail) are skipped, as in the paper.
    pub fn search_document(
        &self,
        document: &[TokenId],
        scan: DocumentScan,
        theta: f64,
    ) -> Result<Vec<DocumentMatch>, QueryError> {
        if scan.width == 0 {
            return Err(QueryError::EmptyQuery);
        }
        struct Agg {
            regions: Vec<SeqSpan>,
            document_regions: Vec<SeqSpan>,
            query_windows: usize,
            best_collisions: u32,
        }
        let mut per_text: BTreeMap<TextId, Agg> = BTreeMap::new();
        let mut start = 0usize;
        while start + scan.width <= document.len() {
            let window = &document[start..start + scan.width];
            let outcome = self.search(window, theta)?;
            for m in &outcome.matches {
                let spans = m.merged_spans(outcome.t);
                if spans.is_empty() {
                    continue;
                }
                let agg = per_text.entry(m.text).or_insert_with(|| Agg {
                    regions: Vec::new(),
                    document_regions: Vec::new(),
                    query_windows: 0,
                    best_collisions: 0,
                });
                agg.regions.extend(spans);
                agg.document_regions
                    .push(SeqSpan::new(start as u32, (start + scan.width - 1) as u32));
                agg.query_windows += 1;
                agg.best_collisions = agg.best_collisions.max(m.best_collisions());
            }
            start += scan.stride;
        }
        let mut out: Vec<DocumentMatch> = per_text
            .into_iter()
            .map(|(text, agg)| DocumentMatch {
                text,
                regions: merge_spans(agg.regions),
                document_regions: merge_spans(agg.document_regions),
                query_windows: agg.query_windows,
                best_collisions: agg.best_collisions,
            })
            .collect();
        out.sort_by(|a, b| {
            b.query_windows
                .cmp(&a.query_windows)
                .then_with(|| b.best_collisions.cmp(&a.best_collisions))
                .then_with(|| a.text.cmp(&b.text))
        });
        Ok(out)
    }
}

/// Merges possibly-overlapping spans into maximal disjoint spans.
fn merge_spans(mut spans: Vec<SeqSpan>) -> Vec<SeqSpan> {
    spans.sort_unstable();
    let mut merged: Vec<SeqSpan> = Vec::new();
    for s in spans {
        match merged.last_mut() {
            Some(last) if last.touches(&s) => last.end = last.end.max(s.end),
            _ => merged.push(s),
        }
    }
    merged
}

#[cfg(test)]
mod tests {
    use super::*;
    use ndss_corpus::{CorpusSource, SyntheticCorpusBuilder};
    use ndss_index::{IndexConfig, MemoryIndex};

    #[test]
    fn document_containing_copied_span_flags_the_source() {
        let (corpus, planted) = SyntheticCorpusBuilder::new(151)
            .num_texts(60)
            .text_len(200, 400)
            .duplicates_per_text(1.0)
            .dup_len(80, 120)
            .mutation_rate(0.0)
            .build();
        let index = MemoryIndex::build(&corpus, IndexConfig::new(16, 25, 7)).unwrap();
        let searcher = NearDupSearcher::new(&index).unwrap();
        // Fabricate a "document": 100 fresh tokens + a planted span + more
        // fresh tokens.
        let p = planted.iter().find(|p| p.dst.span.len() >= 100).unwrap();
        let copied = corpus.sequence_to_vec(p.dst).unwrap();
        let mut document: Vec<u32> = (2_000_000..2_000_100).collect();
        document.extend_from_slice(&copied);
        document.extend(2_000_100..2_000_200u32);

        let matches = searcher
            .search_document(&document, DocumentScan::non_overlapping(32), 0.9)
            .unwrap();
        assert!(!matches.is_empty());
        let hit = matches
            .iter()
            .find(|m| m.text == p.src.text)
            .expect("source text flagged");
        assert!(hit.query_windows >= 2, "long copy spans several windows");
        // Document regions point inside the copied section.
        for span in &hit.document_regions {
            assert!(span.end >= 100 && (span.start as usize) < 100 + copied.len() + 32);
        }
        // Regions are merged-disjoint.
        for w in hit.regions.windows(2) {
            assert!(w[0].end + 1 < w[1].start);
        }
    }

    #[test]
    fn clean_document_matches_nothing() {
        let (corpus, _) = SyntheticCorpusBuilder::new(152)
            .num_texts(30)
            .vocab_size(5_000)
            .build();
        let index = MemoryIndex::build(&corpus, IndexConfig::new(16, 25, 7)).unwrap();
        let searcher = NearDupSearcher::new(&index).unwrap();
        let document: Vec<u32> = (3_000_000..3_000_300).collect();
        let matches = searcher
            .search_document(&document, DocumentScan::non_overlapping(32), 0.8)
            .unwrap();
        assert!(matches.is_empty());
    }

    #[test]
    fn overlapping_stride_finds_at_least_as_much() {
        let (corpus, planted) = SyntheticCorpusBuilder::new(153)
            .num_texts(50)
            .duplicates_per_text(1.0)
            .mutation_rate(0.02)
            .build();
        let index = MemoryIndex::build(&corpus, IndexConfig::new(16, 25, 7)).unwrap();
        let searcher = NearDupSearcher::new(&index).unwrap();
        let p = planted.first().unwrap();
        let document = corpus.text_to_vec(p.dst.text).unwrap();
        let coarse = searcher
            .search_document(&document, DocumentScan::non_overlapping(64), 0.8)
            .unwrap();
        let dense = searcher
            .search_document(&document, DocumentScan::with_stride(64, 16), 0.8)
            .unwrap();
        assert!(dense.len() >= coarse.len());
    }

    #[test]
    fn short_document_yields_no_windows() {
        let (corpus, _) = SyntheticCorpusBuilder::new(154).num_texts(10).build();
        let index = MemoryIndex::build(&corpus, IndexConfig::new(4, 25, 7)).unwrap();
        let searcher = NearDupSearcher::new(&index).unwrap();
        let matches = searcher
            .search_document(&[1, 2, 3], DocumentScan::non_overlapping(32), 0.8)
            .unwrap();
        assert!(matches.is_empty());
    }

    #[test]
    fn zero_width_is_an_error() {
        let (corpus, _) = SyntheticCorpusBuilder::new(155).num_texts(5).build();
        let index = MemoryIndex::build(&corpus, IndexConfig::new(4, 25, 7)).unwrap();
        let searcher = NearDupSearcher::new(&index).unwrap();
        assert!(searcher
            .search_document(
                &[1, 2, 3],
                DocumentScan {
                    width: 0,
                    stride: 1
                },
                0.8
            )
            .is_err());
    }
}
