//! Per-query resource governance: budgets, deadlines, and cancellation.
//!
//! Serving workloads (the paper's §5 memorization evaluation is thousands
//! of independent queries against one disk index) cannot let a single
//! pathological query — huge `k`, low `θ`, hot-token posting lists — run
//! unbounded. A [`QueryBudget`] caps wall time, index IO, candidate work,
//! and result size; the searcher checks it *cooperatively* at stage
//! boundaries and inside its per-list / per-candidate loops, so an
//! exhausted budget surfaces as
//! [`crate::QueryError::BudgetExceeded`] carrying a **sound partial
//! outcome**: every match reported was fully verified before the budget
//! ran out (candidate texts are processed one at a time, in ascending text
//! order, and a text's match is only appended after its final collision
//! count), so the partial result is always a subset of the full result.
//!
//! The same checkpoints observe a [`CancelToken`], which is how
//! [`crate::BatchSearcher`] makes fail-fast batches stop in-flight queries
//! promptly instead of letting them run to completion.
//!
//! An unlimited budget (the default for [`crate::NearDupSearcher::search`])
//! costs one branch per checkpoint: limits are pre-resolved into a
//! `limited` flag at query start, so the governed path is always compiled
//! in without a measurable toll (the `query_throughput` bench gates this
//! at < 2%).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The resource dimension that ran out, reported in
/// [`crate::QueryError::BudgetExceeded`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Resource {
    /// The per-query time limit or absolute deadline passed.
    Deadline,
    /// More index bytes were read than `max_io_bytes`.
    IoBytes,
    /// More candidate texts reached verification than `max_candidates`.
    Candidates,
    /// More texts matched than `max_result_matches`.
    ResultMatches,
}

impl std::fmt::Display for Resource {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Resource::Deadline => write!(f, "deadline"),
            Resource::IoBytes => write!(f, "io-bytes"),
            Resource::Candidates => write!(f, "candidates"),
            Resource::ResultMatches => write!(f, "result-matches"),
        }
    }
}

/// Resource limits for one query. All limits default to "unbounded"; set
/// only the dimensions you care about:
///
/// ```
/// use std::time::Duration;
/// use ndss_query::QueryBudget;
///
/// let budget = QueryBudget::unlimited()
///     .time_limit(Duration::from_millis(50))
///     .max_io_bytes(8 << 20);
/// assert!(!budget.is_unlimited());
/// ```
#[derive(Debug, Clone, Default)]
pub struct QueryBudget {
    /// Wall-time allowance measured from the start of the query.
    pub time_limit: Option<Duration>,
    /// Absolute deadline (e.g. a batch-wide deadline shared by all
    /// queries). When both this and `time_limit` are set, the earlier
    /// instant wins.
    pub deadline: Option<Instant>,
    /// Maximum bytes read from the index on behalf of this query.
    pub max_io_bytes: Option<u64>,
    /// Maximum candidate texts admitted to verification (the paper's
    /// line 6 check). A sound cap: processing stops *between* texts, so
    /// every reported match is complete.
    pub max_candidates: Option<u64>,
    /// Maximum matched texts accumulated before stopping.
    pub max_result_matches: Option<usize>,
}

impl QueryBudget {
    /// A budget with no limits: the governed path reduces to a single
    /// branch per checkpoint.
    pub fn unlimited() -> Self {
        Self::default()
    }

    /// Caps wall time, measured from when the searcher starts the query.
    pub fn time_limit(mut self, limit: Duration) -> Self {
        self.time_limit = Some(limit);
        self
    }

    /// Sets an absolute deadline (combines with `time_limit`: earlier
    /// instant wins).
    pub fn deadline_at(mut self, deadline: Instant) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Caps bytes read from the index.
    pub fn max_io_bytes(mut self, bytes: u64) -> Self {
        self.max_io_bytes = Some(bytes);
        self
    }

    /// Caps candidate texts admitted to verification.
    pub fn max_candidates(mut self, texts: u64) -> Self {
        self.max_candidates = Some(texts);
        self
    }

    /// Caps matched texts accumulated.
    pub fn max_result_matches(mut self, matches: usize) -> Self {
        self.max_result_matches = Some(matches);
        self
    }

    /// Splits this budget for a fan-out across `shards` shards. Wall-clock
    /// limits (`time_limit`, `deadline`) are **shared** — every shard races
    /// the same clock, since they run concurrently — while the work caps
    /// (IO bytes, candidates, result matches) are **apportioned** with
    /// floor division clamped to ≥ 1, so every shard can make progress and
    /// the fan-out's total spend never exceeds `max(cap, shards)`. (Ceiling
    /// division looks safer but over-apportions precisely when the cap is
    /// small relative to the shard count: `cap = shards + 1` would give
    /// every shard 2, doubling the caller's limit. Floor division's only
    /// overshoot is the unavoidable ≥ 1 clamp.)
    pub fn split_across(&self, shards: usize) -> QueryBudget {
        assert!(shards > 0, "cannot split a budget across zero shards");
        let per = shards as u64;
        QueryBudget {
            time_limit: self.time_limit,
            deadline: self.deadline,
            max_io_bytes: self.max_io_bytes.map(|v| (v / per).max(1)),
            max_candidates: self.max_candidates.map(|v| (v / per).max(1)),
            max_result_matches: self.max_result_matches.map(|v| (v / shards).max(1)),
        }
    }

    /// Whether every dimension is unbounded.
    pub fn is_unlimited(&self) -> bool {
        self.time_limit.is_none()
            && self.deadline.is_none()
            && self.max_io_bytes.is_none()
            && self.max_candidates.is_none()
            && self.max_result_matches.is_none()
    }
}

/// A shared cancellation flag observed at every governor checkpoint.
///
/// Cancellation is cooperative and prompt-but-not-immediate: a query
/// observes the token the next time it reaches a checkpoint (between
/// stages, between posting lists, between candidate texts) and returns
/// [`crate::QueryError::Cancelled`] without issuing further IO.
#[derive(Debug, Clone, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Trips the flag; every clone observes it.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Relaxed);
    }

    /// Whether [`Self::cancel`] has been called on any clone.
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Relaxed)
    }
}

/// What a checkpoint decided.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Verdict {
    /// Keep going.
    Proceed,
    /// The cancel token tripped.
    Cancelled,
    /// A budget dimension ran out.
    Over(Resource),
}

/// Per-query budget state: limits resolved against the query's start time,
/// checked at every checkpoint. Constructed once per `search` call.
pub(crate) struct BudgetTracker<'c> {
    /// Earliest of `start + time_limit` and the absolute deadline.
    deadline: Option<Instant>,
    max_io_bytes: u64,
    max_candidates: u64,
    max_result_matches: u64,
    cancel: Option<&'c CancelToken>,
    /// Pre-resolved "any limit set": the unlimited fast path is this one
    /// branch (plus the cancel-token load when a token is attached).
    limited: bool,
    /// Checkpoints left until the next deadline clock read. Reading the
    /// monotonic clock dominates the cost of an enforced checkpoint, so it
    /// is strided: the first checkpoint always reads, then every
    /// [`CLOCK_STRIDE`]th. Deadline detection coarsens by at most
    /// `CLOCK_STRIDE - 1` checkpoints; the byte/candidate/match dimensions
    /// are still compared on every call.
    until_clock_read: std::cell::Cell<u32>,
}

/// Checkpoints between deadline clock reads on the enforced path.
const CLOCK_STRIDE: u32 = 16;

impl<'c> BudgetTracker<'c> {
    pub(crate) fn start(
        budget: &QueryBudget,
        cancel: Option<&'c CancelToken>,
        start: Instant,
    ) -> Self {
        let rel = budget.time_limit.map(|l| start + l);
        let deadline = match (rel, budget.deadline) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        Self {
            deadline,
            max_io_bytes: budget.max_io_bytes.unwrap_or(u64::MAX),
            max_candidates: budget.max_candidates.unwrap_or(u64::MAX),
            max_result_matches: budget
                .max_result_matches
                .map(|m| m as u64)
                .unwrap_or(u64::MAX),
            cancel,
            limited: !budget.is_unlimited(),
            until_clock_read: std::cell::Cell::new(0),
        }
    }

    /// One cooperative checkpoint. `io_bytes` / `candidates` / `matches`
    /// are the query's running totals; the closure-free signature keeps
    /// the call site a plain branch when unlimited.
    #[inline]
    pub(crate) fn check(&self, io_bytes: u64, candidates: u64, matches: u64) -> Verdict {
        if let Some(c) = self.cancel {
            if c.is_cancelled() {
                return Verdict::Cancelled;
            }
        }
        if !self.limited {
            return Verdict::Proceed;
        }
        if let Some(d) = self.deadline {
            let left = self.until_clock_read.get();
            if left == 0 {
                self.until_clock_read.set(CLOCK_STRIDE - 1);
                if Instant::now() >= d {
                    return Verdict::Over(Resource::Deadline);
                }
            } else {
                self.until_clock_read.set(left - 1);
            }
        }
        if io_bytes > self.max_io_bytes {
            return Verdict::Over(Resource::IoBytes);
        }
        if candidates > self.max_candidates {
            return Verdict::Over(Resource::Candidates);
        }
        if matches > self.max_result_matches {
            return Verdict::Over(Resource::ResultMatches);
        }
        Verdict::Proceed
    }

    /// Whether any budget dimension is actually bounded (used to skip
    /// io-snapshot reads on the unlimited path).
    #[inline]
    pub(crate) fn is_limited(&self) -> bool {
        self.limited
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Apportioned caps divide down, never up: with a cap barely above the
    /// shard count, ceiling division would hand every shard 2 and double
    /// the caller's limit; floor division keeps the sum at the cap.
    #[test]
    fn split_across_never_over_apportions() {
        let budget = QueryBudget::unlimited()
            .max_io_bytes(5)
            .max_candidates(5)
            .max_result_matches(5);
        let per = budget.split_across(4);
        assert_eq!(per.max_io_bytes, Some(1));
        assert_eq!(per.max_candidates, Some(1));
        assert_eq!(per.max_result_matches, Some(1));
        // Sum across shards (4) ≤ the caller's cap (5).
        assert!(per.max_io_bytes.unwrap() * 4 <= 5);
    }

    /// A cap smaller than the shard count clamps to 1 per shard — every
    /// shard can make progress, and the sum is bounded by the shard count
    /// (the minimum possible spend when all shards run).
    #[test]
    fn split_across_clamps_tiny_caps_to_one() {
        let budget = QueryBudget::unlimited()
            .max_io_bytes(2)
            .max_candidates(1)
            .max_result_matches(3);
        let per = budget.split_across(8);
        assert_eq!(per.max_io_bytes, Some(1));
        assert_eq!(per.max_candidates, Some(1));
        assert_eq!(per.max_result_matches, Some(1));
    }

    /// Even splits stay exact and wall-clock limits are shared, not
    /// divided.
    #[test]
    fn split_across_even_division_and_shared_clock() {
        let budget = QueryBudget::unlimited()
            .time_limit(Duration::from_secs(7))
            .max_io_bytes(800)
            .max_candidates(40)
            .max_result_matches(12);
        let per = budget.split_across(4);
        assert_eq!(per.time_limit, Some(Duration::from_secs(7)));
        assert_eq!(per.max_io_bytes, Some(200));
        assert_eq!(per.max_candidates, Some(10));
        assert_eq!(per.max_result_matches, Some(3));
        // Uneven: floor division, so the sum stays under the cap.
        let per = budget.split_across(3);
        assert_eq!(per.max_io_bytes, Some(266));
        assert!(per.max_io_bytes.unwrap() * 3 <= 800);
    }

    #[test]
    fn unlimited_budget_always_proceeds() {
        let budget = QueryBudget::unlimited();
        assert!(budget.is_unlimited());
        let tracker = BudgetTracker::start(&budget, None, Instant::now());
        assert!(!tracker.is_limited());
        assert_eq!(
            tracker.check(u64::MAX, u64::MAX, u64::MAX),
            Verdict::Proceed
        );
    }

    #[test]
    fn each_dimension_trips_independently() {
        let now = Instant::now();
        let io = BudgetTracker::start(&QueryBudget::unlimited().max_io_bytes(100), None, now);
        assert_eq!(io.check(100, 0, 0), Verdict::Proceed);
        assert_eq!(io.check(101, 0, 0), Verdict::Over(Resource::IoBytes));

        let cand = BudgetTracker::start(&QueryBudget::unlimited().max_candidates(3), None, now);
        assert_eq!(cand.check(0, 3, 0), Verdict::Proceed);
        assert_eq!(cand.check(0, 4, 0), Verdict::Over(Resource::Candidates));

        let m = BudgetTracker::start(&QueryBudget::unlimited().max_result_matches(1), None, now);
        assert_eq!(m.check(0, 0, 1), Verdict::Proceed);
        assert_eq!(m.check(0, 0, 2), Verdict::Over(Resource::ResultMatches));
    }

    #[test]
    fn deadline_uses_earliest_of_relative_and_absolute() {
        let start = Instant::now();
        let far = start + Duration::from_secs(3600);
        // Relative limit of zero has already passed even though the
        // absolute deadline is far away.
        let b = QueryBudget::unlimited()
            .time_limit(Duration::ZERO)
            .deadline_at(far);
        let tracker = BudgetTracker::start(&b, None, start);
        assert_eq!(tracker.check(0, 0, 0), Verdict::Over(Resource::Deadline));

        // And the other way round: an already-passed absolute deadline
        // beats a generous relative limit.
        let b = QueryBudget::unlimited()
            .time_limit(Duration::from_secs(3600))
            .deadline_at(start);
        let tracker = BudgetTracker::start(&b, None, start);
        assert_eq!(tracker.check(0, 0, 0), Verdict::Over(Resource::Deadline));
    }

    #[test]
    fn cancel_token_observed_even_when_unlimited() {
        let token = CancelToken::new();
        let budget = QueryBudget::unlimited();
        let tracker = BudgetTracker::start(&budget, Some(&token), Instant::now());
        assert_eq!(tracker.check(0, 0, 0), Verdict::Proceed);
        token.clone().cancel();
        assert_eq!(tracker.check(0, 0, 0), Verdict::Cancelled);
    }
}
