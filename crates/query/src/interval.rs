//! `IntervalScan` (paper Algorithm 5).
//!
//! Given a collection of inclusive integer intervals and a threshold `α`,
//! report every *elementary range* over which at least `α` intervals are
//! simultaneously active, together with the set of active intervals. The
//! classic sweep: each interval `[x, y]` contributes a start endpoint at `x`
//! and an end endpoint at `y + 1`; between two consecutive distinct endpoint
//! values the active set is constant.
//!
//! Elementary ranges partition the covered positions, so every position
//! with ≥ α active intervals appears in exactly one hit — the "once and only
//! once" of the paper's Lemma 1 (each *maximal* active subset is reported
//! once per elementary range; subsets of the active set are implicit).

/// An inclusive interval `[lo, hi]` tagged with the caller's identifier
/// (`collision_count` uses window indices).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interval {
    /// Caller-chosen tag identifying the interval.
    pub id: u32,
    /// Inclusive lower end.
    pub lo: u32,
    /// Inclusive upper end.
    pub hi: u32,
}

impl Interval {
    /// Creates an interval; `lo <= hi` required.
    pub fn new(id: u32, lo: u32, hi: u32) -> Self {
        debug_assert!(lo <= hi, "interval lo {lo} > hi {hi}");
        Self { id, lo, hi }
    }
}

/// One sweep hit: over every position in `[range_lo, range_hi]`, exactly the
/// intervals tagged by `active` are active (and `active.len() ≥ α`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScanHit {
    /// Inclusive elementary range start.
    pub range_lo: u32,
    /// Inclusive elementary range end.
    pub range_hi: u32,
    /// Tags of the active intervals, in insertion order.
    pub active: Vec<u32>,
}

/// Runs the sweep. Returns hits ordered by `range_lo`; an empty input or an
/// unreachable threshold yields no hits. `alpha ≥ 1` is required (a zero
/// threshold would make "all positions in ℕ" a hit).
pub fn interval_scan(intervals: &[Interval], alpha: usize) -> Vec<ScanHit> {
    assert!(alpha >= 1, "threshold must be at least 1");
    if intervals.len() < alpha {
        return Vec::new();
    }
    // Endpoints: (position, is_end, interval index). `u64` positions so
    // `hi + 1` cannot overflow at u32::MAX.
    let mut endpoints: Vec<(u64, bool, u32)> = Vec::with_capacity(intervals.len() * 2);
    for (idx, iv) in intervals.iter().enumerate() {
        endpoints.push((iv.lo as u64, false, idx as u32));
        endpoints.push((iv.hi as u64 + 1, true, idx as u32));
    }
    endpoints.sort_unstable_by_key(|&(pos, is_end, _)| (pos, is_end));

    let mut hits = Vec::new();
    // Active interval indices; removal is O(active) which is fine for the
    // small groups collision counting feeds us (the paper accepts
    // O(m² log m) here).
    let mut active: Vec<u32> = Vec::new();
    let mut i = 0;
    while i < endpoints.len() {
        let pos = endpoints[i].0;
        // Apply every endpoint at this position.
        while i < endpoints.len() && endpoints[i].0 == pos {
            let (_, is_end, idx) = endpoints[i];
            if is_end {
                let at = active
                    .iter()
                    .position(|&a| a == idx)
                    .expect("ending an interval that is active");
                active.remove(at);
            } else {
                active.push(idx);
            }
            i += 1;
        }
        if active.len() >= alpha {
            // The active set persists until the next distinct endpoint.
            let next = endpoints[i].0; // ends exist for all active intervals
            hits.push(ScanHit {
                range_lo: pos as u32,
                range_hi: (next - 1) as u32,
                active: active
                    .iter()
                    .map(|&idx| intervals[idx as usize].id)
                    .collect(),
            });
        }
    }
    hits
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Brute-force oracle: for every position, which intervals contain it?
    fn oracle(intervals: &[Interval], alpha: usize) -> Vec<(u32, Vec<u32>)> {
        let max = intervals.iter().map(|iv| iv.hi).max().unwrap_or(0);
        let mut out = Vec::new();
        for pos in 0..=max {
            let mut ids: Vec<u32> = intervals
                .iter()
                .filter(|iv| iv.lo <= pos && pos <= iv.hi)
                .map(|iv| iv.id)
                .collect();
            if ids.len() >= alpha {
                ids.sort_unstable();
                out.push((pos, ids));
            }
        }
        out
    }

    /// Expands hits to per-position active sets for oracle comparison.
    fn expand(hits: &[ScanHit]) -> Vec<(u32, Vec<u32>)> {
        let mut out = Vec::new();
        for h in hits {
            for pos in h.range_lo..=h.range_hi {
                let mut ids = h.active.clone();
                ids.sort_unstable();
                out.push((pos, ids));
            }
        }
        out.sort();
        out
    }

    fn check(intervals: &[Interval], alpha: usize) {
        assert_eq!(
            expand(&interval_scan(intervals, alpha)),
            oracle(intervals, alpha),
            "mismatch for {intervals:?} alpha={alpha}"
        );
    }

    #[test]
    fn simple_overlap() {
        let ivs = [
            Interval::new(0, 1, 5),
            Interval::new(1, 3, 8),
            Interval::new(2, 4, 4),
        ];
        for alpha in 1..=3 {
            check(&ivs, alpha);
        }
    }

    #[test]
    fn disjoint_intervals() {
        let ivs = [Interval::new(0, 0, 2), Interval::new(1, 5, 9)];
        check(&ivs, 1);
        assert!(interval_scan(&ivs, 2).is_empty());
    }

    #[test]
    fn identical_intervals() {
        let ivs = [
            Interval::new(0, 3, 7),
            Interval::new(1, 3, 7),
            Interval::new(2, 3, 7),
        ];
        let hits = interval_scan(&ivs, 3);
        assert_eq!(hits.len(), 1);
        assert_eq!((hits[0].range_lo, hits[0].range_hi), (3, 7));
        assert_eq!(hits[0].active.len(), 3);
        check(&ivs, 2);
    }

    #[test]
    fn point_intervals_and_touching_ends() {
        let ivs = [
            Interval::new(0, 5, 5),
            Interval::new(1, 5, 5),
            Interval::new(2, 6, 6),
            Interval::new(3, 4, 5),
        ];
        for alpha in 1..=4 {
            check(&ivs, alpha);
        }
    }

    #[test]
    fn elementary_ranges_partition_coverage() {
        let ivs = [
            Interval::new(0, 0, 10),
            Interval::new(1, 2, 6),
            Interval::new(2, 4, 12),
        ];
        let hits = interval_scan(&ivs, 1);
        // No two hits may overlap.
        for (a, b) in hits.iter().zip(hits.iter().skip(1)) {
            assert!(a.range_hi < b.range_lo);
        }
        check(&ivs, 1);
    }

    #[test]
    fn pseudorandom_cross_check() {
        // Dense random intervals with many ties stress every branch.
        let mut state = 12345u64;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as u32
        };
        for trial in 0..50 {
            let n = 1 + (next() % 12) as usize;
            let intervals: Vec<Interval> = (0..n)
                .map(|id| {
                    let lo = next() % 20;
                    let hi = lo + next() % 10;
                    Interval::new(id as u32, lo, hi)
                })
                .collect();
            for alpha in 1..=n {
                check(&intervals, alpha);
            }
            let _ = trial;
        }
    }

    #[test]
    fn empty_input() {
        assert!(interval_scan(&[], 1).is_empty());
    }

    #[test]
    fn u32_max_boundary() {
        let ivs = [Interval::new(0, u32::MAX - 2, u32::MAX)];
        let hits = interval_scan(&ivs, 1);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].range_hi, u32::MAX);
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_alpha_rejected() {
        interval_scan(&[Interval::new(0, 0, 1)], 0);
    }
}
