//! Query processing for near-duplicate sequence search (paper §3.5).
//!
//! Given a query sequence `Q` and similarity threshold `θ`, the processor
//! finds every sequence `T[i..=j]` (length ≥ t) in the indexed corpus whose
//! min-hash sketch collides with `Q`'s on at least `β = ⌈kθ⌉` of the `k`
//! hash functions — the paper's Definition 2, solved *exactly* (sound and
//! complete, Theorem 2). The pipeline:
//!
//! 1. sketch `Q` and look up the `k` inverted lists (`ndss-index`);
//! 2. **prefix filtering** (Algorithm 3): read only the short lists, find
//!    texts that could still reach `β` collisions, then probe the long lists
//!    through zone maps for those candidate texts only;
//! 3. **collision counting** (Algorithm 4 / [`collision::collision_count`]):
//!    per candidate text, split each compact window into its left interval
//!    `[l, c]` and right interval `[c, r]` and intersect them with two
//!    nested [`interval::interval_scan`] sweeps (Algorithm 5), yielding
//!    disjoint *rectangles* `([x, x'], [y, y'])` of sequences that all share
//!    the same collision count;
//! 4. post-process: impose the length threshold on materialized sequences,
//!    count them arithmetically, merge overlapping sequences into disjoint
//!    spans (the paper's Remark), and optionally verify true Jaccard
//!    similarity against the corpus.
//!
//! [`bruteforce`] holds the quadratic reference implementations of both the
//! exact (Definition 1) and approximate (Definition 2) problems; property
//! and integration tests assert the indexed search equals the Definition 2
//! oracle exactly.
//!
//! # Example
//!
//! ```
//! use ndss_corpus::InMemoryCorpus;
//! use ndss_index::{IndexConfig, MemoryIndex};
//! use ndss_query::NearDupSearcher;
//!
//! // Text 1 repeats a 30-token span of text 0.
//! let shared: Vec<u32> = (1000..1030).collect();
//! let mut t0: Vec<u32> = (0..50).collect();
//! t0.extend(&shared);
//! let mut t1: Vec<u32> = (500..540).collect();
//! t1.extend(&shared);
//! let corpus = InMemoryCorpus::from_texts(vec![t0, t1]);
//!
//! let index = MemoryIndex::build(&corpus, IndexConfig::new(16, 20, 7)).unwrap();
//! let searcher = NearDupSearcher::new(&index).unwrap();
//! let outcome = searcher.search(&shared, 0.9).unwrap();
//! let texts: Vec<u32> = outcome.matches.iter().map(|m| m.text).collect();
//! assert_eq!(texts, vec![0, 1]);
//! ```

pub mod batch;
pub mod breaker;
pub mod bruteforce;
pub mod collision;
pub mod document;
pub mod governor;
pub mod interval;
mod metrics;
pub mod overlay;
pub mod planner;
pub mod search;
pub mod serving;
pub mod sharded;

pub use batch::{BatchSearcher, FailurePolicy, ShedReason};
pub use breaker::{
    classify, Admission, BreakerConfig, BreakerSnapshot, BreakerState, DegradedShard, FaultKind,
    ShardHealth,
};
pub use collision::{
    collision_count, collision_count_fn_into, collision_count_into, CollisionScratch, Rectangle,
};
pub use document::{DocumentMatch, DocumentScan};
pub use governor::{CancelToken, QueryBudget, Resource};
pub use interval::{interval_scan, Interval, ScanHit};
pub use overlay::OverlaySearcher;
pub use planner::{plan_query, QueryPlan};
pub use search::{
    NearDupSearcher, PrefixFilter, QueryStats, RankedMatch, SearchOutcome, TextMatch,
};
pub use serving::{ServingIndex, ServingOptions, ServingSearcher};
pub use sharded::{FaultPolicy, ShardedIndex, ShardedSearcher};

/// Errors raised during query processing.
#[derive(Debug)]
pub enum QueryError {
    /// The query sequence is empty.
    EmptyQuery,
    /// The similarity threshold must lie in (0, 1].
    BadThreshold(f64),
    /// Verified search would enumerate more candidate sequences than the
    /// caller's cap.
    TooManyCandidates {
        /// Sequences the approximate search produced.
        found: u64,
        /// The caller-provided cap.
        cap: usize,
    },
    /// A resource budget ran out mid-query. `partial` is a **sound**
    /// partial outcome: every match in it was fully verified before the
    /// budget tripped (a subset of what the un-budgeted query would
    /// return), with [`SearchOutcome::complete`] set to `false`.
    BudgetExceeded {
        /// Which budget dimension ran out.
        resource: governor::Resource,
        /// Verified matches found so far, flagged incomplete.
        partial: Box<SearchOutcome>,
    },
    /// The batch engine shed this query before starting it; `reason` says
    /// whether the admission cap was hit or the batch deadline had already
    /// passed — the two call for different operator responses (capacity vs
    /// latency budget).
    Overloaded {
        /// The query's position in the batch.
        position: usize,
        /// Why the query was shed.
        reason: ShedReason,
    },
    /// The query was abandoned at a governor checkpoint because its batch
    /// failed fast (see [`BatchSearcher::search_all`]).
    Cancelled,
    /// Under [`FaultPolicy::Isolate`], every shard of the view is
    /// quarantined (or faulted during this very query): there is no
    /// healthy subset to build even a degraded answer from. Carries the
    /// most recent classified fault as the representative cause.
    AllShardsQuarantined {
        /// Total shards in the view, all unavailable.
        shards: usize,
        /// Classification of the representative fault.
        kind: FaultKind,
        /// Human-readable cause of the representative fault.
        reason: String,
    },
    /// Error from the index layer.
    Index(ndss_index::IndexError),
    /// Error from the corpus layer (verification mode).
    Corpus(ndss_corpus::CorpusError),
}

impl std::fmt::Display for QueryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QueryError::EmptyQuery => write!(f, "query sequence is empty"),
            QueryError::BadThreshold(theta) => {
                write!(f, "similarity threshold {theta} outside (0, 1]")
            }
            QueryError::TooManyCandidates { found, cap } => write!(
                f,
                "verification would enumerate {found} sequences (cap {cap}); \
                 raise the cap or the threshold"
            ),
            QueryError::BudgetExceeded { resource, partial } => write!(
                f,
                "query budget exceeded ({resource}); {} verified match(es) found before stopping",
                partial.matches.len()
            ),
            QueryError::Overloaded { position, reason } => match reason {
                ShedReason::AdmissionCap { cap } => {
                    write!(f, "query {position} shed by admission control (cap {cap})")
                }
                ShedReason::BatchDeadline => {
                    write!(
                        f,
                        "query {position} shed: the batch deadline passed before it started"
                    )
                }
            },
            QueryError::Cancelled => write!(f, "query cancelled by its batch"),
            QueryError::AllShardsQuarantined {
                shards,
                kind,
                reason,
            } => write!(
                f,
                "all {shards} shard(s) quarantined ({}): {reason}",
                kind.label()
            ),
            QueryError::Index(e) => e.fmt(f),
            QueryError::Corpus(e) => e.fmt(f),
        }
    }
}

impl std::error::Error for QueryError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            QueryError::Index(e) => Some(e),
            QueryError::Corpus(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ndss_index::IndexError> for QueryError {
    fn from(e: ndss_index::IndexError) -> Self {
        QueryError::Index(e)
    }
}

impl From<ndss_corpus::CorpusError> for QueryError {
    fn from(e: ndss_corpus::CorpusError) -> Self {
        QueryError::Corpus(e)
    }
}
