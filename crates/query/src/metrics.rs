//! Registry mirror for the query path.
//!
//! Each [`crate::NearDupSearcher`] registers one set of handles at
//! construction (a single registry lock), then folds every completed
//! [`crate::QueryStats`] into them with pure atomic adds — the per-query
//! accumulator stays the attribution mechanism, the registry the
//! process-wide aggregation, so there is exactly one accounting system.

use ndss_obs::{Counter, Histogram, Registry, Unit};

use crate::search::QueryStats;

pub(crate) struct QueryMetrics {
    queries: Counter,
    latency: Histogram,
    stage_sketch: Histogram,
    stage_plan: Histogram,
    stage_gather: Histogram,
    stage_count: Histogram,
    stage_probe: Histogram,
    io_time: Histogram,
    io_bytes: Counter,
    postings_read: Counter,
    lists_loaded: Counter,
    long_probes: Counter,
    candidate_texts: Counter,
    matched_texts: Counter,
    budget_exceeded: Counter,
    shed: Counter,
}

impl QueryMetrics {
    pub(crate) fn register(reg: &Registry) -> Self {
        Self {
            queries: reg.counter("query.count", "Queries executed"),
            latency: reg.histogram("query.seconds", "End-to-end query latency", Unit::Seconds),
            stage_sketch: reg.histogram(
                "query.stage.sketch.seconds",
                "Time computing the query's k-mins sketch",
                Unit::Seconds,
            ),
            stage_plan: reg.histogram(
                "query.stage.plan.seconds",
                "Time classifying lists (prefix filter / cost model)",
                Unit::Seconds,
            ),
            stage_gather: reg.histogram(
                "query.stage.gather.seconds",
                "Time loading short lists and grouping windows by text",
                Unit::Seconds,
            ),
            stage_count: reg.histogram(
                "query.stage.count.seconds",
                "Time in collision counting and candidate verification",
                Unit::Seconds,
            ),
            stage_probe: reg.histogram(
                "query.stage.probe.seconds",
                "Time probing long lists through zone maps",
                Unit::Seconds,
            ),
            io_time: reg.histogram(
                "query.io.seconds",
                "Per-query wall time inside index reads",
                Unit::Seconds,
            ),
            io_bytes: reg.counter("query.io.bytes", "Bytes read from the index by queries"),
            postings_read: reg.counter("query.postings", "Postings materialized by queries"),
            lists_loaded: reg.counter("query.lists.loaded", "Short lists read in full"),
            long_probes: reg.counter("query.lists.probed", "Zone-map probes into long lists"),
            candidate_texts: reg.counter(
                "query.texts.candidates",
                "Texts passing the reduced collision threshold",
            ),
            matched_texts: reg.counter(
                "query.texts.matched",
                "Texts with at least one qualifying sequence",
            ),
            budget_exceeded: reg.counter(
                "query.budget_exceeded",
                "Queries stopped by a resource budget (partial results returned)",
            ),
            shed: reg.counter(
                "query.shed",
                "Queries shed by batch admission control or an expired batch deadline",
            ),
        }
    }

    /// One query returned `BudgetExceeded`.
    pub(crate) fn record_budget_exceeded(&self) {
        self.budget_exceeded.inc(1);
    }

    /// One query was shed before starting (admission cap or batch
    /// deadline already passed).
    pub(crate) fn record_shed(&self) {
        self.shed.inc(1);
    }

    pub(crate) fn observe(&self, stats: &QueryStats) {
        self.queries.inc(1);
        self.latency.record_duration(stats.total);
        self.stage_sketch.record_duration(stats.stage_sketch);
        self.stage_plan.record_duration(stats.stage_plan);
        self.stage_gather.record_duration(stats.stage_gather);
        self.stage_count.record_duration(stats.stage_count);
        self.stage_probe.record_duration(stats.stage_probe);
        self.io_time.record_duration(stats.io_time);
        self.io_bytes.inc(stats.io_bytes);
        self.postings_read.inc(stats.postings_read);
        self.lists_loaded.inc(stats.lists_loaded as u64);
        self.long_probes.inc(stats.long_probes as u64);
        self.candidate_texts.inc(stats.candidate_texts as u64);
        self.matched_texts.inc(stats.matched_texts as u64);
    }
}
