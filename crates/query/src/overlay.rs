//! Overlay queries: RAM segments merged over the disk index.
//!
//! The ingest path ([`ndss_index::ingest`]) holds acked-but-unpublished
//! texts in in-memory [`MemSegment`]s. A query against such a store must
//! see *both* worlds — the published generations on disk and the memtable
//! — and must see them exactly once each: bit-identical to what a full
//! rebuild containing the same texts would return.
//!
//! [`OverlaySearcher`] does this the same way the sharded scatter-gather
//! does: each lane (the disk view, then each segment in ascending base
//! order) is searched independently, matches are re-based to global text
//! ids, and lanes are appended in global text order. Correctness under
//! concurrent compaction hangs on one rule:
//!
//! > a segment is overlaid **iff** `segment.base >= covered`, where
//! > `covered` is the text count of the *pinned* disk snapshot.
//!
//! Segments publish whole, so the pinned snapshot's text count is either
//! `<= base` (segment not yet published: overlay it) or `>= base + len`
//! (published: the disk lane already serves those texts) — the
//! segment-granular filter is exact under any interleaving of publish,
//! trim, and reload. [`OverlaySearcher::push_segment`] applies the rule.

use std::time::Instant;

use ndss_hash::TokenId;
use ndss_index::MemSegment;

use crate::governor::{QueryBudget, Resource};
use crate::search::{NearDupSearcher, RankedMatch, SearchOutcome};
use crate::sharded::{accumulate_stats, ShardedSearcher};
use crate::QueryError;

/// One RAM lane: a segment plus its searcher, matches re-based by `base`.
struct MemLane<'a> {
    base: u64,
    searcher: NearDupSearcher<'a, MemSegment>,
}

/// Merges memtable segments over an optional disk lane in global text
/// order. See the module docs for the exactness rule.
pub struct OverlaySearcher<'a> {
    disk: Option<ShardedSearcher<'a>>,
    /// Texts the disk lane covers (the pinned snapshot's text count; 0
    /// with no disk lane).
    covered: u64,
    lanes: Vec<MemLane<'a>>,
    /// End (exclusive) of the last overlaid lane — ascending-order guard.
    last_end: u64,
    /// `(k, t)` for synthesizing empty outcomes when no lane exists.
    k: usize,
    t: u32,
}

impl<'a> OverlaySearcher<'a> {
    /// An overlay over `disk` (pass `None` for a store with no published
    /// generation yet). `covered` must be the pinned disk snapshot's text
    /// count — not a re-read of `CURRENT`, which may have advanced past
    /// the snapshot. `k`/`t` are the index configuration's parameters
    /// (used to shape results when every lane is empty).
    pub fn new(disk: Option<ShardedSearcher<'a>>, covered: u64, k: usize, t: u32) -> Self {
        debug_assert!(
            disk.is_some() || covered == 0,
            "no disk lane covers no texts"
        );
        OverlaySearcher {
            disk,
            covered,
            lanes: Vec::new(),
            last_end: covered,
            k,
            t,
        }
    }

    /// Overlays `segment`, skipping it when the disk lane already covers
    /// its texts (the publish-before-trim crash/race window). Segments
    /// must be pushed in ascending, disjoint text order — callers iterate
    /// [`ndss_index::IngestIndex::segments`], which is ordered.
    pub fn push_segment(&mut self, segment: &'a MemSegment) -> Result<(), QueryError> {
        if segment.is_empty() {
            return Ok(());
        }
        if segment.base() < self.covered {
            // Already published into the pinned snapshot: the disk lane
            // serves these texts. (Segments publish whole, so a partially
            // covered segment cannot exist.)
            return Ok(());
        }
        debug_assert!(
            segment.base() >= self.last_end,
            "segments must arrive in ascending, disjoint text order"
        );
        self.last_end = segment.base() + segment.len() as u64;
        self.lanes.push(MemLane {
            base: segment.base(),
            searcher: NearDupSearcher::new(segment)?,
        });
        Ok(())
    }

    /// Number of overlay lanes actually in play (excluded segments don't
    /// count).
    pub fn num_segments(&self) -> usize {
        self.lanes.len()
    }

    /// Runs one query across disk + RAM. Equivalent to
    /// [`Self::search_governed`] with an unlimited budget.
    pub fn search(&self, query: &[TokenId], theta: f64) -> Result<SearchOutcome, QueryError> {
        self.search_governed(query, theta, &QueryBudget::unlimited())
    }

    /// [`Self::search`] under a budget. The budget is shared across lanes
    /// (the deadline naturally; work caps are charged per lane). A tripped
    /// lane stops the merge, so the partial carried in
    /// [`QueryError::BudgetExceeded`] is a sound global-text-order prefix —
    /// the same contract the sharded scatter gives.
    pub fn search_governed(
        &self,
        query: &[TokenId],
        theta: f64,
        budget: &QueryBudget,
    ) -> Result<SearchOutcome, QueryError> {
        let started = Instant::now();
        let mut merged: Option<SearchOutcome> = None;
        let mut tripped: Option<Resource> = None;

        if let Some(disk) = &self.disk {
            match disk.search_governed(query, theta, budget) {
                Ok(outcome) => merged = Some(outcome),
                Err(QueryError::BudgetExceeded { resource, partial }) => {
                    merged = Some(*partial);
                    tripped = Some(resource);
                }
                Err(e) => return Err(e),
            }
        }

        if tripped.is_none() {
            for lane in &self.lanes {
                let (mut outcome, resource) =
                    match lane.searcher.search_governed(query, theta, budget) {
                        Ok(o) => (o, None),
                        Err(QueryError::BudgetExceeded { resource, partial }) => {
                            (*partial, Some(resource))
                        }
                        Err(e) => return Err(e),
                    };
                let base = lane.base as u32;
                for m in &mut outcome.matches {
                    m.text += base;
                }
                merged = Some(match merged.take() {
                    None => outcome,
                    Some(mut acc) => {
                        acc.matches.append(&mut outcome.matches);
                        accumulate_stats(&mut acc.stats, &outcome.stats);
                        acc.complete = acc.complete && outcome.complete;
                        acc
                    }
                });
                if resource.is_some() {
                    tripped = resource;
                    break;
                }
            }
        }

        let mut outcome = match merged {
            Some(o) => o,
            None => {
                // No lane at all (fresh store, empty memtable): an empty but
                // well-formed result — after validating the query the same
                // way a real lane would.
                if query.is_empty() {
                    return Err(QueryError::EmptyQuery);
                }
                if !(theta > 0.0 && theta <= 1.0) {
                    return Err(QueryError::BadThreshold(theta));
                }
                SearchOutcome {
                    matches: Vec::new(),
                    stats: Default::default(),
                    beta: (self.k as f64 * theta).ceil() as usize,
                    t: self.t,
                    complete: true,
                    degraded: Vec::new(),
                }
            }
        };
        outcome.stats.total = started.elapsed();
        match tripped {
            None => Ok(outcome),
            Some(resource) => {
                outcome.complete = false;
                Err(QueryError::BudgetExceeded {
                    resource,
                    partial: Box::new(outcome),
                })
            }
        }
    }

    /// Ranks an outcome's matches. Ranking depends only on the shared
    /// configuration, so any lane's searcher ranks the merged (global-id)
    /// outcome.
    pub fn rank(&self, outcome: &SearchOutcome, limit: usize) -> Vec<RankedMatch> {
        if let Some(disk) = &self.disk {
            return disk.rank(outcome, limit);
        }
        if let Some(lane) = self.lanes.first() {
            return lane.searcher.rank(outcome, limit);
        }
        Vec::new()
    }
}
