//! Per-query cost-based planning of the long/short list split.
//!
//! The paper delegates the choice of the prefix-filtering cutoff to cost
//! models from the set-similarity literature ("a few works design
//! cost-models to choose a good cutoff of long and short inverted lists",
//! §3.5 citing [7, 22, 62]). A static percentile cutoff (the
//! [`crate::PrefixFilter`] policies) treats every query alike; this module
//! implements the adaptive alternative: given the *actual* lengths of the
//! query's k lists, choose which to defer so the estimated total work is
//! minimal.
//!
//! # Cost model
//!
//! Reading short lists costs their postings. Deferring lists to the probe
//! phase costs, per candidate text, one zone probe of roughly
//! `zone_step` postings per deferred list. The number of candidates shrinks
//! as the reduced threshold `α₀ = β − (#long)` grows, which couples the two
//! choices. We estimate candidates from the short-list postings with a
//! union-bound heuristic and search over the number of deferred lists
//! `0 ≤ d ≤ β − 1` (soundness bound), always deferring the longest lists
//! first — for a fixed `d` that dominates every other choice of which lists
//! to defer.

use crate::QueryError;
use ndss_index::IndexAccess;

/// The outcome of planning: which hash functions' lists to defer (probe per
/// candidate) and the estimated costs that justified it.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryPlan {
    /// Hash-function indices whose lists are deferred, longest first.
    pub deferred: Vec<usize>,
    /// Estimated postings read if nothing were deferred.
    pub full_cost: f64,
    /// Estimated postings read under this plan.
    pub planned_cost: f64,
}

/// Plans the long/short split for one query's list lengths.
///
/// `lens[f]` is the length of the list the query's sketch selects under
/// function `f`; `beta` the collision threshold; `zone_step` the index's
/// zone-map sampling step (probe granularity).
pub fn plan_query(lens: &[u64], beta: usize, zone_step: u32) -> QueryPlan {
    let k = lens.len();
    let full_cost: f64 = lens.iter().map(|&l| l as f64).sum();
    // Order functions by list length, longest first: for any number of
    // deferrals d, deferring the d longest minimizes short-list reads while
    // maximizing α₀'s filtering power relative to the alternatives.
    let mut order: Vec<usize> = (0..k).collect();
    order.sort_unstable_by_key(|&f| std::cmp::Reverse(lens[f]));

    let mut best_d = 0usize;
    let mut best_cost = full_cost;
    // d may not exceed β − 1 (soundness: α₀ ≥ 1) nor k.
    let max_d = beta.saturating_sub(1).min(k);
    for d in 1..=max_d {
        let alpha0 = beta - d;
        let short_cost: f64 = order[d..].iter().map(|&f| lens[f] as f64).sum();
        // Candidate estimate: a text needs α₀ short-list postings; treat
        // postings as spread over distinct texts (worst case for us) so the
        // candidate count is at most (short postings) / α₀.
        let candidates = short_cost / alpha0 as f64;
        // Each candidate probes every deferred list: one zone-map chunk of
        // about `zone_step` postings (plus the cached zone map itself,
        // amortized to ~0 across candidates).
        let probe_cost = candidates * d as f64 * zone_step as f64;
        let cost = short_cost + probe_cost;
        if cost < best_cost {
            best_cost = cost;
            best_d = d;
        }
    }
    QueryPlan {
        deferred: order[..best_d].to_vec(),
        full_cost,
        planned_cost: best_cost,
    }
}

/// Convenience: plan directly from an index and a sketch.
pub fn plan_for_sketch<I: IndexAccess + ?Sized>(
    index: &I,
    sketch: &ndss_hash::Sketch,
    beta: usize,
) -> Result<QueryPlan, QueryError> {
    let config = index.config();
    let lens: Vec<u64> = (0..config.k)
        .map(|f| index.list_len(f, sketch.value(f)))
        .collect::<Result<_, _>>()?;
    Ok(plan_query(&lens, beta, config.zone_step))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_short_lists_defer_nothing() {
        // All lists tiny: probing can only add cost.
        let lens = vec![4u64; 16];
        let plan = plan_query(&lens, 13, 256);
        assert!(plan.deferred.is_empty());
        assert_eq!(plan.planned_cost, plan.full_cost);
    }

    #[test]
    fn one_huge_list_is_deferred() {
        let mut lens = vec![10u64; 16];
        lens[3] = 1_000_000;
        let plan = plan_query(&lens, 13, 64);
        assert_eq!(plan.deferred, vec![3]);
        assert!(plan.planned_cost < plan.full_cost / 100.0);
    }

    #[test]
    fn deferral_respects_soundness_bound() {
        // Even if every list is huge, at most β − 1 may be deferred.
        let lens = vec![1_000_000u64; 8];
        let plan = plan_query(&lens, 3, 64);
        assert!(plan.deferred.len() <= 2);
    }

    #[test]
    fn longest_lists_are_deferred_first() {
        let lens = vec![10u64, 500_000, 20, 800_000, 30, 40, 50, 60];
        let plan = plan_query(&lens, 6, 64);
        assert!(!plan.deferred.is_empty());
        assert_eq!(plan.deferred[0], 3);
        if plan.deferred.len() > 1 {
            assert_eq!(plan.deferred[1], 1);
        }
    }

    #[test]
    fn plan_cost_never_exceeds_full_cost() {
        // Pseudo-random stress: the planner must never pick a plan it
        // estimates as worse than reading everything.
        let mut state = 42u64;
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            state >> 33
        };
        for _ in 0..200 {
            let k = 1 + (next() % 64) as usize;
            let lens: Vec<u64> = (0..k).map(|_| next() % 100_000).collect();
            let beta = 1 + (next() as usize % k);
            let plan = plan_query(&lens, beta, 256);
            assert!(plan.planned_cost <= plan.full_cost + 1e-9);
            assert!(plan.deferred.len() <= beta.saturating_sub(1));
        }
    }

    #[test]
    fn beta_one_never_defers() {
        let lens = vec![1_000_000u64; 4];
        let plan = plan_query(&lens, 1, 64);
        assert!(plan.deferred.is_empty());
    }
}
