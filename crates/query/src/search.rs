//! `NearDuplicateSearch` (paper Algorithm 3): the end-to-end query pipeline
//! with prefix filtering, zone-map probes, and result post-processing.

use std::time::{Duration, Instant};

use ndss_corpus::{CorpusSource, SeqRef, SeqSpan, TextId};
use ndss_hash::jaccard::distinct_jaccard;
use ndss_hash::minhash::collision_threshold;
use ndss_hash::{MinHasher, TokenId};
use ndss_index::{IndexAccess, IoStats, Posting};
use ndss_windows::CompactWindow;

use crate::collision::{
    collision_count_fn_into, collision_count_into, CollisionScratch, Rectangle,
};
use crate::governor::{BudgetTracker, CancelToken, QueryBudget, Resource, Verdict};
use crate::QueryError;

/// How the searcher decides which inverted lists are "long" (skipped during
/// candidate generation and probed per candidate text instead, §3.5).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PrefixFilter {
    /// Always read all k lists (no filtering).
    Disabled,
    /// Lists with at least this many postings are long.
    MaxListLen(u64),
    /// The top `fraction` of each function's lists by length are long —
    /// the paper's "x% most frequent tokens" knob (Figure 3(d) sweeps
    /// 5%–20%). Computed from the index's list-length histogram.
    FrequentFraction(f64),
    /// Decide per query with the cost model in [`crate::planner`]: defer
    /// whichever lists minimize the estimated postings read, given the
    /// query's actual list lengths (the paper's §3.5 cost-model reference).
    Adaptive,
}

/// The `FrequentFraction` long-list cutoff for one hash function: walk the
/// list-length histogram `hist` (ascending `(length, count)` pairs) from
/// the longest lists down until `⌊total × fraction⌋` lists are spent;
/// everything at or above the stopping length is long.
///
/// Boundary behavior (pinned by unit tests):
/// * `total = 0` (empty index) → `u64::MAX`: no list is ever long;
/// * `fraction = 0.0` → `u64::MAX`: a zero budget marks nothing long;
/// * `fraction = 1.0` → the minimum list length: every list is eligible
///   (the searcher's ⌊β/2⌋ cap keeps the reduced threshold sound anyway).
///
/// The budget is clamped to `total` because `total as f64` rounds for
/// counts above 2⁵³, and `(total as f64 * 1.0).floor()` could then exceed
/// the true total — the clamp keeps "all lists" the worst case.
pub(crate) fn fraction_cutoff(hist: &[(u64, u64)], fraction: f64) -> u64 {
    let total: u64 = hist.iter().map(|&(_, c)| c).sum();
    let budget = ((total as f64 * fraction).floor().max(0.0) as u64).min(total);
    let mut cutoff = u64::MAX;
    let mut used = 0u64;
    for &(len, count) in hist.iter().rev() {
        if used + count > budget {
            break;
        }
        used += count;
        cutoff = len;
    }
    cutoff
}

/// Per-query cost and outcome accounting. `io_*` comes from a per-query
/// [`IoStats`] accumulator the searcher threads through every index read —
/// NOT from diffing the index's global counters, which under concurrent
/// queries would charge this query with other queries' IO. `cpu` is wall
/// time minus IO time, reproducing the paper's stacked latency bars.
#[derive(Debug, Clone, Default)]
pub struct QueryStats {
    /// End-to-end wall time.
    pub total: Duration,
    /// Wall time spent inside index reads.
    pub io_time: Duration,
    /// Bytes read from the index.
    pub io_bytes: u64,
    /// Index reads served from the hot posting-list cache.
    pub cache_hits: u64,
    /// Index reads that went to disk.
    pub cache_misses: u64,
    /// `total − io_time`.
    pub cpu_time: Duration,
    /// Zone-map consults served by the zone cache.
    pub zone_hits: u64,
    /// Zone-map consults that read the zone table from disk.
    pub zone_misses: u64,
    /// Time computing the query's k-mins sketch.
    pub stage_sketch: Duration,
    /// Time classifying lists (prefix filter or per-query cost model).
    pub stage_plan: Duration,
    /// Time loading short lists and grouping windows by text.
    pub stage_gather: Duration,
    /// Time in collision counting and candidate verification (probe time
    /// excluded).
    pub stage_count: Duration,
    /// Time probing long lists through zone maps.
    pub stage_probe: Duration,
    /// Short lists read in full.
    pub lists_loaded: usize,
    /// Long lists skipped during candidate generation.
    pub lists_long: usize,
    /// Zone-map probes into long lists (one per candidate text × long list).
    pub long_probes: usize,
    /// Postings materialized (short lists + probes).
    pub postings_read: u64,
    /// Texts whose short-list window groups reached the reduced threshold.
    pub candidate_texts: usize,
    /// Texts with at least one final near-duplicate sequence.
    pub matched_texts: usize,
}

/// All near-duplicate rectangles found in one text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TextMatch {
    /// The matched text.
    pub text: TextId,
    /// Disjoint rectangles of qualifying sequences (each already meets the
    /// collision threshold β; the length threshold `t` is applied by the
    /// accessors below).
    pub rects: Vec<Rectangle>,
}

impl TextMatch {
    /// Number of qualifying sequences of length ≥ t.
    pub fn num_sequences(&self, t: u32) -> u64 {
        self.rects.iter().map(|r| r.sequences_at_least(t)).sum()
    }

    /// All qualifying sequences of length ≥ t, enumerated. Quadratic in
    /// rectangle side lengths — intended for tests, verification, and
    /// display of small result sets.
    pub fn enumerate(&self, t: u32) -> Vec<SeqSpan> {
        let mut out = Vec::new();
        for r in &self.rects {
            for i in r.x_lo..=r.x_hi {
                // t = 0 behaves as t = 1 (every sequence has length ≥ 1)
                // rather than underflowing `t - 1`.
                let j_min = r.y_lo.max(i.saturating_add(t.saturating_sub(1)));
                if j_min > r.y_hi {
                    // j_min only grows with i, so no later i qualifies.
                    break;
                }
                for j in j_min..=r.y_hi {
                    out.push(SeqSpan::new(i, j));
                }
            }
        }
        out.sort_unstable();
        out
    }

    /// Merges all qualifying sequences into maximal disjoint token spans —
    /// the paper's Remark ("we merge the overlapping near-duplicate
    /// sequences such that all the sequences we report are disjoint").
    pub fn merged_spans(&self, t: u32) -> Vec<SeqSpan> {
        let mut spans: Vec<SeqSpan> = self
            .rects
            .iter()
            .filter_map(|r| r.covered_span(t))
            .map(|(lo, hi)| SeqSpan::new(lo, hi))
            .collect();
        spans.sort_unstable();
        let mut merged: Vec<SeqSpan> = Vec::new();
        for s in spans {
            match merged.last_mut() {
                Some(last) if last.touches(&s) => last.end = last.end.max(s.end),
                _ => merged.push(s),
            }
        }
        merged
    }

    /// The highest collision count among this text's rectangles.
    pub fn best_collisions(&self) -> u32 {
        self.rects.iter().map(|r| r.collisions).max().unwrap_or(0)
    }
}

/// One entry of a ranked search: a matched text with its best collision
/// count and merged matched regions.
#[derive(Debug, Clone, PartialEq)]
pub struct RankedMatch {
    /// The matched text.
    pub text: TextId,
    /// Best collision count among its sequences (out of k).
    pub collisions: u32,
    /// `collisions / k` — the min-hash similarity estimate of the best
    /// matching sequence.
    pub estimated_similarity: f64,
    /// Merged disjoint near-duplicate regions in the text.
    pub spans: Vec<SeqSpan>,
}

/// The result of one near-duplicate search.
#[derive(Debug, Clone)]
pub struct SearchOutcome {
    /// Matches grouped per text, ordered by text id.
    pub matches: Vec<TextMatch>,
    /// Cost accounting.
    pub stats: QueryStats,
    /// The collision threshold β = ⌈kθ⌉ that was enforced.
    pub beta: usize,
    /// The index's length threshold t.
    pub t: u32,
    /// `true` when the query ran to completion. `false` only inside
    /// [`QueryError::BudgetExceeded::partial`]: the matches are sound
    /// (each fully verified) but the corpus was not exhausted.
    pub complete: bool,
    /// Shard ranges this outcome does **not** cover because their shards
    /// are quarantined. Always empty for single-index searches and for
    /// sharded searches under the default fail-fast policy; populated
    /// (with `complete: false`) only by a sharded search running with
    /// [`crate::sharded::FaultPolicy::Isolate`].
    pub degraded: Vec<crate::breaker::DegradedShard>,
}

impl SearchOutcome {
    /// Total qualifying sequences across all texts.
    pub fn total_sequences(&self) -> u64 {
        self.matches.iter().map(|m| m.num_sequences(self.t)).sum()
    }

    /// Number of texts with at least one qualifying sequence.
    pub fn num_texts(&self) -> usize {
        self.matches.len()
    }

    /// Enumerates every qualifying sequence as a [`SeqRef`] (tests/small
    /// results only).
    pub fn enumerate_all(&self) -> Vec<SeqRef> {
        let mut out = Vec::new();
        for m in &self.matches {
            for span in m.enumerate(self.t) {
                out.push(SeqRef { text: m.text, span });
            }
        }
        out
    }

    /// Merged disjoint spans per text.
    pub fn merged(&self) -> Vec<(TextId, Vec<SeqSpan>)> {
        self.matches
            .iter()
            .map(|m| (m.text, m.merged_spans(self.t)))
            .filter(|(_, spans)| !spans.is_empty())
            .collect()
    }
}

/// The query processor. Holds the hash bank matching the index's
/// configuration plus the per-function long-list cutoffs implied by the
/// chosen [`PrefixFilter`].
pub struct NearDupSearcher<'a, I: IndexAccess + ?Sized> {
    index: &'a I,
    hasher: MinHasher,
    /// `cutoffs[func]`: list length at or above which the list is long
    /// (`u64::MAX` = never). Ignored in adaptive mode.
    cutoffs: Vec<u64>,
    /// Whether to re-plan the long/short split per query with the cost
    /// model instead of the static cutoffs.
    adaptive: bool,
    /// Global-registry handles (registered once here so the per-query hot
    /// path is pure atomic adds).
    metrics: crate::metrics::QueryMetrics,
    /// Pre-registered `span.query.search` histograms: opening the per-query
    /// span costs no name formatting or registry lock.
    search_span: ndss_obs::SpanHandle,
}

impl<'a, I: IndexAccess + ?Sized> NearDupSearcher<'a, I> {
    /// A searcher with prefix filtering disabled.
    pub fn new(index: &'a I) -> Result<Self, QueryError> {
        Self::with_prefix_filter(index, PrefixFilter::Disabled)
    }

    /// A searcher with the given prefix-filtering policy. Percentile
    /// cutoffs are computed once from the index's list-length histograms.
    pub fn with_prefix_filter(index: &'a I, filter: PrefixFilter) -> Result<Self, QueryError> {
        let config = index.config();
        let k = config.k;
        let cutoffs = match filter {
            PrefixFilter::Disabled | PrefixFilter::Adaptive => vec![u64::MAX; k],
            PrefixFilter::MaxListLen(len) => vec![len.max(1); k],
            PrefixFilter::FrequentFraction(fraction) => {
                assert!(
                    (0.0..=1.0).contains(&fraction),
                    "fraction must be in [0, 1]"
                );
                let mut cutoffs = Vec::with_capacity(k);
                for func in 0..k {
                    let hist = index.list_length_histogram(func)?;
                    cutoffs.push(fraction_cutoff(&hist, fraction));
                }
                cutoffs
            }
        };
        Ok(Self {
            index,
            hasher: config.hasher(),
            cutoffs,
            adaptive: matches!(filter, PrefixFilter::Adaptive),
            metrics: crate::metrics::QueryMetrics::register(ndss_obs::Registry::global()),
            search_span: ndss_obs::span_handle("query.search"),
        })
    }

    /// The searcher's hash bank (shared with sketch-producing callers).
    pub fn hasher(&self) -> &MinHasher {
        &self.hasher
    }

    /// Registry handles shared with the batch engine (shed counter etc.).
    pub(crate) fn metrics(&self) -> &crate::metrics::QueryMetrics {
        &self.metrics
    }

    /// Runs Algorithm 3: finds all sequences (length ≥ t) colliding with
    /// `query` on at least `β = ⌈kθ⌉` hash functions. Sound and complete
    /// for the approximate problem (Theorem 2). Equivalent to
    /// [`Self::search_governed`] with an unlimited [`QueryBudget`].
    pub fn search(&self, query: &[TokenId], theta: f64) -> Result<SearchOutcome, QueryError> {
        self.search_inner(query, theta, &QueryBudget::unlimited(), None)
    }

    /// Like [`Self::search`], but checks `budget` cooperatively at stage
    /// boundaries and inside the posting-list / candidate loops. When a
    /// dimension runs out the query stops at the next checkpoint and
    /// returns [`QueryError::BudgetExceeded`] carrying the verified
    /// matches found so far (a sound subset of the full result set,
    /// flagged [`SearchOutcome::complete`]` = false`).
    pub fn search_governed(
        &self,
        query: &[TokenId],
        theta: f64,
        budget: &QueryBudget,
    ) -> Result<SearchOutcome, QueryError> {
        self.search_inner(query, theta, budget, None)
    }

    /// [`Self::search_governed`] with a [`CancelToken`] observed at every
    /// checkpoint: when another thread cancels the token, the query
    /// abandons work promptly and returns [`QueryError::Cancelled`]. This
    /// is what [`crate::BatchSearcher`] uses to stop a failed batch from
    /// issuing further IO.
    pub fn search_cancellable(
        &self,
        query: &[TokenId],
        theta: f64,
        budget: &QueryBudget,
        cancel: &CancelToken,
    ) -> Result<SearchOutcome, QueryError> {
        self.search_inner(query, theta, budget, Some(cancel))
    }

    fn search_inner(
        &self,
        query: &[TokenId],
        theta: f64,
        budget: &QueryBudget,
        cancel: Option<&CancelToken>,
    ) -> Result<SearchOutcome, QueryError> {
        if query.is_empty() {
            return Err(QueryError::EmptyQuery);
        }
        if !(theta > 0.0 && theta <= 1.0) {
            return Err(QueryError::BadThreshold(theta));
        }
        let start = Instant::now();
        let _span = self.search_span.start();
        let tracker = BudgetTracker::start(budget, cancel, start);
        // Per-query IO accumulator: every index read below records into this
        // (and the index folds it into its global counters), so the stats
        // are exact even with other queries in flight.
        let io_acc = IoStats::default();
        let config = self.index.config();
        let (k, t) = (config.k, config.t as u32);
        let beta = collision_threshold(k, theta);
        let mut stats = QueryStats::default();
        let mut matches: Vec<TextMatch> = Vec::new();
        let mut probe_time = Duration::ZERO;

        // Line 2: the query's k-mins sketch.
        let sketch = self.hasher.sketch(query);
        stats.stage_sketch = start.elapsed();

        // The budget-governed pipeline. `checkpoint!` is the cooperative
        // yield point: an unlimited budget resolves it to a single branch
        // (plus one relaxed load when a cancel token is attached); a tripped
        // budget breaks out with the exhausted resource, keeping every
        // fully-verified match accumulated so far. A stage interrupted
        // mid-flight leaves its `stage_*` duration at zero — its time still
        // shows up in `total`/`cpu_time`.
        let stopped: Option<Resource> = 'run: {
            macro_rules! checkpoint {
                ($candidates:expr, $matches:expr) => {
                    match tracker.check(
                        if tracker.is_limited() {
                            io_acc.snapshot().bytes
                        } else {
                            0
                        },
                        $candidates,
                        $matches,
                    ) {
                        Verdict::Proceed => {}
                        Verdict::Cancelled => return Err(QueryError::Cancelled),
                        Verdict::Over(resource) => break 'run Some(resource),
                    }
                };
            }
            checkpoint!(0, 0);
            let plan_start = Instant::now();

            // Classify lists. Soundness of the reduced threshold
            // β − (k − p) ≥ 1 merely requires at most β − 1 long lists, but the
            // filter's pruning power collapses as the reduced threshold
            // approaches 1 (every text sharing a single short-list window
            // becomes a candidate, and each candidate pays k − p probes). We cap
            // the number of long lists at ⌊β/2⌋ — keeping the reduced threshold
            // at ≥ ⌈β/2⌉ — retaining the longest lists as long; this is the
            // cost-model role the paper delegates to prefix-length tuning
            // ("a few works design cost-models to choose a good cutoff", §3.5).
            let lens: Vec<u64> = (0..k)
                .map(|func| self.index.list_len(func, sketch.value(func)))
                .collect::<Result<_, _>>()?;
            let long_funcs: Vec<usize> = if self.adaptive {
                // Cost-based per-query plan; its own soundness cap applies.
                crate::planner::plan_query(&lens, beta, config.zone_step).deferred
            } else {
                let mut long: Vec<usize> = (0..k).filter(|&f| lens[f] >= self.cutoffs[f]).collect();
                long.sort_unstable_by_key(|&f| std::cmp::Reverse(lens[f]));
                long.truncate(beta / 2);
                long
            };
            let is_long: Vec<bool> = {
                let mut v = vec![false; k];
                for &f in &long_funcs {
                    v[f] = true;
                }
                v
            };
            let p = k - long_funcs.len();
            let alpha0 = beta - (k - p);
            debug_assert!(alpha0 >= 1);
            stats.lists_long = long_funcs.len();
            stats.stage_plan = plan_start.elapsed();

            // Lines 3–4: load the short lists and group windows by text.
            // Grouping is sort-based: the short lists are concatenated and
            // sorted by text id once, then candidates are walked as runs of
            // the sorted vector. This is the hottest per-posting loop of a
            // query, and one cache-friendly sort beats a hash-map insert
            // per posting (collision counting is order-insensitive, so the
            // unstable sort is fine).
            let gather_start = Instant::now();
            let short_total: u64 = (0..k).filter(|&f| !is_long[f]).map(|f| lens[f]).sum();
            let mut gathered: Vec<Posting> = Vec::with_capacity(short_total as usize);
            let mut max_text: TextId = 0;
            for (func, &long) in is_long.iter().enumerate() {
                if long {
                    continue;
                }
                checkpoint!(0, 0);
                let list = self
                    .index
                    .read_list_into(func, sketch.value(func), &io_acc)?;
                stats.lists_loaded += 1;
                stats.postings_read += list.len() as u64;
                if let Some(last) = list.last() {
                    // Lists are text-sorted; their last entry is their max.
                    max_text = max_text.max(last.text);
                }
                gathered.extend_from_slice(&list);
            }
            // Text ids are dense, so when their span is within a small
            // factor of the posting count a two-pass counting sort beats
            // the comparison sort; very sparse id spaces (huge corpus, tiny
            // query) fall back to it.
            let t_span = max_text as usize + 1;
            if !gathered.is_empty() && t_span / 8 <= gathered.len() {
                let mut starts = vec![0u32; t_span + 1];
                for p in &gathered {
                    starts[p.text as usize + 1] += 1;
                }
                for i in 1..starts.len() {
                    starts[i] += starts[i - 1];
                }
                let mut sorted = vec![gathered[0]; gathered.len()];
                for p in &gathered {
                    let slot = &mut starts[p.text as usize];
                    sorted[*slot as usize] = *p;
                    *slot += 1;
                }
                gathered = sorted;
            } else {
                gathered.sort_unstable_by_key(|p| p.text);
            }

            stats.stage_gather = gather_start.elapsed();

            // Lines 5–12: per candidate text, count collisions. Texts are
            // visited in ascending id order and a text's match is appended
            // only after its final collision count, so breaking between
            // texts (or mid-probe, before the append) always leaves a sound
            // prefix of the full result set.
            let count_start = Instant::now();
            let mut windows: Vec<CompactWindow> = Vec::new();
            let mut scratch = CollisionScratch::default();
            let mut rect_buf: Vec<Rectangle> = Vec::new();
            let mut run_start = 0usize;
            while run_start < gathered.len() {
                let text = gathered[run_start].text;
                let mut run_end = run_start + 1;
                while run_end < gathered.len() && gathered[run_end].text == text {
                    run_end += 1;
                }
                let run = &gathered[run_start..run_end];
                run_start = run_end;
                checkpoint!(stats.candidate_texts as u64, matches.len() as u64);
                if run.len() < alpha0 {
                    continue;
                }
                // Line 6: candidate check at the reduced threshold, fed
                // straight from the posting run (no window copy for the
                // common non-candidate case).
                collision_count_fn_into(
                    run.len(),
                    |i| run[i].window,
                    alpha0,
                    &mut scratch,
                    &mut rect_buf,
                );
                let has_candidate = rect_buf.iter().any(|r| r.sequences_at_least(t) > 0);
                if !has_candidate {
                    continue;
                }
                stats.candidate_texts += 1;
                if !long_funcs.is_empty() {
                    // Lines 8–9: locate this text's windows in the long lists
                    // (zone-map probes) and re-count at the full threshold.
                    let probe_start = Instant::now();
                    windows.clear();
                    windows.extend(run.iter().map(|p| p.window));
                    for &func in &long_funcs {
                        checkpoint!(stats.candidate_texts as u64, matches.len() as u64);
                        let postings = self.index.read_postings_for_text_into(
                            func,
                            sketch.value(func),
                            text,
                            &io_acc,
                        )?;
                        stats.long_probes += 1;
                        stats.postings_read += postings.len() as u64;
                        windows.extend(postings.into_iter().map(|p| p.window));
                    }
                    probe_time += probe_start.elapsed();
                    collision_count_into(&windows, beta, &mut scratch, &mut rect_buf);
                }
                // With no long lists, alpha0 == beta and the reduced-threshold
                // rectangles are already final.
                let rects: Vec<Rectangle> = rect_buf
                    .iter()
                    .copied()
                    .filter(|r| r.sequences_at_least(t) > 0)
                    .collect();
                if !rects.is_empty() {
                    matches.push(TextMatch { text, rects });
                }
            }

            stats.stage_count = count_start.elapsed().saturating_sub(probe_time);
            None
        };

        stats.stage_probe = probe_time;
        stats.matched_texts = matches.len();
        let io = io_acc.snapshot();
        stats.io_bytes = io.bytes;
        stats.io_time = io.time();
        stats.cache_hits = io.cache_hits;
        stats.cache_misses = io.cache_misses;
        stats.zone_hits = io.zone_hits;
        stats.zone_misses = io.zone_misses;
        stats.total = start.elapsed();
        stats.cpu_time = stats.total.saturating_sub(stats.io_time);
        self.metrics.observe(&stats);
        let outcome = SearchOutcome {
            matches,
            stats,
            beta,
            t,
            complete: stopped.is_none(),
            degraded: Vec::new(),
        };
        match stopped {
            None => Ok(outcome),
            Some(resource) => {
                self.metrics.record_budget_exceeded();
                Err(QueryError::BudgetExceeded {
                    resource,
                    partial: Box::new(outcome),
                })
            }
        }
    }

    /// Ranked search: like [`Self::search`] but returns the matched texts
    /// ordered by their best collision count (i.e. by estimated similarity
    /// of their best sequence), truncated to `limit`. This is the "show me
    /// the most likely sources" mode the memorization and plagiarism
    /// applications want, avoiding full enumeration.
    pub fn search_ranked(
        &self,
        query: &[TokenId],
        theta: f64,
        limit: usize,
    ) -> Result<Vec<RankedMatch>, QueryError> {
        let outcome = self.search(query, theta)?;
        Ok(self.rank(&outcome, limit))
    }

    /// Ranks an already-computed outcome (lets callers keep the outcome's
    /// [`QueryStats`] — e.g. for `--profile` — without searching twice).
    pub fn rank(&self, outcome: &SearchOutcome, limit: usize) -> Vec<RankedMatch> {
        let k = self.hasher.k() as f64;
        let mut ranked: Vec<RankedMatch> = outcome
            .matches
            .iter()
            .map(|m| RankedMatch {
                text: m.text,
                collisions: m.best_collisions(),
                estimated_similarity: m.best_collisions() as f64 / k,
                spans: m.merged_spans(outcome.t),
            })
            .collect();
        ranked.sort_by(|a, b| {
            b.collisions
                .cmp(&a.collisions)
                .then_with(|| a.text.cmp(&b.text))
        });
        ranked.truncate(limit);
        ranked
    }

    /// Definition 1 mode: runs the approximate search, then verifies each
    /// enumerated candidate's true distinct Jaccard similarity against the
    /// corpus, returning only sequences with `J(Q, ·) ≥ θ`.
    ///
    /// Enumeration is quadratic in rectangle sides; `max_candidates` bounds
    /// the work (an `Err` is returned when exceeded so callers never get
    /// silently truncated results).
    pub fn search_verified<C: CorpusSource + ?Sized>(
        &self,
        query: &[TokenId],
        theta: f64,
        corpus: &C,
        max_candidates: usize,
    ) -> Result<(Vec<SeqRef>, QueryStats), QueryError> {
        let outcome = self.search(query, theta)?;
        let total = outcome.total_sequences();
        if total > max_candidates as u64 {
            return Err(QueryError::TooManyCandidates {
                found: total,
                cap: max_candidates,
            });
        }
        let mut verified = Vec::new();
        let mut text_buf = Vec::new();
        for m in &outcome.matches {
            corpus.read_text(m.text, &mut text_buf)?;
            for span in m.enumerate(outcome.t) {
                let seq = span.slice(&text_buf);
                if distinct_jaccard(query, seq) + 1e-12 >= theta {
                    verified.push(SeqRef { text: m.text, span });
                }
            }
        }
        Ok((verified, outcome.stats))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ndss_corpus::{InMemoryCorpus, SyntheticCorpusBuilder};
    use ndss_index::{IndexConfig, MemoryIndex};

    fn build_index(corpus: &InMemoryCorpus, k: usize, t: usize) -> MemoryIndex {
        MemoryIndex::build(corpus, IndexConfig::new(k, t, 1234)).unwrap()
    }

    /// `t = 0` and `t = 1` are equivalent everywhere the length threshold is
    /// applied (every sequence has length ≥ 1) — and neither panics, which
    /// `t = 0` used to do via `t - 1` underflow.
    #[test]
    fn zero_length_threshold_behaves_like_one() {
        let m = TextMatch {
            text: 7,
            rects: vec![
                Rectangle {
                    x_lo: 0,
                    x_hi: 2,
                    y_lo: 2,
                    y_hi: 5,
                    collisions: 3,
                },
                Rectangle {
                    x_lo: 4,
                    x_hi: 4,
                    y_lo: 6,
                    y_hi: 6,
                    collisions: 2,
                },
            ],
        };
        assert_eq!(m.enumerate(0), m.enumerate(1));
        assert_eq!(m.num_sequences(0), m.num_sequences(1));
        assert_eq!(m.merged_spans(0), m.merged_spans(1));
        assert_eq!(m.num_sequences(1), m.enumerate(1).len() as u64);
        // t = 1 sanity: every (i, j) pair of each rectangle qualifies.
        assert_eq!(m.num_sequences(1), 3 * 4 + 1);
    }

    #[test]
    fn finds_planted_exact_duplicate() {
        let (corpus, planted) = SyntheticCorpusBuilder::new(41)
            .num_texts(60)
            .text_len(150, 300)
            .duplicates_per_text(1.0)
            .dup_len(60, 100)
            .mutation_rate(0.0)
            .build();
        let index = build_index(&corpus, 16, 25);
        let searcher = NearDupSearcher::new(&index).unwrap();
        let p = planted.first().expect("duplicates planted");
        let query = corpus.sequence_to_vec(p.dst).unwrap();
        let outcome = searcher.search(&query, 0.9).unwrap();
        // The source text must be among the matches (the query IS a copy of
        // a span of it).
        assert!(
            outcome.matches.iter().any(|m| m.text == p.src.text),
            "planted source text not found"
        );
        // And the copy itself (in the destination text) must be found too.
        assert!(outcome.matches.iter().any(|m| m.text == p.dst.text));
    }

    #[test]
    fn random_query_finds_nothing_at_high_threshold() {
        let (corpus, _) = SyntheticCorpusBuilder::new(42)
            .num_texts(50)
            .duplicates_per_text(0.0)
            .vocab_size(100_000)
            .build();
        let index = build_index(&corpus, 16, 25);
        let searcher = NearDupSearcher::new(&index).unwrap();
        // A fresh random sequence over a huge vocab shares nothing.
        let query: Vec<u32> = (900_000..900_064).collect();
        let outcome = searcher.search(&query, 0.8).unwrap();
        assert_eq!(outcome.num_texts(), 0);
        assert_eq!(outcome.total_sequences(), 0);
    }

    #[test]
    fn prefix_filtering_changes_nothing_in_results() {
        let (corpus, planted) = SyntheticCorpusBuilder::new(43)
            .num_texts(80)
            .text_len(120, 250)
            .vocab_size(800) // small vocab → skewed lists
            .duplicates_per_text(1.0)
            .dup_len(40, 80)
            .mutation_rate(0.05)
            .build();
        let index = build_index(&corpus, 16, 20);
        let plain = NearDupSearcher::new(&index).unwrap();
        let filtered =
            NearDupSearcher::with_prefix_filter(&index, PrefixFilter::FrequentFraction(0.10))
                .unwrap();
        let strict =
            NearDupSearcher::with_prefix_filter(&index, PrefixFilter::MaxListLen(8)).unwrap();
        for p in planted.iter().take(10) {
            let query = corpus.sequence_to_vec(p.dst).unwrap();
            for theta in [0.7, 0.8, 0.95] {
                let a = plain.search(&query, theta).unwrap();
                let b = filtered.search(&query, theta).unwrap();
                let c = strict.search(&query, theta).unwrap();
                assert_eq!(a.enumerate_all(), b.enumerate_all(), "fraction filter");
                assert_eq!(a.enumerate_all(), c.enumerate_all(), "length filter");
            }
        }
    }

    #[test]
    fn query_of_itself_matches_whole_span() {
        // Query = an entire span of an indexed text at θ = 1: the span
        // itself must be reported.
        let (corpus, _) = SyntheticCorpusBuilder::new(44)
            .num_texts(20)
            .text_len(100, 150)
            .vocab_size(1_000_000) // distinct tokens
            .duplicates_per_text(0.0)
            .build();
        let index = build_index(&corpus, 32, 25);
        let searcher = NearDupSearcher::new(&index).unwrap();
        let text5 = corpus.text(5);
        let query = &text5[10..60]; // 50 tokens ≥ t
        let outcome = searcher.search(query, 1.0).unwrap();
        let hits = outcome.enumerate_all();
        assert!(
            hits.contains(&SeqRef::new(5, 10, 59)),
            "self-span not found; hits: {hits:?}"
        );
    }

    #[test]
    fn verified_mode_filters_by_true_jaccard() {
        let (corpus, planted) = SyntheticCorpusBuilder::new(45)
            .num_texts(40)
            .text_len(150, 250)
            .duplicates_per_text(1.0)
            .dup_len(50, 80)
            .mutation_rate(0.0)
            .build();
        let index = build_index(&corpus, 32, 25);
        let searcher = NearDupSearcher::new(&index).unwrap();
        let p = planted.first().unwrap();
        let query = corpus.sequence_to_vec(p.dst).unwrap();
        let (verified, _) = searcher
            .search_verified(&query, 0.9, &corpus, 2_000_000)
            .unwrap();
        assert!(!verified.is_empty());
        for seq in &verified {
            let tokens = corpus.sequence_to_vec(*seq).unwrap();
            assert!(distinct_jaccard(&query, &tokens) >= 0.9 - 1e-9);
        }
    }

    #[test]
    fn merged_spans_are_disjoint_and_cover_enumeration() {
        let (corpus, planted) = SyntheticCorpusBuilder::new(46)
            .num_texts(50)
            .duplicates_per_text(1.0)
            .mutation_rate(0.02)
            .build();
        let index = build_index(&corpus, 16, 25);
        let searcher = NearDupSearcher::new(&index).unwrap();
        let p = planted.first().unwrap();
        let query = corpus.sequence_to_vec(p.dst).unwrap();
        let outcome = searcher.search(&query, 0.8).unwrap();
        for m in &outcome.matches {
            let merged = m.merged_spans(outcome.t);
            // Disjoint and non-touching.
            for w in merged.windows(2) {
                assert!(w[0].end + 1 < w[1].start);
            }
            // Every enumerated sequence is inside some merged span.
            for span in m.enumerate(outcome.t) {
                assert!(
                    merged
                        .iter()
                        .any(|ms| ms.start <= span.start && span.end <= ms.end),
                    "sequence {span:?} outside merged spans {merged:?}"
                );
            }
        }
    }

    #[test]
    fn rejects_bad_inputs() {
        let (corpus, _) = SyntheticCorpusBuilder::new(47).num_texts(5).build();
        let index = build_index(&corpus, 4, 25);
        let searcher = NearDupSearcher::new(&index).unwrap();
        assert!(matches!(
            searcher.search(&[], 0.8),
            Err(QueryError::EmptyQuery)
        ));
        assert!(matches!(
            searcher.search(&[1, 2, 3], 0.0),
            Err(QueryError::BadThreshold(_))
        ));
        assert!(matches!(
            searcher.search(&[1, 2, 3], 1.5),
            Err(QueryError::BadThreshold(_))
        ));
    }

    #[test]
    fn lower_threshold_finds_at_least_as_much() {
        let (corpus, planted) = SyntheticCorpusBuilder::new(48)
            .num_texts(60)
            .duplicates_per_text(1.0)
            .mutation_rate(0.08)
            .build();
        let index = build_index(&corpus, 32, 25);
        let searcher = NearDupSearcher::new(&index).unwrap();
        let p = planted.first().unwrap();
        let query = corpus.sequence_to_vec(p.dst).unwrap();
        let high = searcher.search(&query, 0.9).unwrap().total_sequences();
        let low = searcher.search(&query, 0.7).unwrap().total_sequences();
        assert!(low >= high, "low {low} < high {high}");
    }

    #[test]
    fn adaptive_filter_changes_nothing_in_results() {
        let (corpus, planted) = SyntheticCorpusBuilder::new(143)
            .num_texts(80)
            .vocab_size(500)
            .duplicates_per_text(1.0)
            .mutation_rate(0.05)
            .build();
        let index = build_index(&corpus, 16, 20);
        let plain = NearDupSearcher::new(&index).unwrap();
        let adaptive = NearDupSearcher::with_prefix_filter(&index, PrefixFilter::Adaptive).unwrap();
        for p in planted.iter().take(8) {
            let query = corpus.sequence_to_vec(p.dst).unwrap();
            for theta in [0.7, 0.9, 1.0] {
                assert_eq!(
                    plain.search(&query, theta).unwrap().enumerate_all(),
                    adaptive.search(&query, theta).unwrap().enumerate_all(),
                    "adaptive plan altered results at theta {theta}"
                );
            }
        }
    }

    #[test]
    fn ranked_search_orders_by_collisions() {
        let (corpus, planted) = SyntheticCorpusBuilder::new(144)
            .num_texts(60)
            .duplicates_per_text(1.5)
            .mutation_rate(0.05)
            .build();
        let index = build_index(&corpus, 32, 25);
        let searcher = NearDupSearcher::new(&index).unwrap();
        let p = planted.first().unwrap();
        let query = corpus.sequence_to_vec(p.dst).unwrap();
        let ranked = searcher.search_ranked(&query, 0.7, 5).unwrap();
        assert!(!ranked.is_empty());
        assert!(ranked.len() <= 5);
        for pair in ranked.windows(2) {
            assert!(pair[0].collisions >= pair[1].collisions);
        }
        // The top hit should be (near-)perfect: the query is a copy.
        assert!(ranked[0].estimated_similarity > 0.9);
        assert!(!ranked[0].spans.is_empty());
    }

    /// Satellite audit: `FrequentFraction` budget arithmetic at the
    /// boundaries. An empty histogram (total = 0) and a zero fraction must
    /// mark nothing long; fraction = 1.0 must make every list eligible
    /// (cutoff = minimum length) without the float budget overshooting.
    #[test]
    fn fraction_cutoff_boundaries_are_pinned() {
        // total = 0: no lists at all → nothing can be long.
        assert_eq!(fraction_cutoff(&[], 0.0), u64::MAX);
        assert_eq!(fraction_cutoff(&[], 1.0), u64::MAX);

        let hist: Vec<(u64, u64)> = vec![(1, 5), (3, 3), (10, 2)]; // 10 lists
                                                                   // fraction = 0: zero budget → nothing long.
        assert_eq!(fraction_cutoff(&hist, 0.0), u64::MAX);
        // fraction = 1: every list fits the budget → cutoff is the minimum
        // length, i.e. all lists are long-eligible.
        assert_eq!(fraction_cutoff(&hist, 1.0), 1);
        // 20% of 10 lists = 2: exactly the length-10 bucket.
        assert_eq!(fraction_cutoff(&hist, 0.2), 10);
        // 40% of 10 = 4: the length-10 bucket (2) fits, adding the
        // length-3 bucket (3 more) would overshoot → cutoff stays at 10.
        assert_eq!(fraction_cutoff(&hist, 0.4), 10);
        // 50% of 10 = 5: both top buckets fit exactly.
        assert_eq!(fraction_cutoff(&hist, 0.5), 3);
        // A sub-list budget (fraction × total < 1) marks nothing long.
        assert_eq!(fraction_cutoff(&hist, 0.05), u64::MAX);
        // Single-bucket histogram, fraction = 1.0.
        assert_eq!(fraction_cutoff(&[(4, 7)], 1.0), 4);
    }

    /// A searcher over an *empty* index with `FrequentFraction` must
    /// construct (total = 0 histograms) and answer queries.
    #[test]
    fn frequent_fraction_on_empty_index_is_harmless() {
        let corpus = InMemoryCorpus::from_texts(vec![vec![1u32, 2, 3]]); // < t: no windows
        let index = build_index(&corpus, 8, 25);
        for fraction in [0.0, 0.05, 1.0] {
            let s = NearDupSearcher::with_prefix_filter(
                &index,
                PrefixFilter::FrequentFraction(fraction),
            )
            .unwrap();
            let outcome = s.search(&(0..40).collect::<Vec<u32>>(), 0.8).unwrap();
            assert_eq!(outcome.num_texts(), 0);
            assert!(outcome.complete);
        }
    }

    #[test]
    fn unlimited_budget_matches_plain_search() {
        let (corpus, planted) = SyntheticCorpusBuilder::new(50)
            .num_texts(60)
            .duplicates_per_text(1.0)
            .build();
        let index = build_index(&corpus, 16, 25);
        let searcher = NearDupSearcher::new(&index).unwrap();
        let p = planted.first().unwrap();
        let query = corpus.sequence_to_vec(p.dst).unwrap();
        let plain = searcher.search(&query, 0.8).unwrap();
        let governed = searcher
            .search_governed(&query, 0.8, &QueryBudget::unlimited())
            .unwrap();
        assert!(plain.complete && governed.complete);
        assert_eq!(plain.enumerate_all(), governed.enumerate_all());
    }

    /// Partial outcomes are sound: under any `max_candidates`, whatever is
    /// returned (complete or partial) is a subset of the full result set,
    /// and a generous cap returns it all.
    #[test]
    fn tiny_candidate_budget_yields_sound_subset() {
        let (corpus, planted) = SyntheticCorpusBuilder::new(51)
            .num_texts(80)
            .duplicates_per_text(2.0)
            .mutation_rate(0.05)
            .build();
        let index = build_index(&corpus, 16, 25);
        let searcher = NearDupSearcher::new(&index).unwrap();
        let p = planted.first().unwrap();
        let query = corpus.sequence_to_vec(p.dst).unwrap();
        let full = searcher.search(&query, 0.7).unwrap();
        let full_set: std::collections::HashSet<SeqRef> =
            full.enumerate_all().into_iter().collect();
        assert!(
            full.stats.candidate_texts > 1,
            "need a multi-candidate query"
        );

        for cap in 0..full.stats.candidate_texts as u64 + 2 {
            let budget = QueryBudget::unlimited().max_candidates(cap);
            match searcher.search_governed(&query, 0.7, &budget) {
                Ok(outcome) => {
                    assert!(outcome.complete);
                    assert_eq!(outcome.enumerate_all(), full.enumerate_all());
                }
                Err(QueryError::BudgetExceeded { resource, partial }) => {
                    assert_eq!(resource, Resource::Candidates);
                    assert!(!partial.complete);
                    for seq in partial.enumerate_all() {
                        assert!(full_set.contains(&seq), "unsound partial match {seq:?}");
                    }
                    // Every partial match is bit-identical to its full-run
                    // counterpart (fully verified, not truncated).
                    for m in &partial.matches {
                        assert!(full.matches.contains(m));
                    }
                }
                Err(e) => panic!("unexpected error: {e}"),
            }
        }
    }

    #[test]
    fn zero_deadline_trips_immediately_with_empty_partial() {
        let (corpus, planted) = SyntheticCorpusBuilder::new(52)
            .num_texts(30)
            .duplicates_per_text(1.0)
            .build();
        let index = build_index(&corpus, 8, 25);
        let searcher = NearDupSearcher::new(&index).unwrap();
        let query = corpus.sequence_to_vec(planted[0].dst).unwrap();
        let budget = QueryBudget::unlimited().time_limit(Duration::ZERO);
        match searcher.search_governed(&query, 0.8, &budget) {
            Err(QueryError::BudgetExceeded { resource, partial }) => {
                assert_eq!(resource, Resource::Deadline);
                assert!(!partial.complete);
                assert!(partial.matches.is_empty(), "nothing verified yet");
            }
            other => panic!("expected deadline trip, got {other:?}"),
        }
    }

    #[test]
    fn pre_cancelled_token_aborts_before_io() {
        let (corpus, planted) = SyntheticCorpusBuilder::new(53)
            .num_texts(30)
            .duplicates_per_text(1.0)
            .build();
        let index = build_index(&corpus, 8, 25);
        let searcher = NearDupSearcher::new(&index).unwrap();
        let query = corpus.sequence_to_vec(planted[0].dst).unwrap();
        let token = CancelToken::new();
        token.cancel();
        assert!(matches!(
            searcher.search_cancellable(&query, 0.8, &QueryBudget::unlimited(), &token),
            Err(QueryError::Cancelled)
        ));
    }

    #[test]
    fn stats_account_for_work() {
        let (corpus, planted) = SyntheticCorpusBuilder::new(49)
            .num_texts(60)
            .duplicates_per_text(1.0)
            .build();
        let index = build_index(&corpus, 8, 25);
        let searcher = NearDupSearcher::new(&index).unwrap();
        let p = planted.first().unwrap();
        let query = corpus.sequence_to_vec(p.dst).unwrap();
        let outcome = searcher.search(&query, 0.8).unwrap();
        assert_eq!(outcome.stats.lists_loaded, 8); // no filtering: all short
        assert_eq!(outcome.stats.lists_long, 0);
        assert!(outcome.stats.postings_read > 0);
        assert!(outcome.stats.total >= outcome.stats.io_time);
        assert_eq!(outcome.stats.matched_texts, outcome.matches.len());
    }
}
