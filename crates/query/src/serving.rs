//! Hot-swappable serving: queries against a generational index store —
//! sharded or not — with zero-downtime `reload()`.
//!
//! [`crate::BatchSearcher`] borrows its index for a lifetime, which is the
//! right shape for one-shot evaluation runs but cannot swap the index out
//! from under live traffic. [`ServingIndex`] closes that gap: it owns the
//! current view behind an `Arc` and re-resolves the store on
//! [`ServingIndex::reload`]. The view is a [`ShardedIndex`] — a plain
//! directory or unsharded generation store is simply the single-shard
//! special case — so the whole serving stack handles sharded stores
//! through one path. Queries *pin* a snapshot for their entire execution —
//! a batch runs start to finish against one view, so no query ever
//! observes postings from two generations **or from two manifest
//! generations of a sharded store** — while new queries arriving after a
//! reload see the new view immediately. The old view's memory and file
//! handles drop when its last in-flight query finishes (plain `Arc`
//! reference counting; there is no explicit drain step to get wrong).
//!
//! For a sharded store the resolved identity is the whole `(manifest
//! generation, per-shard serving directories)` tuple read from the single
//! atomically-published `MANIFEST`, so a reload racing a per-shard publish
//! can never assemble a torn cross-shard view: it either sees the old
//! manifest (all old shard generations) or the new one (all new).
//!
//! Observability: the `index.generation` gauge tracks the serving view
//! generation (manifest generation for sharded stores, generation number
//! otherwise) and the `index.reloads` counter every completed swap. For
//! sharded stores each shard additionally exports
//! `index.shard.generation{shard="N"}` with its own serving generation
//! number. The unlabeled gauge is process-wide and **last-writer-wins**:
//! when two [`ServingIndex`]es live in one process (e.g. tests), whichever
//! opened or reloaded most recently owns the exported value. Generation
//! numbers above `i64::MAX` are clamped rather than wrapped.

use std::path::{Path, PathBuf};
use std::sync::{Arc, RwLock};

use ndss_hash::TokenId;
use ndss_index::generation::{parse_generation_name, resolve_index_dir};
use ndss_index::{CacheConfig, ReadOptions, ShardedStore};

use crate::breaker::BreakerConfig;
use crate::search::{PrefixFilter, SearchOutcome};
use crate::sharded::ShardedIndex;
use crate::QueryError;

/// Everything [`ServingIndex`] needs to (re)open a view: cache sizing,
/// read options, and breaker tuning — all applied to every shard of every
/// view the handle ever opens, including across reloads.
#[derive(Clone, Default)]
pub struct ServingOptions {
    /// Per-generation cache sizing.
    pub cache: CacheConfig,
    /// Read options (mmap, retry policy, fault injection, chaos taps).
    pub io: ReadOptions,
    /// Per-shard circuit-breaker tuning.
    pub breaker: BreakerConfig,
}

struct ServingState {
    view: Arc<ShardedIndex>,
    /// Directories the current view was opened from, in shard order
    /// (identity for change detection on reload).
    dirs: Vec<PathBuf>,
    /// View generation: the manifest generation when serving a sharded
    /// store, the generation number when serving an unsharded store,
    /// `None` for a plain index directory.
    generation: Option<u64>,
}

/// An index handle that can be atomically re-pointed at a new view (a new
/// generation, or a new manifest generation of a sharded store) while
/// queries are in flight.
pub struct ServingIndex {
    /// Store root (sharded store, generation store, or plain index
    /// directory) reloads re-resolve.
    path: PathBuf,
    options: ServingOptions,
    state: RwLock<ServingState>,
    generation_gauge: ndss_obs::Gauge,
    reload_counter: ndss_obs::Counter,
}

impl ServingIndex {
    /// Opens the index at `path` — a sharded store (the manifest's view is
    /// served), a generation store (its `CURRENT` generation), or a plain
    /// index directory.
    pub fn open(path: &Path) -> Result<Self, QueryError> {
        Self::open_with_cache(path, CacheConfig::default())
    }

    /// [`Self::open`] with explicit cache sizing. Each generation (of each
    /// shard) gets its own caches — postings cached under one generation
    /// must not be served under another.
    pub fn open_with_cache(path: &Path, cache: CacheConfig) -> Result<Self, QueryError> {
        Self::open_with_options(
            path,
            ServingOptions {
                cache,
                ..ServingOptions::default()
            },
        )
    }

    /// [`Self::open`] with full serving options (cache sizing, read
    /// options, breaker tuning); all apply to every view this handle ever
    /// opens, including across reloads.
    pub fn open_with_options(path: &Path, options: ServingOptions) -> Result<Self, QueryError> {
        let reg = ndss_obs::Registry::global();
        let generation_gauge = reg.gauge(
            "index.generation",
            "view generation currently being served (manifest generation for sharded \
             stores; 0 for a plain index directory)",
        );
        let reload_counter = reg.counter(
            "index.reloads",
            "completed hot swaps to a new index generation",
        );
        let state = Self::load_state(path, &options)?;
        generation_gauge.set(gauge_value(state.generation));
        publish_shard_gauges(&state);
        Ok(Self {
            path: path.to_path_buf(),
            options,
            state: RwLock::new(state),
            generation_gauge,
            reload_counter,
        })
    }

    /// Resolves the identity of the view `path` currently points at,
    /// without opening any index: the ordered serving directories plus the
    /// view generation. For a sharded store both come from the single
    /// checksummed `MANIFEST`, so the tuple is always a consistent
    /// cross-shard cut.
    fn resolve_view(path: &Path) -> Result<(Vec<PathBuf>, Option<u64>), QueryError> {
        if ShardedStore::is_sharded(path) {
            let store = ShardedStore::open(path)?;
            let mut dirs = Vec::with_capacity(store.num_shards());
            for i in 0..store.num_shards() {
                dirs.push(store.serving_dir(i)?);
            }
            Ok((dirs, Some(store.manifest().generation)))
        } else {
            let dir = resolve_index_dir(path);
            let generation = dir
                .file_name()
                .and_then(|n| n.to_str())
                .and_then(parse_generation_name);
            Ok((vec![dir], generation))
        }
    }

    fn load_state(path: &Path, options: &ServingOptions) -> Result<ServingState, QueryError> {
        let (dirs, generation) = Self::resolve_view(path)?;
        let view = Arc::new(ShardedIndex::open_full(
            path,
            options.cache,
            options.io.clone(),
            options.breaker.clone(),
        )?);
        Ok(ServingState {
            view,
            dirs,
            generation,
        })
    }

    /// The snapshot new queries would use right now. Callers hold the `Arc`
    /// for the duration of a query (or batch), pinning that view — a
    /// concurrent reload never changes an execution in progress.
    pub fn snapshot(&self) -> Arc<ShardedIndex> {
        self.state.read().unwrap().view.clone()
    }

    /// The snapshot *and* its view generation, read under one lock
    /// acquisition: the pair is guaranteed consistent even when a reload
    /// lands between a caller's two method calls. Network responses that
    /// report which generation served them must use this, not separate
    /// `generation()` + `snapshot()` reads.
    pub fn pinned(&self) -> (Arc<ShardedIndex>, Option<u64>) {
        let state = self.state.read().unwrap();
        (state.view.clone(), state.generation)
    }

    /// The view generation being served (`None` for a plain directory).
    pub fn generation(&self) -> Option<u64> {
        self.state.read().unwrap().generation
    }

    /// The store root this handle re-resolves on every reload (health
    /// probers re-verify quarantined shards against it).
    pub fn store_path(&self) -> &Path {
        &self.path
    }

    /// The directory the serving snapshot was opened from (first shard's
    /// for a sharded store; see [`Self::serving_dirs`]).
    pub fn serving_dir(&self) -> PathBuf {
        self.state.read().unwrap().dirs[0].clone()
    }

    /// Every directory of the serving view, in shard order.
    pub fn serving_dirs(&self) -> Vec<PathBuf> {
        self.state.read().unwrap().dirs.clone()
    }

    /// Re-resolves the store (manifest or `CURRENT` pointer) and, if the
    /// view moved, opens the new one and swaps it in. Returns `true` when
    /// a swap happened. In-flight queries keep their pinned snapshot; the
    /// old view is dropped when the last of them finishes. The new view is
    /// fully opened (every shard's headers validated) *before* the swap,
    /// so a bad generation leaves serving untouched and returns the error.
    ///
    /// Racing reloads are safe in both directions: the swap is re-checked
    /// under the write lock, so a reload that resolved the view before a
    /// concurrent reload published-and-swapped a *newer* one abandons its
    /// stale open instead of regressing serving to the older view.
    pub fn reload(&self) -> Result<bool, QueryError> {
        self.reload_with_race_window(|| {})
    }

    /// [`Self::reload`] with a hook invoked between resolving/opening the
    /// target view and taking the write lock — the window in which a
    /// concurrent reload can land. Exists so tests can exercise the race
    /// deterministically; not part of the stable API.
    #[doc(hidden)]
    pub fn reload_with_race_window(&self, mut in_window: impl FnMut()) -> Result<bool, QueryError> {
        // A stale open retries resolution from scratch; the view moving
        // takes an explicit publish/rollback, so in practice this loop runs
        // once (twice under an actively racing reload).
        for _ in 0..RELOAD_ATTEMPTS {
            let target = Self::resolve_view(&self.path)?;
            {
                let state = self.state.read().unwrap();
                if (state.dirs.as_slice(), state.generation) == (target.0.as_slice(), target.1) {
                    return Ok(false);
                }
            }
            let fresh = Self::load_state(&self.path, &self.options)?;
            in_window();
            let mut state = self.state.write().unwrap();
            // Re-resolved under the write lock: between our open and this
            // lock a concurrent reload may have swapped a *newer* view in
            // (and a concurrent publish may have moved the manifest again).
            // Swap only while the store still names the view we opened — a
            // stale open must never overwrite a newer swap with an older
            // view. A deliberate rollback still reloads: there the store
            // genuinely names the older generation.
            let now = Self::resolve_view(&self.path)?;
            if (state.dirs.as_slice(), state.generation) == (now.0.as_slice(), now.1) {
                return Ok(false);
            }
            if (fresh.dirs.as_slice(), fresh.generation) != (now.0.as_slice(), now.1) {
                // Our open is stale; re-resolve and try again.
                continue;
            }
            let generation = fresh.generation;
            publish_shard_gauges(&fresh);
            *state = fresh;
            self.generation_gauge.set(gauge_value(generation));
            self.reload_counter.inc(1);
            return Ok(true);
        }
        Ok(false)
    }

    /// Re-opens the current view **even when its identity is unchanged**
    /// and swaps the fresh open in. [`Self::reload`] no-ops when the store
    /// still names the same directories, which is right for generation
    /// swaps but wrong for *in-place repair*: a shard restored to health
    /// under the same path needs its files re-opened (poisoned fds and
    /// breaker state live in the old view) without requiring a publish.
    /// The health prober calls this after a quarantined shard passes
    /// re-verification; in-flight queries keep their pinned snapshot as
    /// with any reload. Fails without touching serving if any shard fails
    /// to open.
    pub fn force_reload(&self) -> Result<(), QueryError> {
        let fresh = Self::load_state(&self.path, &self.options)?;
        let generation = fresh.generation;
        publish_shard_gauges(&fresh);
        *self.state.write().unwrap() = fresh;
        self.generation_gauge.set(gauge_value(generation));
        self.reload_counter.inc(1);
        Ok(())
    }
}

/// Bound on reload re-resolution retries; each retry requires a publish or
/// rollback to land inside the previous attempt's open window.
const RELOAD_ATTEMPTS: usize = 8;

/// Gauge encoding of a generation number: `0` for a plain index directory,
/// clamped at `i64::MAX` instead of wrapping for (pathological) generation
/// numbers beyond it.
fn gauge_value(generation: Option<u64>) -> i64 {
    generation.unwrap_or(0).min(i64::MAX as u64) as i64
}

/// Exports `index.shard.generation{shard="N"}` for every shard of a
/// multi-shard view (single-shard views keep the exposition clean and use
/// only the unlabeled `index.generation`). Each shard's value is its own
/// serving `gen-NNNN` number, parsed from the directory the manifest named.
fn publish_shard_gauges(state: &ServingState) {
    if state.dirs.len() <= 1 {
        return;
    }
    let reg = ndss_obs::Registry::global();
    for (i, dir) in state.dirs.iter().enumerate() {
        let generation = dir
            .file_name()
            .and_then(|n| n.to_str())
            .and_then(parse_generation_name);
        let shard = i.to_string();
        reg.gauge_with_labels(
            "index.shard.generation",
            "generation number each shard of the serving view is on",
            &[("shard", &shard)],
        )
        .set(gauge_value(generation));
    }
}

/// A long-lived searcher over a [`ServingIndex`]: the owning counterpart of
/// [`crate::BatchSearcher`], safe to keep across generation swaps.
///
/// Every call pins one snapshot for its whole execution, so a batch's
/// results are bit-identical to running it against whichever view was
/// current when the call started — reloads concurrent with the batch take
/// effect for the *next* call.
pub struct ServingSearcher {
    index: Arc<ServingIndex>,
    filter: PrefixFilter,
    threads: usize,
}

impl ServingSearcher {
    /// A serving searcher with prefix filtering disabled.
    pub fn new(index: Arc<ServingIndex>) -> Self {
        Self::with_prefix_filter(index, PrefixFilter::Disabled)
    }

    /// A serving searcher with the given prefix-filtering policy.
    pub fn with_prefix_filter(index: Arc<ServingIndex>, filter: PrefixFilter) -> Self {
        Self {
            index,
            filter,
            threads: ndss_parallel::default_threads(),
        }
    }

    /// Pins the worker-thread count for scatter and batch calls.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// The underlying serving index (for `snapshot()` / `generation()`).
    pub fn index(&self) -> &Arc<ServingIndex> {
        &self.index
    }

    /// Hot-swaps to the store's current view; see [`ServingIndex::reload`].
    pub fn reload(&self) -> Result<bool, QueryError> {
        self.index.reload()
    }

    /// Runs one query at threshold `theta` against the current view.
    pub fn search(&self, query: &[TokenId], theta: f64) -> Result<SearchOutcome, QueryError> {
        self.search_governed(query, theta, &crate::QueryBudget::unlimited())
    }

    /// [`Self::search`] under a per-query [`crate::QueryBudget`] — the shape
    /// a network front door needs: every request pins one view and carries
    /// its own deadline/IO/result caps, split across shards by the
    /// scatter-gather layer.
    pub fn search_governed(
        &self,
        query: &[TokenId],
        theta: f64,
        budget: &crate::QueryBudget,
    ) -> Result<SearchOutcome, QueryError> {
        let snapshot = self.index.snapshot();
        let searcher = snapshot
            .searcher_with_filter(self.filter)?
            .threads(self.threads);
        searcher.search_governed(query, theta, budget)
    }

    /// Ranks an outcome's matches (merged spans, best collision counts)
    /// against the current view's configuration.
    pub fn rank(
        &self,
        outcome: &SearchOutcome,
        limit: usize,
    ) -> Result<Vec<crate::RankedMatch>, QueryError> {
        let snapshot = self.index.snapshot();
        let searcher = snapshot.searcher_with_filter(self.filter)?;
        Ok(searcher.rank(outcome, limit))
    }

    /// Runs every query at threshold `theta`, all against the single view
    /// that was current when the call started; `results[i]` corresponds to
    /// `queries[i]`.
    pub fn search_all(
        &self,
        queries: &[Vec<TokenId>],
        theta: f64,
    ) -> Result<Vec<SearchOutcome>, QueryError> {
        let snapshot = self.index.snapshot();
        let searcher = snapshot
            .searcher_with_filter(self.filter)?
            .threads(self.threads);
        searcher.search_all(queries, theta)
    }
}
