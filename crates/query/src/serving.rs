//! Hot-swappable serving: queries against a generational index store with
//! zero-downtime `reload()`.
//!
//! [`crate::BatchSearcher`] borrows its index for a lifetime, which is the
//! right shape for one-shot evaluation runs but cannot swap the index out
//! from under live traffic. [`ServingIndex`] closes that gap: it owns the
//! current generation behind an `Arc` and re-resolves the store's `CURRENT`
//! pointer on [`ServingIndex::reload`]. Queries *pin* a snapshot for their
//! entire execution — a batch runs start to finish against one generation,
//! so no query ever observes postings from two generations — while new
//! queries arriving after a reload see the new generation immediately. The
//! old generation's memory and file handles drop when its last in-flight
//! query finishes (plain `Arc` reference counting; there is no explicit
//! drain step to get wrong).
//!
//! Observability: the `index.generation` gauge tracks the serving
//! generation number and the `index.reloads` counter every completed swap,
//! so a fleet dashboard shows exactly which generation each process serves.
//! The gauge is process-wide and **last-writer-wins**: when two
//! [`ServingIndex`]es live in one process (e.g. tests, or a future
//! multi-shard server), whichever opened or reloaded most recently owns the
//! exported value — the registry has no label dimension, and registering a
//! second gauge under the same name would corrupt the exposition instead.
//! Generation numbers above `i64::MAX` are clamped rather than wrapped.

use std::path::{Path, PathBuf};
use std::sync::{Arc, RwLock};

use ndss_hash::TokenId;
use ndss_index::generation::{parse_generation_name, resolve_index_dir};
use ndss_index::{CacheConfig, DiskIndex};

use crate::batch::BatchSearcher;
use crate::search::{NearDupSearcher, PrefixFilter, SearchOutcome};
use crate::QueryError;

struct ServingState {
    index: Arc<DiskIndex>,
    /// Directory the current index was opened from (identity for change
    /// detection on reload).
    dir: PathBuf,
    /// Generation number when serving from a store, `None` for a plain
    /// index directory.
    generation: Option<u64>,
}

/// An index handle that can be atomically re-pointed at a new generation
/// while queries are in flight.
pub struct ServingIndex {
    /// Store root (or plain index directory) reloads re-resolve.
    path: PathBuf,
    cache: CacheConfig,
    state: RwLock<ServingState>,
    generation_gauge: ndss_obs::Gauge,
    reload_counter: ndss_obs::Counter,
}

impl ServingIndex {
    /// Opens the index at `path` — either a generation store (its `CURRENT`
    /// generation is served) or a plain index directory.
    pub fn open(path: &Path) -> Result<Self, QueryError> {
        Self::open_with_cache(path, CacheConfig::default())
    }

    /// [`Self::open`] with explicit cache sizing. Each generation gets its
    /// own caches (postings cached under one generation must not be served
    /// under another).
    pub fn open_with_cache(path: &Path, cache: CacheConfig) -> Result<Self, QueryError> {
        let reg = ndss_obs::Registry::global();
        let generation_gauge = reg.gauge(
            "index.generation",
            "generation number currently being served (0 for a plain index directory)",
        );
        let reload_counter = reg.counter(
            "index.reloads",
            "completed hot swaps to a new index generation",
        );
        let state = Self::load_state(path, cache)?;
        generation_gauge.set(gauge_value(state.generation));
        Ok(Self {
            path: path.to_path_buf(),
            cache,
            state: RwLock::new(state),
            generation_gauge,
            reload_counter,
        })
    }

    fn load_state(path: &Path, cache: CacheConfig) -> Result<ServingState, QueryError> {
        let dir = resolve_index_dir(path);
        let generation = dir
            .file_name()
            .and_then(|n| n.to_str())
            .and_then(parse_generation_name);
        let index = Arc::new(DiskIndex::open_with_cache(&dir, cache)?);
        Ok(ServingState {
            index,
            dir,
            generation,
        })
    }

    /// The snapshot new queries would use right now. Callers hold the `Arc`
    /// for the duration of a query (or batch), pinning that generation —
    /// a concurrent reload never changes an execution in progress.
    pub fn snapshot(&self) -> Arc<DiskIndex> {
        self.state.read().unwrap().index.clone()
    }

    /// The generation number being served (`None` for a plain directory).
    pub fn generation(&self) -> Option<u64> {
        self.state.read().unwrap().generation
    }

    /// The directory the serving snapshot was opened from.
    pub fn serving_dir(&self) -> PathBuf {
        self.state.read().unwrap().dir.clone()
    }

    /// Re-resolves the store's `CURRENT` pointer and, if it moved, opens
    /// the new generation and swaps it in. Returns `true` when a swap
    /// happened. In-flight queries keep their pinned snapshot; the old
    /// generation is dropped when the last of them finishes. The new
    /// generation is fully opened (headers validated) *before* the swap, so
    /// a bad generation leaves serving untouched and returns the error.
    ///
    /// Racing reloads are safe in both directions: the swap is re-checked
    /// under the write lock, so a reload that resolved `CURRENT` before a
    /// concurrent reload published-and-swapped a *newer* generation
    /// abandons its stale open instead of regressing serving to the older
    /// generation.
    pub fn reload(&self) -> Result<bool, QueryError> {
        self.reload_with_race_window(|| {})
    }

    /// [`Self::reload`] with a hook invoked between resolving/opening the
    /// target generation and taking the write lock — the window in which a
    /// concurrent reload can land. Exists so tests can exercise the race
    /// deterministically; not part of the stable API.
    #[doc(hidden)]
    pub fn reload_with_race_window(&self, mut in_window: impl FnMut()) -> Result<bool, QueryError> {
        // A stale open retries resolution from scratch; `CURRENT` moving
        // takes an explicit publish/rollback, so in practice this loop runs
        // once (twice under an actively racing reload).
        for _ in 0..RELOAD_ATTEMPTS {
            let target = resolve_index_dir(&self.path);
            {
                let state = self.state.read().unwrap();
                if state.dir == target {
                    return Ok(false);
                }
            }
            let fresh = Self::load_state(&self.path, self.cache)?;
            in_window();
            let generation = fresh.generation;
            let mut state = self.state.write().unwrap();
            // Re-resolved under the write lock: between our open and this
            // lock a concurrent reload may have swapped a *newer* generation
            // in (and a concurrent publish may have moved `CURRENT` again).
            // Swap only while `CURRENT` still names the generation we
            // opened — a stale open must never overwrite a newer swap with
            // an older generation. A deliberate rollback still reloads:
            // there `CURRENT` genuinely names the older generation.
            let current_now = resolve_index_dir(&self.path);
            if state.dir == current_now {
                return Ok(false);
            }
            if fresh.dir != current_now {
                // Our open is stale; re-resolve and try again.
                continue;
            }
            *state = fresh;
            self.generation_gauge.set(gauge_value(generation));
            self.reload_counter.inc(1);
            return Ok(true);
        }
        Ok(false)
    }
}

/// Bound on reload re-resolution retries; each retry requires a publish or
/// rollback to land inside the previous attempt's open window.
const RELOAD_ATTEMPTS: usize = 8;

/// Gauge encoding of a generation number: `0` for a plain index directory,
/// clamped at `i64::MAX` instead of wrapping for (pathological) generation
/// numbers beyond it.
fn gauge_value(generation: Option<u64>) -> i64 {
    generation.unwrap_or(0).min(i64::MAX as u64) as i64
}

/// A long-lived searcher over a [`ServingIndex`]: the owning counterpart of
/// [`BatchSearcher`], safe to keep across generation swaps.
///
/// Every call pins one snapshot for its whole execution, so a batch's
/// results are bit-identical to running it against whichever generation was
/// current when the call started — reloads concurrent with the batch take
/// effect for the *next* call.
pub struct ServingSearcher {
    index: Arc<ServingIndex>,
    filter: PrefixFilter,
    threads: usize,
}

impl ServingSearcher {
    /// A serving searcher with prefix filtering disabled.
    pub fn new(index: Arc<ServingIndex>) -> Self {
        Self::with_prefix_filter(index, PrefixFilter::Disabled)
    }

    /// A serving searcher with the given prefix-filtering policy.
    pub fn with_prefix_filter(index: Arc<ServingIndex>, filter: PrefixFilter) -> Self {
        Self {
            index,
            filter,
            threads: ndss_parallel::default_threads(),
        }
    }

    /// Pins the worker-thread count for batch calls.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// The underlying serving index (for `snapshot()` / `generation()`).
    pub fn index(&self) -> &Arc<ServingIndex> {
        &self.index
    }

    /// Hot-swaps to the store's current generation; see
    /// [`ServingIndex::reload`].
    pub fn reload(&self) -> Result<bool, QueryError> {
        self.index.reload()
    }

    /// Runs one query at threshold `theta` against the current generation.
    pub fn search(&self, query: &[TokenId], theta: f64) -> Result<SearchOutcome, QueryError> {
        self.search_governed(query, theta, &crate::QueryBudget::unlimited())
    }

    /// [`Self::search`] under a per-query [`crate::QueryBudget`] — the shape
    /// a network front door needs: every request pins one generation and
    /// carries its own deadline/IO/result caps.
    pub fn search_governed(
        &self,
        query: &[TokenId],
        theta: f64,
        budget: &crate::QueryBudget,
    ) -> Result<SearchOutcome, QueryError> {
        let snapshot = self.index.snapshot();
        let searcher = NearDupSearcher::with_prefix_filter(&*snapshot, self.filter)?;
        searcher.search_governed(query, theta, budget)
    }

    /// Ranks an outcome's matches (merged spans, best collision counts),
    /// delegating to [`NearDupSearcher::rank`] against the current
    /// generation's configuration.
    pub fn rank(
        &self,
        outcome: &SearchOutcome,
        limit: usize,
    ) -> Result<Vec<crate::RankedMatch>, QueryError> {
        let snapshot = self.index.snapshot();
        let searcher = NearDupSearcher::with_prefix_filter(&*snapshot, self.filter)?;
        Ok(searcher.rank(outcome, limit))
    }

    /// Runs every query at threshold `theta`, all against the single
    /// generation that was current when the call started; `results[i]`
    /// corresponds to `queries[i]`.
    pub fn search_all(
        &self,
        queries: &[Vec<TokenId>],
        theta: f64,
    ) -> Result<Vec<SearchOutcome>, QueryError> {
        let snapshot = self.index.snapshot();
        let batch =
            BatchSearcher::with_prefix_filter(&*snapshot, self.filter)?.threads(self.threads);
        batch.search_all(queries, theta)
    }
}
