//! Scatter-gather queries over a sharded store: "one index" as the
//! single-shard special case.
//!
//! A [`ShardedIndex`] is the read-side view of an
//! [`ndss_index::ShardedStore`] — one opened [`DiskIndex`] per shard plus
//! each shard's `first_text` offset, pinned to one manifest view
//! generation. Opening a plain index directory or an unsharded generation
//! store yields the same type with a single shard at offset 0, so every
//! caller (CLI, serving daemon, tests) handles both layouts through one
//! path.
//!
//! [`ShardedSearcher`] fans a query out across the shards on the
//! `ndss-parallel` pool. Each shard runs the ordinary
//! [`NearDupSearcher`] over its own index under a **split budget**
//! ([`QueryBudget::split_across`]): wall-clock limits are shared — every
//! shard races the same absolute deadline — while IO/candidate/result
//! caps are apportioned, so a fan-out cannot multiply the caller's
//! spending limit by the shard count. Because shards partition the corpus
//! by contiguous text-id range, merging is exact and trivial: offset each
//! shard's match text ids by its `first_text` and concatenate in shard
//! order, which *is* ascending global text order. The merged result is
//! bit-identical to a single index over the whole corpus
//! (`tests/sharded_exactness` pins this).
//!
//! When a shard trips its budget the composition stays **sound**: results
//! from shards before it are complete, the tripped shard contributes its
//! own sound partial (ascending text ids), and shards after it are
//! discarded — yielding a prefix, in text order, of the full result, which
//! is exactly the contract single-index governed search already makes.

use std::path::Path;
use std::sync::Arc;
use std::time::Instant;

use ndss_corpus::TextId;
use ndss_hash::TokenId;
use ndss_index::generation::resolve_index_dir;
use ndss_index::{CacheConfig, DiskIndex, IndexAccess, IndexConfig, ReadOptions, ShardedStore};

use crate::breaker::{classify, Admission, BreakerConfig, DegradedShard, ShardHealth};
use crate::governor::QueryBudget;
use crate::search::{NearDupSearcher, PrefixFilter, QueryStats, RankedMatch, SearchOutcome};
use crate::{QueryError, Resource};

/// What a scatter-gather does when one shard fails at runtime.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FaultPolicy {
    /// Propagate the first shard error as the query's error (the PR 8
    /// behavior, and still the right one for one-shot evaluation runs
    /// where a wrong-looking corpus should stop the job). Breakers are
    /// neither consulted nor updated.
    #[default]
    FailFast,
    /// Contain the failure to its shard: classify it, feed the shard's
    /// circuit breaker, skip quarantined shards, and return a degraded
    /// outcome (`complete: false` + [`DegradedShard`] ranges) built from
    /// the healthy shards. The serving daemon runs this policy.
    Isolate,
}

/// One shard of the read view: where its texts start globally, and its
/// opened index.
struct ShardSlot {
    base: TextId,
    index: Arc<DiskIndex>,
}

/// A read view over one or many shards, pinned to one manifest view
/// generation. See the module docs.
pub struct ShardedIndex {
    shards: Vec<ShardSlot>,
    /// Manifest view generation for a sharded store; `None` for plain
    /// directories and unsharded generation stores.
    manifest_generation: Option<u64>,
    /// Per-shard circuit breakers. Living inside the view means breaker
    /// state persists for as long as the view is pinned (the serving
    /// daemon holds one `Arc` across requests) and resets naturally when
    /// a reload opens a fresh view — which is exactly the re-admission
    /// path after a shard is repaired.
    health: Arc<ShardHealth>,
}

impl ShardedIndex {
    /// Opens `path` as a sharded store (when it has a `MANIFEST`), a
    /// generation store (its `CURRENT` generation becomes the only shard),
    /// or a plain index directory (likewise).
    pub fn open(path: &Path) -> Result<Self, QueryError> {
        Self::open_with_cache(path, CacheConfig::default())
    }

    /// [`Self::open`] with explicit cache sizing (each shard gets its own
    /// caches).
    pub fn open_with_cache(path: &Path, cache: CacheConfig) -> Result<Self, QueryError> {
        Self::open_with(path, cache, ReadOptions::default())
    }

    /// [`Self::open`] with explicit cache sizing and read options (e.g.
    /// memory-mapped postings); both apply to every shard.
    pub fn open_with(path: &Path, cache: CacheConfig, io: ReadOptions) -> Result<Self, QueryError> {
        Self::open_full(path, cache, io, BreakerConfig::default())
    }

    /// [`Self::open_with`] with explicit breaker tuning for the per-shard
    /// circuit breakers (only consulted under [`FaultPolicy::Isolate`]).
    pub fn open_full(
        path: &Path,
        cache: CacheConfig,
        io: ReadOptions,
        breaker: BreakerConfig,
    ) -> Result<Self, QueryError> {
        if ShardedStore::is_sharded(path) {
            let store = ShardedStore::open(path)?;
            let mut shards = Vec::with_capacity(store.num_shards());
            for i in 0..store.num_shards() {
                let dir = store.serving_dir(i)?;
                shards.push(ShardSlot {
                    base: store.manifest().shards[i].first_text,
                    index: Arc::new(DiskIndex::open_with_io(&dir, cache, io.clone())?),
                });
            }
            let health = Arc::new(ShardHealth::new(shards.len(), breaker));
            Ok(Self {
                shards,
                manifest_generation: Some(store.manifest().generation),
                health,
            })
        } else {
            let dir = resolve_index_dir(path);
            let index = Arc::new(DiskIndex::open_with_io(&dir, cache, io)?);
            Ok(Self {
                health: Arc::new(ShardHealth::new(1, breaker)),
                ..Self::from_single(index)
            })
        }
    }

    /// The single-shard special case: one already-opened index covering
    /// the whole text-id space.
    pub fn from_single(index: Arc<DiskIndex>) -> Self {
        Self {
            shards: vec![ShardSlot { base: 0, index }],
            manifest_generation: None,
            health: Arc::new(ShardHealth::new(1, BreakerConfig::default())),
        }
    }

    /// Number of shards in the view.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Total texts across all shards.
    pub fn num_texts(&self) -> usize {
        self.shards.iter().map(|s| s.index.config().num_texts).sum()
    }

    /// The shared index configuration (`k`, `t`, seed, format — identical
    /// across shards of one store; corpus dimensions are per-shard).
    pub fn config(&self) -> &IndexConfig {
        self.shards[0].index.config()
    }

    /// Manifest view generation when opened from a sharded store.
    pub fn manifest_generation(&self) -> Option<u64> {
        self.manifest_generation
    }

    /// Shard `i`'s opened index.
    pub fn shard(&self, i: usize) -> &Arc<DiskIndex> {
        &self.shards[i].index
    }

    /// Shard `i`'s first global text id.
    pub fn shard_base(&self, i: usize) -> TextId {
        self.shards[i].base
    }

    /// The per-shard circuit-breaker set for this view. Metrics exporters
    /// and health probers read it; [`FaultPolicy::Isolate`] searches feed
    /// it.
    pub fn health(&self) -> &Arc<ShardHealth> {
        &self.health
    }

    /// A scatter-gather searcher over this view with prefix filtering
    /// disabled.
    pub fn searcher(&self) -> Result<ShardedSearcher<'_>, QueryError> {
        self.searcher_with_filter(PrefixFilter::Disabled)
    }

    /// A scatter-gather searcher with the given prefix-filter policy (each
    /// shard derives its own cutoffs from its own list-length histogram —
    /// a pure optimization, so exactness is unaffected).
    pub fn searcher_with_filter(
        &self,
        filter: PrefixFilter,
    ) -> Result<ShardedSearcher<'_>, QueryError> {
        let mut shards = Vec::with_capacity(self.shards.len());
        for slot in &self.shards {
            shards.push(ShardLane {
                base: slot.base,
                num_texts: slot.index.config().num_texts as u64,
                searcher: NearDupSearcher::with_prefix_filter(&*slot.index, filter)?,
            });
        }
        Ok(ShardedSearcher {
            shards,
            threads: ndss_parallel::default_threads(),
            policy: FaultPolicy::FailFast,
            health: Arc::clone(&self.health),
        })
    }
}

/// One shard's slice of a [`ShardedSearcher`].
struct ShardLane<'a> {
    base: TextId,
    num_texts: u64,
    searcher: NearDupSearcher<'a, DiskIndex>,
}

/// What one shard contributed to a scatter: a searched result, or a
/// skip/containment record for a degraded shard.
// One short-lived value per shard per query; boxing the hot Searched
// variant would cost an allocation on every healthy lane.
#[allow(clippy::large_enum_variant)]
enum LaneOutcome {
    Searched(Result<SearchOutcome, QueryError>),
    Degraded(DegradedShard),
}

/// Fans queries out across a [`ShardedIndex`]'s shards and merges exact
/// results; see the module docs for the merge and budget semantics.
pub struct ShardedSearcher<'a> {
    shards: Vec<ShardLane<'a>>,
    threads: usize,
    policy: FaultPolicy,
    health: Arc<ShardHealth>,
}

impl ShardedSearcher<'_> {
    /// Pins the worker-thread count: the scatter width for single queries,
    /// and the query-level parallelism for batches.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Sets the per-shard fault policy (default [`FaultPolicy::FailFast`]).
    pub fn fault_policy(mut self, policy: FaultPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Runs one query at threshold `theta` across all shards.
    pub fn search(&self, query: &[TokenId], theta: f64) -> Result<SearchOutcome, QueryError> {
        self.search_governed(query, theta, &QueryBudget::unlimited())
    }

    /// [`Self::search`] under a budget: the deadline is shared across
    /// shards, work caps are apportioned per shard, and a tripped shard
    /// yields a sound text-order prefix of the full result (carried in
    /// [`QueryError::BudgetExceeded`], exactly like the single-index
    /// searcher).
    pub fn search_governed(
        &self,
        query: &[TokenId],
        theta: f64,
        budget: &QueryBudget,
    ) -> Result<SearchOutcome, QueryError> {
        self.scatter(query, theta, budget, self.threads)
    }

    /// Runs every query at threshold `theta`; `results[i]` corresponds to
    /// `queries[i]`, each bit-identical to a sequential [`Self::search`].
    /// Parallelism is at the query level (each query scatters serially),
    /// so total workers stay at the configured thread count.
    pub fn search_all(
        &self,
        queries: &[Vec<TokenId>],
        theta: f64,
    ) -> Result<Vec<SearchOutcome>, QueryError> {
        ndss_parallel::try_map(queries, self.threads, |_, q| {
            self.scatter(q, theta, &QueryBudget::unlimited(), 1)
        })
    }

    /// Per-query governed batch: every slot gets its own outcome or error
    /// (budget trips carry sound partials), never collateral failures.
    pub fn search_all_governed(
        &self,
        queries: &[Vec<TokenId>],
        theta: f64,
        budget: &QueryBudget,
    ) -> Vec<Result<SearchOutcome, QueryError>> {
        ndss_parallel::map(queries, self.threads, |_, q| {
            self.scatter(q, theta, budget, 1)
        })
    }

    /// Ranks an outcome's matches by best collision count; ranking depends
    /// only on the shared configuration, so any shard's searcher can rank
    /// merged (global-id) outcomes.
    pub fn rank(&self, outcome: &SearchOutcome, limit: usize) -> Vec<RankedMatch> {
        self.shards[0].searcher.rank(outcome, limit)
    }

    fn scatter(
        &self,
        query: &[TokenId],
        theta: f64,
        budget: &QueryBudget,
        threads: usize,
    ) -> Result<SearchOutcome, QueryError> {
        let started = Instant::now();
        // Admission runs before the split so quarantined shards neither do
        // work nor consume budget: caps are apportioned across the shards
        // that will actually search.
        let admissions: Vec<Admission> = match self.policy {
            FaultPolicy::FailFast => vec![Admission::Admit; self.shards.len()],
            FaultPolicy::Isolate => (0..self.shards.len())
                .map(|i| self.health.admit(i))
                .collect(),
        };
        let searching = admissions
            .iter()
            .filter(|a| **a != Admission::Quarantined)
            .count();
        if searching == 0 {
            // Every shard is quarantined: there is no healthy subset to
            // answer from, so surface the (classified) fault instead of an
            // empty "result".
            let (kind, reason) = self.health.last_fault(0);
            return Err(QueryError::AllShardsQuarantined {
                shards: self.shards.len(),
                kind,
                reason,
            });
        }
        let per_shard = budget.split_across(searching);
        let results: Vec<Option<Result<SearchOutcome, QueryError>>> =
            ndss_parallel::map(&self.shards, threads, |i, lane| match admissions[i] {
                Admission::Quarantined => None,
                Admission::Admit | Admission::Probe => {
                    Some(lane.searcher.search_governed(query, theta, &per_shard))
                }
            });
        let lanes: Vec<LaneOutcome> = results
            .into_iter()
            .enumerate()
            .map(|(i, result)| self.classify_lane(i, result))
            .collect();
        self.merge(lanes, started)
    }

    /// Applies the fault policy to one shard's raw result: feeds the
    /// breaker and converts contained faults into [`LaneOutcome::Degraded`]
    /// records labeling the shard's text range.
    fn classify_lane(
        &self,
        i: usize,
        result: Option<Result<SearchOutcome, QueryError>>,
    ) -> LaneOutcome {
        let degraded = |kind, reason| {
            LaneOutcome::Degraded(DegradedShard {
                shard: i,
                first_text: self.shards[i].base,
                num_texts: self.shards[i].num_texts,
                kind,
                reason,
            })
        };
        let Some(result) = result else {
            // Skipped at admission: label with the breaker's last fault.
            let (kind, reason) = self.health.last_fault(i);
            return degraded(kind, reason);
        };
        if self.policy == FaultPolicy::FailFast {
            return LaneOutcome::Searched(result);
        }
        match result {
            Ok(outcome) => {
                self.health.record_success(i);
                LaneOutcome::Searched(Ok(outcome))
            }
            // A budget trip is the caller's limit, not a shard fault: the
            // shard's IO worked, so it counts as breaker success.
            Err(e @ QueryError::BudgetExceeded { .. }) => {
                self.health.record_success(i);
                LaneOutcome::Searched(Err(e))
            }
            Err(e) => match classify(&e) {
                Some(kind) => {
                    let reason = e.to_string();
                    self.health.record_failure(i, kind, &reason);
                    degraded(kind, reason)
                }
                None => LaneOutcome::Searched(Err(e)),
            },
        }
    }

    /// Merges per-shard results in shard order (ascending global text
    /// order). Stops at the first budget-tripped shard so the healthy-shard
    /// composition is a sound prefix; any other error propagates as-is.
    /// Degraded lanes contribute no matches — their text ranges are
    /// recorded on the outcome and flip `complete` off.
    fn merge(
        &self,
        lanes: Vec<LaneOutcome>,
        started: Instant,
    ) -> Result<SearchOutcome, QueryError> {
        let mut merged: Option<SearchOutcome> = None;
        let mut tripped: Option<Resource> = None;
        let mut degraded: Vec<DegradedShard> = Vec::new();
        for (i, lane) in lanes.into_iter().enumerate() {
            let base = self.shards[i].base;
            let (mut outcome, resource) = match lane {
                LaneOutcome::Degraded(d) => {
                    degraded.push(d);
                    continue;
                }
                LaneOutcome::Searched(Ok(outcome)) => (outcome, None),
                LaneOutcome::Searched(Err(QueryError::BudgetExceeded { resource, partial })) => {
                    (*partial, Some(resource))
                }
                LaneOutcome::Searched(Err(e)) => return Err(e),
            };
            for m in &mut outcome.matches {
                m.text += base;
            }
            merged = Some(match merged.take() {
                None => outcome,
                Some(mut acc) => {
                    acc.matches.append(&mut outcome.matches);
                    accumulate_stats(&mut acc.stats, &outcome.stats);
                    acc
                }
            });
            if resource.is_some() {
                tripped = resource;
                break;
            }
        }
        let Some(mut outcome) = merged else {
            // Every admitted shard faulted in this very scatter: like the
            // all-quarantined admission case, there is no healthy subset.
            let d = degraded
                .first()
                .expect("a sharded view has at least one shard");
            return Err(QueryError::AllShardsQuarantined {
                shards: self.shards.len(),
                kind: d.kind,
                reason: d.reason.clone(),
            });
        };
        outcome.stats.total = started.elapsed();
        if !degraded.is_empty() {
            outcome.complete = false;
            outcome.degraded = degraded;
        }
        match tripped {
            None => Ok(outcome),
            Some(resource) => {
                outcome.complete = false;
                Err(QueryError::BudgetExceeded {
                    resource,
                    partial: Box::new(outcome),
                })
            }
        }
    }
}

/// Sums `other` into `acc`, field by field. `total` is excluded — the
/// scatter-gather wall clock is set once by the merger, not summed across
/// concurrent shards.
pub(crate) fn accumulate_stats(acc: &mut QueryStats, other: &QueryStats) {
    acc.io_time += other.io_time;
    acc.io_bytes += other.io_bytes;
    acc.cache_hits += other.cache_hits;
    acc.cache_misses += other.cache_misses;
    acc.cpu_time += other.cpu_time;
    acc.zone_hits += other.zone_hits;
    acc.zone_misses += other.zone_misses;
    acc.stage_sketch += other.stage_sketch;
    acc.stage_plan += other.stage_plan;
    acc.stage_gather += other.stage_gather;
    acc.stage_count += other.stage_count;
    acc.stage_probe += other.stage_probe;
    acc.lists_loaded += other.lists_loaded;
    acc.lists_long += other.lists_long;
    acc.long_probes += other.long_probes;
    acc.postings_read += other.postings_read;
    acc.candidate_texts += other.candidate_texts;
    acc.matched_texts += other.matched_texts;
}
