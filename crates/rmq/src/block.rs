//! Block-decomposed RMQ: `O(n)` space with near-constant queries.
//!
//! The array is cut into fixed-size blocks. A [`super::SparseTable`] over the
//! per-block minima answers the "middle" part of a query in `O(1)`; the two
//! boundary blocks are scanned directly (`O(b)` for block size `b`). With a
//! cache-line-sized block this is the fastest practical structure on the
//! token-hash arrays window generation works with, and its space overhead is
//! `O(n / b)` words instead of the sparse table's `O(n log n)`.
//!
//! This is the "advanced RMQ" slot from the paper's complexity discussion
//! (§3.3): it removes the `log n` factor from preprocessing space while
//! keeping queries effectively constant-time.

use crate::{RangeArgmin, SparseTable};

/// Default block size: 8 values = one 64-byte cache line of `u64`s.
const DEFAULT_BLOCK: usize = 8;

/// A block-decomposed RMQ structure over a copied value array.
#[derive(Debug, Clone)]
pub struct BlockRmq {
    values: Vec<u64>,
    block: usize,
    /// Index (into `values`) of the leftmost minimum of each block.
    block_argmin: Vec<u32>,
    /// Sparse table over the per-block minimum *values*, answering which
    /// block holds the smallest value in a block range.
    summary: SparseTable,
}

impl BlockRmq {
    /// Builds the structure with the default block size.
    pub fn new(values: &[u64]) -> Self {
        Self::with_block_size(values, DEFAULT_BLOCK)
    }

    /// Builds the structure with an explicit block size (`>= 1`).
    pub fn with_block_size(values: &[u64], block: usize) -> Self {
        assert!(block >= 1, "block size must be at least 1");
        let n = values.len();
        let blocks = n.div_ceil(block);
        let mut block_argmin = Vec::with_capacity(blocks);
        let mut block_min = Vec::with_capacity(blocks);
        for b in 0..blocks {
            let start = b * block;
            let end = (start + block).min(n);
            let mut best = start;
            for i in start + 1..end {
                if values[i] < values[best] {
                    best = i;
                }
            }
            block_argmin.push(best as u32);
            block_min.push(values[best]);
        }
        Self {
            values: values.to_vec(),
            block,
            block_argmin,
            summary: SparseTable::new(&block_min),
        }
    }

    /// The underlying values.
    pub fn values(&self) -> &[u64] {
        &self.values
    }

    #[inline]
    fn scan(&self, l: usize, r: usize) -> usize {
        let mut best = l;
        for i in l + 1..=r {
            if self.values[i] < self.values[best] {
                best = i;
            }
        }
        best
    }
}

impl RangeArgmin for BlockRmq {
    fn len(&self) -> usize {
        self.values.len()
    }

    #[inline]
    fn argmin(&self, l: usize, r: usize) -> usize {
        assert!(
            l <= r && r < self.values.len(),
            "argmin range out of bounds"
        );
        let lb = l / self.block;
        let rb = r / self.block;
        if lb == rb {
            return self.scan(l, r);
        }
        // Left partial block, middle whole blocks, right partial block.
        let left_end = (lb + 1) * self.block - 1;
        let right_start = rb * self.block;
        let mut best = self.scan(l, left_end);
        if lb + 1 < rb {
            let mid_block = self.summary.argmin(lb + 1, rb - 1);
            let cand = self.block_argmin[mid_block] as usize;
            if self.values[cand] < self.values[best] {
                best = cand;
            }
        }
        let cand = self.scan(right_start, r);
        if self.values[cand] < self.values[best] {
            best = cand;
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NaiveArgmin;

    fn check_all_ranges(values: &[u64], block: usize) {
        let rmq = BlockRmq::with_block_size(values, block);
        let naive = NaiveArgmin::new(values);
        for l in 0..values.len() {
            for r in l..values.len() {
                assert_eq!(
                    rmq.argmin(l, r),
                    naive.argmin(l, r),
                    "mismatch on [{l},{r}] block={block} over {values:?}"
                );
            }
        }
    }

    #[test]
    fn matches_naive_across_block_sizes() {
        let values: Vec<u64> = (0..100u64)
            .map(|i| (i.wrapping_mul(0x9E3779B97F4A7C15) >> 50) % 32)
            .collect();
        for block in [1usize, 2, 3, 7, 8, 16, 100, 200] {
            check_all_ranges(&values, block);
        }
    }

    #[test]
    fn single_block_behaves() {
        check_all_ranges(&[4, 1, 1, 9], 16);
    }

    #[test]
    fn ties_resolve_leftmost() {
        let values = [3u64, 0, 5, 0, 0, 2, 0, 7, 7];
        let rmq = BlockRmq::with_block_size(&values, 3);
        assert_eq!(rmq.argmin(0, 8), 1);
        assert_eq!(rmq.argmin(2, 8), 3);
        assert_eq!(rmq.argmin(4, 8), 4);
        assert_eq!(rmq.argmin(7, 8), 7);
    }

    #[test]
    fn default_block_size_works() {
        let values: Vec<u64> = (0..64u64).rev().collect();
        let rmq = BlockRmq::new(&values);
        assert_eq!(rmq.argmin(0, 63), 63);
        assert_eq!(rmq.argmin(0, 31), 31);
    }

    #[test]
    #[should_panic(expected = "block size")]
    fn zero_block_size_rejected() {
        BlockRmq::with_block_size(&[1, 2, 3], 0);
    }
}
