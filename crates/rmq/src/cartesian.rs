//! Linear-time Cartesian trees.
//!
//! A Cartesian tree over an array places the (leftmost) minimum at the root
//! and recursively builds the left and right subtrees from the sub-arrays on
//! either side. Its shape is therefore *exactly the recursion tree of the
//! compact-window generator* (paper Algorithm 2): node `c` with subtree span
//! `[l, r]` corresponds to the compact window `(l, c, r)`. Building the tree
//! with the classic rightmost-spine stack construction takes `O(n)` time, so
//! walking it (with pruning at spans narrower than the length threshold)
//! yields all valid compact windows in `O(n)` total — the paper's claimed
//! linear bound, without any per-recursion RMQ query.
//!
//! Ties: equal values are treated as *decreasing to the right*, i.e. the
//! leftmost of several equal minima becomes the ancestor. This matches the
//! leftmost tie-break used by the RMQ structures in this crate, so the
//! tree-walk generator and the RMQ-based generator produce identical windows.

/// Sentinel meaning "no node".
pub const NONE: u32 = u32::MAX;

/// A Cartesian tree stored as parent/child index arrays.
#[derive(Debug, Clone)]
pub struct CartesianTree {
    root: u32,
    parent: Vec<u32>,
    left: Vec<u32>,
    right: Vec<u32>,
}

impl CartesianTree {
    /// Builds the tree over `values` in `O(n)` using a rightmost-spine stack.
    ///
    /// Returns an empty tree for an empty array.
    pub fn new(values: &[u64]) -> Self {
        let n = values.len();
        let mut parent = vec![NONE; n];
        let mut left = vec![NONE; n];
        let mut right = vec![NONE; n];
        let mut stack: Vec<u32> = Vec::with_capacity(64);
        for i in 0..n {
            let mut last_popped = NONE;
            // Strict '>' keeps the leftmost of equal minima as the ancestor.
            while let Some(&top) = stack.last() {
                if values[top as usize] > values[i] {
                    last_popped = top;
                    stack.pop();
                } else {
                    break;
                }
            }
            if last_popped != NONE {
                left[i] = last_popped;
                parent[last_popped as usize] = i as u32;
            }
            if let Some(&top) = stack.last() {
                right[top as usize] = i as u32;
                parent[i] = top;
            }
            stack.push(i as u32);
        }
        let root = stack.first().copied().unwrap_or(NONE);
        Self {
            root,
            parent,
            left,
            right,
        }
    }

    /// The number of nodes (array length).
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// Whether the tree is empty.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// The root index, or [`NONE`] if the tree is empty.
    pub fn root(&self) -> u32 {
        self.root
    }

    /// Left child of node `i`, or [`NONE`].
    pub fn left(&self, i: usize) -> u32 {
        self.left[i]
    }

    /// Right child of node `i`, or [`NONE`].
    pub fn right(&self, i: usize) -> u32 {
        self.right[i]
    }

    /// Parent of node `i`, or [`NONE`] for the root.
    pub fn parent(&self, i: usize) -> u32 {
        self.parent[i]
    }

    /// Visits every node together with its subtree span `[l, r]` (inclusive),
    /// in preorder. The visitor returns `true` to descend into the node's
    /// children and `false` to prune the subtree — window generation prunes
    /// spans narrower than the length threshold, because *every* span in a
    /// pruned subtree is strictly contained in its parent's span.
    pub fn visit_spans<F: FnMut(usize, usize, usize) -> bool>(&self, mut visit: F) {
        if self.root == NONE {
            return;
        }
        // Explicit stack of (node, span_lo, span_hi).
        let mut stack: Vec<(u32, u32, u32)> = Vec::with_capacity(64);
        stack.push((self.root, 0, (self.len() - 1) as u32));
        while let Some((node, lo, hi)) = stack.pop() {
            let c = node as usize;
            if !visit(lo as usize, c, hi as usize) {
                continue;
            }
            // Children spans: left subtree covers [lo, c-1], right [c+1, hi].
            let l = self.left[c];
            if l != NONE {
                stack.push((l, lo, node - 1));
            }
            let r = self.right[c];
            if r != NONE {
                stack.push((r, node + 1, hi));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{NaiveArgmin, RangeArgmin};

    /// Checks the Cartesian-tree heap and BST invariants against the values.
    fn check_invariants(values: &[u64]) {
        let tree = CartesianTree::new(values);
        assert_eq!(tree.len(), values.len());
        if values.is_empty() {
            assert_eq!(tree.root(), NONE);
            return;
        }
        let naive = NaiveArgmin::new(values);
        assert_eq!(tree.root() as usize, naive.argmin(0, values.len() - 1));
        tree.visit_spans(|l, c, r| {
            // Span containment and the heap property: c is the leftmost min
            // of its span.
            assert!(l <= c && c <= r);
            assert_eq!(c, naive.argmin(l, r), "span [{l},{r}] of {values:?}");
            true
        });
        // Every node is visited exactly once when nothing is pruned.
        let mut seen = vec![false; values.len()];
        tree.visit_spans(|_, c, _| {
            assert!(!seen[c], "node {c} visited twice");
            seen[c] = true;
            true
        });
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn invariants_on_assorted_arrays() {
        check_invariants(&[]);
        check_invariants(&[42]);
        check_invariants(&[1, 2, 3, 4, 5]);
        check_invariants(&[5, 4, 3, 2, 1]);
        check_invariants(&[5, 3, 9, 3, 7]);
        check_invariants(&[2, 2, 2, 2]);
        let pseudo: Vec<u64> = (0..200u64)
            .map(|i| (i.wrapping_mul(0x9E3779B97F4A7C15) >> 53) % 13)
            .collect();
        check_invariants(&pseudo);
    }

    #[test]
    fn leftmost_of_equal_minima_is_root() {
        let values = [7u64, 1, 8, 1, 9];
        let tree = CartesianTree::new(&values);
        assert_eq!(tree.root(), 1);
        // The second 1 must live in the right subtree of the first.
        assert_eq!(tree.right(1), 3);
    }

    #[test]
    fn pruning_stops_descent() {
        let values = [3u64, 1, 4, 1, 5, 9, 2, 6];
        let tree = CartesianTree::new(&values);
        let mut visited = 0;
        tree.visit_spans(|l, _, r| {
            visited += 1;
            r - l + 1 >= 4 // only descend through wide spans
        });
        // Root span always visited; narrow subtrees are cut off.
        assert!(visited < values.len());
        assert!(visited >= 1);
    }

    #[test]
    fn spans_partition_under_pruning_threshold() {
        // With no pruning, spans of the visit are exactly the Algorithm-2
        // recursion: each node's span minus its children's spans is {c}.
        let values = [4u64, 0, 6, 2, 8, 1, 3];
        let tree = CartesianTree::new(&values);
        let mut spans = Vec::new();
        tree.visit_spans(|l, c, r| {
            spans.push((l, c, r));
            true
        });
        // Every sequence [i,j] must be covered by exactly one (l,c,r) with
        // l <= i <= c <= j <= r.
        let n = values.len();
        for i in 0..n {
            for j in i..n {
                let covering = spans
                    .iter()
                    .filter(|&&(l, c, r)| l <= i && i <= c && c <= j && j <= r)
                    .count();
                assert_eq!(covering, 1, "sequence [{i},{j}] covered {covering} times");
            }
        }
    }
}
