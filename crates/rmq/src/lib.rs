//! Range-minimum-query (RMQ) structures for compact-window generation.
//!
//! The divide-and-conquer compact-window generator (paper Algorithm 2, line
//! 2) repeatedly asks: *which position in `[l, r]` holds the smallest token
//! hash value?* ALIGN answered this with a segment tree (`O(log n)` per
//! query); the paper notes that advanced RMQ structures bring the whole
//! generation down to `O(n)` time and space. This crate provides three
//! interchangeable answers behind the [`RangeArgmin`] trait:
//!
//! * [`SparseTable`] — the classic `O(n log n)`-space, `O(1)`-query doubling
//!   table. Simple and branch-light; the reference implementation.
//! * [`BlockRmq`] — a block-decomposed structure with `O(n)` space: block
//!   minima are indexed by a sparse table, in-block queries scan at most two
//!   short blocks. Queries are `O(b)` for a small constant block size, which
//!   in practice beats the big-O-optimal structures on token-hash arrays.
//! * [`CartesianTree`] — a linear-time stack-built Cartesian tree. Its
//!   structure *is* the recursion tree of Algorithm 2, so window generation
//!   can walk it directly without issuing point queries at all; it also
//!   underlies the textbook `O(n)`/`O(1)` RMQ reduction.
//!
//! All structures break ties toward the **leftmost** minimum so that window
//! generation is deterministic (the paper allows arbitrary tie-breaks).
//!
//! # Example
//!
//! ```
//! use ndss_rmq::{RangeArgmin, SparseTable, BlockRmq};
//!
//! let values = [5u64, 3, 9, 3, 7];
//! let st = SparseTable::new(&values);
//! let bl = BlockRmq::new(&values);
//! assert_eq!(st.argmin(0, 4), 1); // leftmost of the two 3s
//! assert_eq!(bl.argmin(2, 4), 3);
//! ```

pub mod block;
pub mod cartesian;
pub mod sparse;

pub use block::BlockRmq;
pub use cartesian::CartesianTree;
pub use sparse::SparseTable;

/// A structure answering *arg-min* queries over a fixed array.
///
/// `argmin(l, r)` returns the index of the minimum value in the **inclusive**
/// range `[l, r]`, choosing the leftmost index on ties. Implementations may
/// assume `l <= r < len` and should panic otherwise.
pub trait RangeArgmin {
    /// The length of the underlying array.
    fn len(&self) -> usize;

    /// Whether the underlying array is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Index of the leftmost minimum value in `[l, r]` (inclusive).
    fn argmin(&self, l: usize, r: usize) -> usize;
}

/// Reference implementation: a linear scan. Used by tests as ground truth
/// and by callers with very short arrays where building a structure is not
/// worth it.
#[derive(Debug, Clone)]
pub struct NaiveArgmin<'a> {
    values: &'a [u64],
}

impl<'a> NaiveArgmin<'a> {
    /// Wraps a value slice without any preprocessing.
    pub fn new(values: &'a [u64]) -> Self {
        Self { values }
    }
}

impl RangeArgmin for NaiveArgmin<'_> {
    fn len(&self) -> usize {
        self.values.len()
    }

    fn argmin(&self, l: usize, r: usize) -> usize {
        assert!(
            l <= r && r < self.values.len(),
            "argmin range out of bounds"
        );
        let mut best = l;
        for i in l + 1..=r {
            if self.values[i] < self.values[best] {
                best = i;
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn naive_picks_leftmost_tie() {
        let v = [2u64, 1, 1, 3];
        let n = NaiveArgmin::new(&v);
        assert_eq!(n.argmin(0, 3), 1);
        assert_eq!(n.argmin(2, 3), 2);
    }

    #[test]
    fn naive_single_element() {
        let v = [7u64];
        let n = NaiveArgmin::new(&v);
        assert_eq!(n.argmin(0, 0), 0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn naive_rejects_bad_range() {
        let v = [1u64, 2];
        NaiveArgmin::new(&v).argmin(0, 2);
    }
}
