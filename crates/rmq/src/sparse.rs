//! Sparse-table RMQ: `O(n log n)` preprocessing, `O(1)` queries.
//!
//! Level `j` of the table stores, for every position `i`, the index of the
//! minimum in the window `[i, i + 2^j - 1]`. A query `[l, r]` combines the
//! two (possibly overlapping) windows of length `2^⌊log₂(r-l+1)⌋` anchored at
//! `l` and at `r - 2^j + 1`. Ties resolve to the leftmost index because the
//! left window's candidate is preferred on equality and each level is built
//! left-candidate-first.

use crate::RangeArgmin;

/// A doubling sparse table over a copied value array.
#[derive(Debug, Clone)]
pub struct SparseTable {
    values: Vec<u64>,
    /// `table[j][i]` = index of the leftmost min in `[i, i + 2^j - 1]`.
    /// Level 0 is implicit (the identity), so `table[0]` here is level 1.
    levels: Vec<Vec<u32>>,
}

impl SparseTable {
    /// Builds the table. `O(n log n)` time and space.
    pub fn new(values: &[u64]) -> Self {
        let n = values.len();
        let values = values.to_vec();
        let mut levels: Vec<Vec<u32>> = Vec::new();
        if n >= 2 {
            // Level 1: windows of length 2.
            let mut lvl: Vec<u32> = Vec::with_capacity(n - 1);
            for i in 0..n - 1 {
                lvl.push(if values[i + 1] < values[i] {
                    (i + 1) as u32
                } else {
                    i as u32
                });
            }
            levels.push(lvl);
            let mut width = 2usize;
            while width * 2 <= n {
                let prev = levels.last().expect("at least one level exists");
                let count = n - width * 2 + 1;
                let mut lvl = Vec::with_capacity(count);
                for i in 0..count {
                    let a = prev[i];
                    let b = prev[i + width];
                    lvl.push(if values[b as usize] < values[a as usize] {
                        b
                    } else {
                        a
                    });
                }
                levels.push(lvl);
                width *= 2;
            }
        }
        Self { values, levels }
    }

    /// The underlying values.
    pub fn values(&self) -> &[u64] {
        &self.values
    }
}

impl RangeArgmin for SparseTable {
    fn len(&self) -> usize {
        self.values.len()
    }

    #[inline]
    fn argmin(&self, l: usize, r: usize) -> usize {
        assert!(
            l <= r && r < self.values.len(),
            "argmin range out of bounds"
        );
        if l == r {
            return l;
        }
        let span = r - l + 1;
        // j = ⌊log2(span)⌋ ≥ 1; levels[j-1] holds windows of width 2^j.
        let j = (usize::BITS - 1 - span.leading_zeros()) as usize;
        let level = &self.levels[j - 1];
        let a = level[l] as usize;
        let b = level[r + 1 - (1 << j)] as usize;
        // Prefer the left window's candidate on ties; when the windows
        // overlap and b < a positionally we still must compare values first.
        if self.values[b] < self.values[a] || (self.values[b] == self.values[a] && b < a) {
            b
        } else {
            a
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NaiveArgmin;

    fn check_all_ranges(values: &[u64]) {
        let st = SparseTable::new(values);
        let naive = NaiveArgmin::new(values);
        for l in 0..values.len() {
            for r in l..values.len() {
                assert_eq!(
                    st.argmin(l, r),
                    naive.argmin(l, r),
                    "mismatch on [{l},{r}] over {values:?}"
                );
            }
        }
    }

    #[test]
    fn matches_naive_on_small_arrays() {
        check_all_ranges(&[5, 3, 9, 3, 7]);
        check_all_ranges(&[1]);
        check_all_ranges(&[2, 2, 2, 2]);
        check_all_ranges(&[9, 8, 7, 6, 5, 4, 3, 2, 1]);
        check_all_ranges(&[1, 2, 3, 4, 5, 6, 7, 8, 9]);
    }

    #[test]
    fn matches_naive_on_pseudorandom_array() {
        // Deterministic pseudo-random values with plenty of ties.
        let values: Vec<u64> = (0..257u64)
            .map(|i| (i.wrapping_mul(2654435761) >> 7) % 16)
            .collect();
        check_all_ranges(&values);
    }

    #[test]
    fn empty_table_is_empty() {
        let st = SparseTable::new(&[]);
        assert!(st.is_empty());
    }

    #[test]
    fn power_of_two_lengths() {
        for n in [2usize, 4, 8, 16, 32, 64] {
            let values: Vec<u64> = (0..n as u64).map(|i| i.wrapping_mul(37) % 11).collect();
            check_all_ranges(&values);
        }
    }

    #[test]
    fn leftmost_tie_break_on_full_range() {
        let values = [4u64, 1, 6, 1, 1, 9];
        let st = SparseTable::new(&values);
        assert_eq!(st.argmin(0, 5), 1);
        assert_eq!(st.argmin(2, 5), 3);
        assert_eq!(st.argmin(3, 4), 3);
    }
}
