//! Minimal blocking clients for both protocols — enough for the CLI, the
//! integration tests, and the latency bench to drive a server without any
//! external HTTP library.

use std::io::{self, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use crate::frame::{self, SearchRequest, SearchResponse};

/// One HTTP response.
#[derive(Debug)]
pub struct HttpResponse {
    /// Status code (`200`, `429`, …).
    pub status: u16,
    /// Response body bytes.
    pub body: Vec<u8>,
}

impl HttpResponse {
    /// Body as UTF-8 (lossy — server bodies are JSON or Prometheus text).
    pub fn text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

/// A keep-alive HTTP/1.1 connection to a server.
pub struct HttpClient {
    stream: TcpStream,
}

impl HttpClient {
    /// Connects; `timeout` bounds each read and write.
    pub fn connect(addr: impl ToSocketAddrs, timeout: Duration) -> io::Result<Self> {
        let addr = addr
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "no address"))?;
        let stream = TcpStream::connect_timeout(&addr, timeout)?;
        stream.set_read_timeout(Some(timeout))?;
        stream.set_write_timeout(Some(timeout))?;
        stream.set_nodelay(true)?;
        Ok(HttpClient { stream })
    }

    /// Sends one request and reads the response. `body = b""` sends no
    /// payload but still advertises `Content-Length: 0` on POST.
    pub fn request(&mut self, method: &str, path: &str, body: &[u8]) -> io::Result<HttpResponse> {
        let head = format!(
            "{method} {path} HTTP/1.1\r\nhost: ndss\r\ncontent-length: {}\r\ncontent-type: application/json\r\n\r\n",
            body.len()
        );
        self.stream.write_all(head.as_bytes())?;
        self.stream.write_all(body)?;
        self.stream.flush()?;
        read_http_response(&mut self.stream)
    }
}

/// Reads one `HTTP/1.1` response with a `Content-Length` body (all this
/// server emits).
fn read_http_response(stream: &mut impl Read) -> io::Result<HttpResponse> {
    let mut head = Vec::with_capacity(256);
    let mut byte = [0u8; 1];
    loop {
        match stream.read(&mut byte) {
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "eof inside response head",
                ))
            }
            Ok(_) => {
                head.push(byte[0]);
                if head.ends_with(b"\r\n\r\n") {
                    break;
                }
                if head.len() > 64 * 1024 {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        "response head too large",
                    ));
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    let head = String::from_utf8_lossy(&head);
    let mut lines = head.split("\r\n");
    let status_line = lines.next().unwrap_or("");
    let status = status_line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("bad status line {status_line:?}"),
            )
        })?;
    let mut content_length = 0usize;
    for line in lines {
        if let Some((name, value)) = line.split_once(':') {
            if name.trim().eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().map_err(|_| {
                    io::Error::new(io::ErrorKind::InvalidData, "bad content-length")
                })?;
            }
        }
    }
    let mut body = vec![0u8; content_length];
    let mut filled = 0;
    while filled < body.len() {
        match stream.read(&mut body[filled..]) {
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "eof inside response body",
                ))
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    Ok(HttpResponse { status, body })
}

/// A connection speaking the NDSB binary framing.
pub struct FrameClient {
    stream: TcpStream,
}

impl FrameClient {
    /// Connects; `timeout` bounds each read and write.
    pub fn connect(addr: impl ToSocketAddrs, timeout: Duration) -> io::Result<Self> {
        let addr = addr
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "no address"))?;
        let stream = TcpStream::connect_timeout(&addr, timeout)?;
        stream.set_read_timeout(Some(timeout))?;
        stream.set_write_timeout(Some(timeout))?;
        stream.set_nodelay(true)?;
        Ok(FrameClient { stream })
    }

    /// Round-trips one search. The outer `io::Result` is transport
    /// failure; the inner `Result` is the server's verdict (`Err` carries
    /// the status byte and message, e.g. `STATUS_OVERLOADED`).
    #[allow(clippy::result_large_err)]
    pub fn search(
        &mut self,
        request: &SearchRequest,
    ) -> io::Result<Result<SearchResponse, (u8, String)>> {
        frame::write_frame(&mut self.stream, &frame::encode_search_request(request))?;
        let payload = self.read_payload()?;
        Ok(frame::decode_search_response(&payload))
    }

    /// Round-trips a ping; returns the status byte.
    pub fn ping(&mut self) -> io::Result<u8> {
        frame::write_frame(&mut self.stream, &[frame::OP_PING])?;
        let payload = self.read_payload()?;
        Ok(payload.first().copied().unwrap_or(frame::STATUS_INTERNAL))
    }

    fn read_payload(&mut self) -> io::Result<Vec<u8>> {
        loop {
            match frame::read_frame(&mut self.stream)? {
                frame::FrameOutcome::Payload(p) => return Ok(p),
                frame::FrameOutcome::Idle => continue,
                frame::FrameOutcome::Closed => {
                    return Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "server closed the connection",
                    ))
                }
                frame::FrameOutcome::Malformed(m) => {
                    return Err(io::Error::new(io::ErrorKind::InvalidData, m))
                }
            }
        }
    }
}
