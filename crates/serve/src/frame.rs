//! The length-prefixed binary protocol for batch clients.
//!
//! Evaluation harnesses stream thousands of queries per connection; JSON
//! encode/decode would dominate their wall time. The binary framing is a
//! fixed 8-byte header (`NDSB` magic + little-endian payload length)
//! followed by an opcode-tagged payload, so a client can pipeline requests
//! and read responses in order. Both protocols share one port: the server
//! peeks the first four bytes of a connection and dispatches on the magic.
//!
//! Wire layout (all integers little-endian):
//!
//! ```text
//! frame     := "NDSB" len:u32 payload[len]
//! request   := op:u8 …                       op 1 = search, 2 = ping
//! search    := theta:f64 deadline_ms:u64 top:u32 ntokens:u32 token:u32 …
//! response  := status:u8 …                   status 0 = ok
//! ok        := complete:u8 generation:u64 beta:u32 total_seqs:u64
//!              nmatches:u32 match …
//! match     := text:u32 collisions:u32 nspans:u32 (start:u32 end:u32) …
//! error     := message (UTF-8, rest of payload)   status 1 = overloaded,
//!              2 = bad request, 3 = internal, 4 = shutting down
//! degraded  := ok-body ndegraded:u32 dshard …     status 5: a *valid*
//!              partial search response whose listed shard ranges went
//!              unsearched (quarantined shards)
//! dshard    := shard:u32 first_text:u32 num_texts:u64 kind:u8
//!              reason_len:u32 reason (UTF-8)
//! pong      := status 0, empty payload tail
//! ```

use std::io::{self, Read, Write};

/// First bytes of every frame — also the protocol discriminator at accept.
pub const MAGIC: [u8; 4] = *b"NDSB";

/// Upper bound on a frame payload (queries are token-id lists; 64 MiB is
/// ~16M tokens, far beyond any sane query).
pub const MAX_PAYLOAD: usize = 64 << 20;

/// Request opcodes.
pub const OP_SEARCH: u8 = 1;
/// Liveness probe; answered with an empty OK frame.
pub const OP_PING: u8 = 2;

/// Response status codes.
pub const STATUS_OK: u8 = 0;
/// Shed by admission control; retry against a less-loaded replica.
pub const STATUS_OVERLOADED: u8 = 1;
/// The request itself was invalid (bad opcode, empty query, bad θ).
pub const STATUS_BAD_REQUEST: u8 = 2;
/// The query failed server-side (index error, IO).
pub const STATUS_INTERNAL: u8 = 3;
/// The server is draining; no further requests will be admitted.
pub const STATUS_SHUTTING_DOWN: u8 = 4;
/// A **successful but partial** search response: one or more shards are
/// quarantined and their text ranges went unsearched. The payload is a
/// full search-response body (`complete = 0`) followed by the degraded
/// shard ranges — unlike statuses 1–4 this is a decodable result, not an
/// error.
pub const STATUS_DEGRADED: u8 = 5;

/// A decoded binary search request.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchRequest {
    pub theta: f64,
    /// Per-request deadline in milliseconds; `0` means "server default".
    pub deadline_ms: u64,
    /// Matches to return, best-first; `0` means all.
    pub top: u32,
    pub query: Vec<u32>,
}

/// One match in a binary search response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireMatch {
    pub text: u32,
    pub collisions: u32,
    /// Merged disjoint `[start, end]` token spans.
    pub spans: Vec<(u32, u32)>,
}

/// One quarantined shard range in a degraded response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireDegraded {
    /// Shard ordinal in the manifest.
    pub shard: u32,
    /// First global text id the shard owns.
    pub first_text: u32,
    /// Number of texts the shard owns (all unsearched).
    pub num_texts: u64,
    /// Fault taxonomy: 0 transient, 1 corruption, 2 permanent.
    pub kind: u8,
    /// Human-readable cause.
    pub reason: String,
}

/// A decoded binary search response.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchResponse {
    pub complete: bool,
    /// Generation serving the query (`0` for a plain index directory).
    pub generation: u64,
    pub beta: u32,
    pub total_sequences: u64,
    pub matches: Vec<WireMatch>,
    /// Quarantined shard ranges this response does not cover; non-empty
    /// exactly when the frame carried [`STATUS_DEGRADED`].
    pub degraded: Vec<WireDegraded>,
}

/// What a frame read produced.
#[derive(Debug)]
pub enum FrameOutcome {
    Payload(Vec<u8>),
    /// Clean EOF at a frame boundary.
    Closed,
    /// Read timeout with no bytes consumed.
    Idle,
    /// Bad magic, oversized payload, or a mid-frame stall.
    Malformed(String),
}

/// Reads one frame payload, honoring the stream's read timeout (same
/// idle/stall semantics as [`crate::http::read_request`]).
pub fn read_frame(stream: &mut impl Read) -> io::Result<FrameOutcome> {
    let mut header = [0u8; 8];
    let mut filled = 0;
    while filled < header.len() {
        match stream.read(&mut header[filled..]) {
            Ok(0) => {
                return Ok(if filled == 0 {
                    FrameOutcome::Closed
                } else {
                    FrameOutcome::Malformed("eof inside frame header".into())
                });
            }
            Ok(n) => filled += n,
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                return Ok(if filled == 0 {
                    FrameOutcome::Idle
                } else {
                    FrameOutcome::Malformed("peer stalled inside frame header".into())
                });
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    if header[..4] != MAGIC {
        return Ok(FrameOutcome::Malformed(format!(
            "bad frame magic {:02x?}",
            &header[..4]
        )));
    }
    let len = u32::from_le_bytes(header[4..8].try_into().unwrap()) as usize;
    if len > MAX_PAYLOAD {
        return Ok(FrameOutcome::Malformed(format!(
            "frame payload of {len} bytes exceeds the {MAX_PAYLOAD}-byte limit"
        )));
    }
    let mut payload = vec![0u8; len];
    let mut filled = 0;
    while filled < len {
        match stream.read(&mut payload[filled..]) {
            Ok(0) => return Ok(FrameOutcome::Malformed("eof inside frame payload".into())),
            Ok(n) => filled += n,
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                return Ok(FrameOutcome::Malformed(
                    "peer stalled inside frame payload".into(),
                ));
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    Ok(FrameOutcome::Payload(payload))
}

/// Writes one frame around `payload`.
pub fn write_frame(stream: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    debug_assert!(payload.len() <= MAX_PAYLOAD);
    let mut buf = Vec::with_capacity(8 + payload.len());
    buf.extend_from_slice(&MAGIC);
    buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    buf.extend_from_slice(payload);
    stream.write_all(&buf)?;
    stream.flush()
}

/// A cursor with bounds-checked little-endian readers.
struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.bytes.len())
            .ok_or("truncated payload")?;
        let slice = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(slice)
    }
    fn u8(&mut self) -> Result<u8, String> {
        Ok(self.take(1)?[0])
    }
    fn u32(&mut self) -> Result<u32, String> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
    fn u64(&mut self) -> Result<u64, String> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    fn f64(&mut self) -> Result<f64, String> {
        Ok(f64::from_bits(self.u64()?))
    }
}

/// Encodes a search request payload (client side; the bench and tests use
/// this too).
pub fn encode_search_request(req: &SearchRequest) -> Vec<u8> {
    let mut out = Vec::with_capacity(1 + 8 + 8 + 4 + 4 + 4 * req.query.len());
    out.push(OP_SEARCH);
    out.extend_from_slice(&req.theta.to_bits().to_le_bytes());
    out.extend_from_slice(&req.deadline_ms.to_le_bytes());
    out.extend_from_slice(&req.top.to_le_bytes());
    out.extend_from_slice(&(req.query.len() as u32).to_le_bytes());
    for &token in &req.query {
        out.extend_from_slice(&token.to_le_bytes());
    }
    out
}

/// Decoded request payload: either a search or a ping.
#[derive(Debug)]
pub enum RequestPayload {
    Search(SearchRequest),
    Ping,
}

/// Decodes a request payload (server side).
pub fn decode_request(payload: &[u8]) -> Result<RequestPayload, String> {
    let mut r = Reader {
        bytes: payload,
        pos: 0,
    };
    match r.u8()? {
        OP_PING => Ok(RequestPayload::Ping),
        OP_SEARCH => {
            let theta = r.f64()?;
            let deadline_ms = r.u64()?;
            let top = r.u32()?;
            let ntokens = r.u32()? as usize;
            if ntokens > (payload.len() - r.pos) / 4 + 1 {
                return Err(format!("token count {ntokens} exceeds payload"));
            }
            let mut query = Vec::with_capacity(ntokens);
            for _ in 0..ntokens {
                query.push(r.u32()?);
            }
            if r.pos != payload.len() {
                return Err("trailing bytes after search request".into());
            }
            Ok(RequestPayload::Search(SearchRequest {
                theta,
                deadline_ms,
                top,
                query,
            }))
        }
        other => Err(format!("unknown opcode {other}")),
    }
}

/// Encodes a search response (server side): [`STATUS_OK`] when every
/// shard answered, [`STATUS_DEGRADED`] (with the quarantined ranges
/// appended) when some did not.
pub fn encode_search_response(resp: &SearchResponse) -> Vec<u8> {
    let mut out = Vec::with_capacity(64 + resp.matches.len() * 16);
    out.push(if resp.degraded.is_empty() {
        STATUS_OK
    } else {
        STATUS_DEGRADED
    });
    out.push(resp.complete as u8);
    out.extend_from_slice(&resp.generation.to_le_bytes());
    out.extend_from_slice(&resp.beta.to_le_bytes());
    out.extend_from_slice(&resp.total_sequences.to_le_bytes());
    out.extend_from_slice(&(resp.matches.len() as u32).to_le_bytes());
    for m in &resp.matches {
        out.extend_from_slice(&m.text.to_le_bytes());
        out.extend_from_slice(&m.collisions.to_le_bytes());
        out.extend_from_slice(&(m.spans.len() as u32).to_le_bytes());
        for &(start, end) in &m.spans {
            out.extend_from_slice(&start.to_le_bytes());
            out.extend_from_slice(&end.to_le_bytes());
        }
    }
    if !resp.degraded.is_empty() {
        out.extend_from_slice(&(resp.degraded.len() as u32).to_le_bytes());
        for d in &resp.degraded {
            out.extend_from_slice(&d.shard.to_le_bytes());
            out.extend_from_slice(&d.first_text.to_le_bytes());
            out.extend_from_slice(&d.num_texts.to_le_bytes());
            out.push(d.kind);
            out.extend_from_slice(&(d.reason.len() as u32).to_le_bytes());
            out.extend_from_slice(d.reason.as_bytes());
        }
    }
    out
}

/// Encodes an error response with a short operator-facing message.
pub fn encode_error(status: u8, message: &str) -> Vec<u8> {
    let mut out = Vec::with_capacity(1 + message.len());
    out.push(status);
    out.extend_from_slice(message.as_bytes());
    out
}

/// A decoded response payload: `Ok` for [`STATUS_OK`] **and**
/// [`STATUS_DEGRADED`] (the latter carries its quarantined ranges in
/// [`SearchResponse::degraded`]); otherwise the status and message
/// (client side).
#[allow(clippy::result_large_err)]
pub fn decode_search_response(payload: &[u8]) -> Result<SearchResponse, (u8, String)> {
    let malformed = |m: String| (STATUS_INTERNAL, format!("undecodable response: {m}"));
    let mut r = Reader {
        bytes: payload,
        pos: 0,
    };
    let status = r.u8().map_err(malformed)?;
    if status != STATUS_OK && status != STATUS_DEGRADED {
        let message = String::from_utf8_lossy(&payload[1..]).into_owned();
        return Err((status, message));
    }
    let inner = |mut r: Reader<'_>| -> Result<SearchResponse, String> {
        let complete = r.u8()? != 0;
        let generation = r.u64()?;
        let beta = r.u32()?;
        let total_sequences = r.u64()?;
        let nmatches = r.u32()? as usize;
        let mut matches = Vec::with_capacity(nmatches.min(1 << 16));
        for _ in 0..nmatches {
            let text = r.u32()?;
            let collisions = r.u32()?;
            let nspans = r.u32()? as usize;
            let mut spans = Vec::with_capacity(nspans.min(1 << 16));
            for _ in 0..nspans {
                spans.push((r.u32()?, r.u32()?));
            }
            matches.push(WireMatch {
                text,
                collisions,
                spans,
            });
        }
        let mut degraded = Vec::new();
        if status == STATUS_DEGRADED {
            let ndegraded = r.u32()? as usize;
            for _ in 0..ndegraded {
                let shard = r.u32()?;
                let first_text = r.u32()?;
                let num_texts = r.u64()?;
                let kind = r.u8()?;
                let reason_len = r.u32()? as usize;
                let reason = String::from_utf8_lossy(r.take(reason_len)?).into_owned();
                degraded.push(WireDegraded {
                    shard,
                    first_text,
                    num_texts,
                    kind,
                    reason,
                });
            }
        }
        Ok(SearchResponse {
            complete,
            generation,
            beta,
            total_sequences,
            matches,
            degraded,
        })
    };
    inner(r).map_err(malformed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn search_request_round_trips() {
        let req = SearchRequest {
            theta: 0.85,
            deadline_ms: 250,
            top: 10,
            query: vec![1, 2, 3, u32::MAX],
        };
        let payload = encode_search_request(&req);
        match decode_request(&payload).unwrap() {
            RequestPayload::Search(got) => assert_eq!(got, req),
            other => panic!("wrong payload: {other:?}"),
        }
    }

    #[test]
    fn search_response_round_trips() {
        let resp = SearchResponse {
            complete: true,
            generation: 7,
            beta: 13,
            total_sequences: 99,
            matches: vec![WireMatch {
                text: 4,
                collisions: 15,
                spans: vec![(10, 90), (120, 200)],
            }],
            degraded: Vec::new(),
        };
        let encoded = encode_search_response(&resp);
        assert_eq!(encoded[0], STATUS_OK);
        let got = decode_search_response(&encoded).unwrap();
        assert_eq!(got, resp);
    }

    /// A response with quarantined ranges rides STATUS_DEGRADED and
    /// round-trips the ranges; clients decode it as a result, not an
    /// error.
    #[test]
    fn degraded_response_round_trips() {
        let resp = SearchResponse {
            complete: false,
            generation: 3,
            beta: 9,
            total_sequences: 12,
            matches: vec![WireMatch {
                text: 2,
                collisions: 9,
                spans: vec![(0, 40)],
            }],
            degraded: vec![WireDegraded {
                shard: 1,
                first_text: 500,
                num_texts: 500,
                kind: 1,
                reason: "malformed index: checksum mismatch".into(),
            }],
        };
        let encoded = encode_search_response(&resp);
        assert_eq!(encoded[0], STATUS_DEGRADED);
        let got = decode_search_response(&encoded).unwrap();
        assert_eq!(got, resp);
    }

    #[test]
    fn frames_round_trip_and_reject_bad_magic() {
        let mut wire = Vec::new();
        write_frame(&mut wire, b"hello").unwrap();
        let mut cursor = std::io::Cursor::new(&wire[..]);
        match read_frame(&mut cursor).unwrap() {
            FrameOutcome::Payload(p) => assert_eq!(p, b"hello"),
            other => panic!("wrong outcome: {other:?}"),
        }
        assert!(matches!(
            read_frame(&mut cursor).unwrap(),
            FrameOutcome::Closed
        ));

        let mut bad = std::io::Cursor::new(&b"HTTP/1.1 nope"[..]);
        assert!(matches!(
            read_frame(&mut bad).unwrap(),
            FrameOutcome::Malformed(_)
        ));
    }

    #[test]
    fn errors_carry_status_and_message() {
        let payload = encode_error(STATUS_OVERLOADED, "shed");
        let err = decode_search_response(&payload).unwrap_err();
        assert_eq!(err.0, STATUS_OVERLOADED);
        assert_eq!(err.1, "shed");
    }
}
