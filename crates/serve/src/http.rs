//! A vendored, minimal HTTP/1.1 server-side codec.
//!
//! The build environment is offline (no hyper, no async runtime), and the
//! server only needs the subset a metrics scraper and a JSON search client
//! exercise: request line + headers + `Content-Length` bodies, keep-alive
//! by default, `Connection: close` honored, bounded header/body sizes.
//! Chunked transfer encoding, trailers, upgrades, and HTTP/2 are out of
//! scope and rejected explicitly.

use std::io::{self, Read, Write};

/// Upper bound on the request head (request line + headers).
pub const MAX_HEAD_BYTES: usize = 16 * 1024;

/// One parsed HTTP request.
#[derive(Debug)]
pub struct Request {
    /// Uppercase method (`GET`, `POST`, …).
    pub method: String,
    /// Request target as sent (path + optional query string).
    pub path: String,
    /// Header names lowercased; values trimmed.
    pub headers: Vec<(String, String)>,
    /// The body (empty unless `Content-Length` was given).
    pub body: Vec<u8>,
}

impl Request {
    /// First value of `name` (lowercase), if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// Whether the client asked to close the connection after this
    /// exchange.
    pub fn wants_close(&self) -> bool {
        self.header("connection")
            .is_some_and(|v| v.eq_ignore_ascii_case("close"))
    }

    /// The path without any query string.
    pub fn route(&self) -> &str {
        self.path.split('?').next().unwrap_or(&self.path)
    }
}

/// Why a read did not produce a request.
#[derive(Debug)]
pub enum ReadOutcome {
    /// A complete request.
    Request(Request),
    /// The peer closed the connection cleanly between requests.
    Closed,
    /// The read timed out with no bytes consumed (idle keep-alive poll —
    /// safe to retry or shut down).
    Idle,
    /// The peer sent something unparseable; the caller should answer 400
    /// and close. The string is a short operator-facing reason.
    Malformed(String),
}

/// Reads one request from `stream`, honoring its read timeout. A timeout
/// that fires *mid-request* is malformed (the peer stalled); a timeout
/// before the first byte is [`ReadOutcome::Idle`].
pub fn read_request(stream: &mut impl Read, max_body: usize) -> io::Result<ReadOutcome> {
    // Accumulate the head byte-by-byte boundary scanning on \r\n\r\n.
    // Head sizes are tiny; this reads in small chunks for simplicity and
    // never over-reads into the body.
    let mut head = Vec::with_capacity(512);
    let mut byte = [0u8; 1];
    loop {
        match stream.read(&mut byte) {
            Ok(0) => {
                return Ok(if head.is_empty() {
                    ReadOutcome::Closed
                } else {
                    ReadOutcome::Malformed("eof inside request head".into())
                });
            }
            Ok(_) => {
                head.push(byte[0]);
                if head.len() > MAX_HEAD_BYTES {
                    return Ok(ReadOutcome::Malformed("request head too large".into()));
                }
                if head.ends_with(b"\r\n\r\n") {
                    break;
                }
            }
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                return Ok(if head.is_empty() {
                    ReadOutcome::Idle
                } else {
                    ReadOutcome::Malformed("peer stalled inside request head".into())
                });
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }

    let head = match std::str::from_utf8(&head) {
        Ok(s) => s,
        Err(_) => return Ok(ReadOutcome::Malformed("request head is not UTF-8".into())),
    };
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split(' ');
    let (Some(method), Some(path), Some(version)) = (parts.next(), parts.next(), parts.next())
    else {
        return Ok(ReadOutcome::Malformed(format!(
            "bad request line: {request_line:?}"
        )));
    };
    if !version.starts_with("HTTP/1.") {
        return Ok(ReadOutcome::Malformed(format!(
            "unsupported version {version:?}"
        )));
    }

    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let Some((name, value)) = line.split_once(':') else {
            return Ok(ReadOutcome::Malformed(format!("bad header line {line:?}")));
        };
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }
    let mut request = Request {
        method: method.to_string(),
        path: path.to_string(),
        headers,
        body: Vec::new(),
    };

    if request
        .header("transfer-encoding")
        .is_some_and(|v| !v.eq_ignore_ascii_case("identity"))
    {
        return Ok(ReadOutcome::Malformed(
            "chunked transfer encoding unsupported".into(),
        ));
    }
    if let Some(raw) = request.header("content-length") {
        let Ok(len) = raw.parse::<usize>() else {
            return Ok(ReadOutcome::Malformed(format!(
                "bad content-length {raw:?}"
            )));
        };
        if len > max_body {
            return Ok(ReadOutcome::Malformed(format!(
                "body of {len} bytes exceeds the {max_body}-byte limit"
            )));
        }
        let mut body = vec![0u8; len];
        if let Err(e) = read_exact_retrying(stream, &mut body) {
            if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut {
                return Ok(ReadOutcome::Malformed("peer stalled inside body".into()));
            }
            return Err(e);
        }
        request.body = body;
    }
    Ok(ReadOutcome::Request(request))
}

/// `read_exact` that retries `EINTR` (std's does) and partial reads across
/// socket timeslices, but surfaces timeouts to the caller.
fn read_exact_retrying(stream: &mut impl Read, buf: &mut [u8]) -> io::Result<()> {
    let mut filled = 0;
    while filled < buf.len() {
        match stream.read(&mut buf[filled..]) {
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "eof inside body",
                ))
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

/// Writes one response. `close` adds `Connection: close`; otherwise the
/// connection stays usable for the next request.
pub fn write_response(
    stream: &mut impl Write,
    status: u16,
    reason: &str,
    content_type: &str,
    body: &[u8],
    close: bool,
) -> io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {status} {reason}\r\ncontent-type: {content_type}\r\ncontent-length: {}\r\n",
        body.len()
    );
    if close {
        head.push_str("connection: close\r\n");
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(body)?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_post_with_body_and_keepalive_get() {
        let raw = b"POST /search HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\n\r\nabcdGET /healthz?v=1 HTTP/1.1\r\n\r\n";
        let mut cursor = io::Cursor::new(&raw[..]);
        let ReadOutcome::Request(first) = read_request(&mut cursor, 1024).unwrap() else {
            panic!("expected a request");
        };
        assert_eq!(first.method, "POST");
        assert_eq!(first.route(), "/search");
        assert_eq!(first.body, b"abcd");
        assert!(!first.wants_close());
        let ReadOutcome::Request(second) = read_request(&mut cursor, 1024).unwrap() else {
            panic!("expected a second pipelined request");
        };
        assert_eq!(second.method, "GET");
        assert_eq!(second.route(), "/healthz");
        assert!(matches!(
            read_request(&mut cursor, 1024).unwrap(),
            ReadOutcome::Closed
        ));
    }

    #[test]
    fn rejects_oversized_and_malformed() {
        let mut cursor = io::Cursor::new(&b"POST / HTTP/1.1\r\nContent-Length: 99\r\n\r\n"[..]);
        assert!(matches!(
            read_request(&mut cursor, 10).unwrap(),
            ReadOutcome::Malformed(_)
        ));
        let mut cursor = io::Cursor::new(&b"NOT HTTP\r\n\r\n"[..]);
        assert!(matches!(
            read_request(&mut cursor, 10).unwrap(),
            ReadOutcome::Malformed(_)
        ));
    }

    #[test]
    fn response_wire_format() {
        let mut out = Vec::new();
        write_response(&mut out, 200, "OK", "text/plain", b"hi", true).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("content-length: 2\r\n"));
        assert!(text.contains("connection: close\r\n"));
        assert!(text.ends_with("\r\n\r\nhi"));
    }
}
