//! Network front door for near-duplicate sequence search.
//!
//! `ndss-serve` turns a [`ndss_query::ServingIndex`] into a long-running
//! daemon. One listen port speaks two protocols, distinguished by peeking
//! the first four bytes of each connection:
//!
//! - **HTTP/1.1** (vendored codec in [`http`], no external dependencies):
//!   `POST /search` (JSON in/out), `GET /metrics` (Prometheus text from
//!   the global [`ndss_obs::Registry`]), `GET /healthz`, `POST /reload`
//!   (re-resolve `CURRENT` and hot-swap), `POST /shutdown` (graceful
//!   drain).
//! - **NDSB** length-prefixed binary framing ([`frame`]) for batch
//!   clients: magic `NDSB`, little-endian length, opcode payloads.
//!
//! Admission feeds the same governance the batch engine uses: a bounded
//! connection pool, an `admission_cap` on concurrently executing
//! searches (beyond it requests are shed with HTTP 429 /
//! `STATUS_OVERLOADED` — never queued unboundedly), and a per-request
//! [`ndss_query::QueryBudget`] deadline so slow work degrades into sound
//! partial results instead of pile-ups. Drain (SIGTERM, `/shutdown`, or
//! [`ServerHandle::shutdown`]) stops accepting, finishes every in-flight
//! request on its pinned snapshot, flushes metrics, and returns.

pub mod client;
pub mod frame;
pub mod http;
mod prober;
mod server;

pub use server::{
    DrainReport, IngestServeConfig, RunningServer, ServeConfig, Server, ServerHandle,
};

/// Default listen address for `ndss serve`.
pub const DEFAULT_ADDR: &str = "127.0.0.1:7700";

/// Why the server could not start or crashed.
#[derive(Debug)]
pub enum ServeError {
    /// Socket-level failure (bind, accept).
    Io(std::io::Error),
    /// The index could not be opened.
    Query(ndss_query::QueryError),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Io(e) => write!(f, "server io error: {e}"),
            ServeError::Query(e) => write!(f, "index error: {e}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Io(e) => Some(e),
            ServeError::Query(e) => Some(e),
        }
    }
}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        ServeError::Io(e)
    }
}

impl From<ndss_query::QueryError> for ServeError {
    fn from(e: ndss_query::QueryError) -> Self {
        ServeError::Query(e)
    }
}
