//! Self-healing: the background health prober.
//!
//! The circuit breakers (in `ndss-query`) keep a sick shard from being
//! retried on every request, but on their own they only re-test a shard
//! by *serving a live query into it* (the half-open probe) — and a shard
//! repaired in place keeps its poisoned file handles until something
//! re-opens the view. The prober closes the loop from the supply side: on
//! a fixed interval it looks at the quarantine set, re-verifies each
//! quarantined shard against the store on disk (cheap open/header
//! spot-check first, full checksum walk second), and when **every**
//! quarantined shard verifies clean it re-admits them through
//! [`ServingIndex::force_reload`] — a fresh view with fresh file handles
//! and closed breakers, swapped in without dropping a single in-flight
//! request. No restart, no operator `/reload`.
//!
//! The all-clean gate keeps the loop quiet: reloading while some shard is
//! still broken would reset its breaker just to watch it re-trip on the
//! next query, churning a reload per probe interval for no coverage gain.
//!
//! Drain interaction: the prober sleeps in short slices and re-checks the
//! drain flag between them, so joining it on shutdown costs at most one
//! slice, never a full probe interval (pinned by
//! `drain_is_prompt_while_a_shard_is_quarantined` in the daemon tests).

use std::path::Path;
use std::time::{Duration, Instant};

use ndss_index::generation::resolve_index_dir;
use ndss_index::{DiskIndex, IndexError, ShardedStore};

use crate::server::Shared;

/// Granularity at which a sleeping prober re-checks the drain flag.
const DRAIN_POLL: Duration = Duration::from_millis(20);

/// The prober thread body: probe every `interval` until drain.
pub(crate) fn run(shared: &Shared, interval: Duration) {
    let mut last = Instant::now();
    while !shared.draining() {
        std::thread::sleep(DRAIN_POLL.min(interval));
        if last.elapsed() < interval {
            continue;
        }
        last = Instant::now();
        probe_once(shared);
    }
}

/// One probe pass: re-verify every quarantined shard, and re-admit the
/// lot via a forced reload when all of them pass. Returns `true` when a
/// reload happened.
pub(crate) fn probe_once(shared: &Shared) -> bool {
    let quarantined = {
        let snapshot = shared.serving.snapshot();
        snapshot.health().quarantined()
    };
    shared.publish_breaker_metrics();
    if quarantined.is_empty() {
        return false;
    }
    let path = shared.serving.store_path().to_path_buf();
    let mut all_clean = true;
    for &shard in &quarantined {
        shared.metrics.probe_attempts.inc(1);
        if let Err(e) = verify_shard_on_disk(&path, shard) {
            shared.metrics.probe_failed.inc(1);
            let _ = e; // the breaker already holds a classified reason
            all_clean = false;
        }
    }
    if !all_clean {
        return false;
    }
    match shared.serving.force_reload() {
        Ok(()) => {
            shared.metrics.probe_recovered.inc(quarantined.len() as u64);
            shared.publish_breaker_metrics();
            true
        }
        Err(_) => {
            // Verification passed but the re-open raced a concurrent
            // publish or the fault returned; count it and try again next
            // interval.
            shared.metrics.probe_failed.inc(1);
            false
        }
    }
}

/// Re-verifies one shard against the bytes on disk: open + header/config
/// validation (cheap) first, then the full content-checksum walk. A fresh
/// open is deliberate — the serving view's handles may be poisoned (or
/// chaos-tapped); health is judged on what a *new* open would see, which
/// is exactly what a forced reload re-admits.
fn verify_shard_on_disk(store: &Path, shard: usize) -> Result<(), IndexError> {
    if ShardedStore::is_sharded(store) {
        let sharded = ShardedStore::open(store)?;
        sharded.spot_check_shard(shard)?;
        sharded.verify_shard(shard)
    } else {
        let dir = resolve_index_dir(store);
        let index = DiskIndex::open(&dir)?;
        index.verify_integrity()
    }
}
