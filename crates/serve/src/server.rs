//! The daemon: accept loop, per-connection protocol dispatch, request
//! execution against a [`ServingIndex`], admission control, and graceful
//! drain.
//!
//! # Threading model
//!
//! One acceptor thread owns the (non-blocking) listener and polls it on a
//! short interval, so it observes the drain flag promptly. Each accepted
//! connection is served start-to-finish by one handler thread from a
//! bounded pool: when `workers` connections are already active the
//! acceptor *rejects* the newcomer with an overload response instead of
//! queueing it — overload is an explicit, immediate signal, never an
//! unbounded backlog. Handler sockets carry a short read timeout, so idle
//! keep-alive connections poll the drain flag instead of blocking drain
//! forever.
//!
//! # Admission and budgets
//!
//! Two layers, mirroring [`ndss_query::BatchSearcher`]'s governance:
//!
//! 1. **Connection admission** — at most `workers` concurrent connections;
//!    beyond that the acceptor answers HTTP 503 / `STATUS_OVERLOADED` and
//!    closes.
//! 2. **Query admission** — at most `admission_cap` searches execute at
//!    once; beyond that a request is shed with HTTP 429 /
//!    `STATUS_OVERLOADED` (counted in `query.shed` alongside the batch
//!    engine's sheds) without touching the index.
//!
//! Every admitted search runs under a [`QueryBudget`]: the server's
//! `default_deadline` becomes an absolute deadline measured from request
//! receipt (the per-connection deadline of the issue: a slow client cannot
//! park work), request-supplied `deadline_ms`/IO/candidate caps tighten
//! it, and a tripped budget returns the sound partial result marked
//! `complete = false` — the same semantics the CLI batch path has.
//!
//! # Drain
//!
//! `shutdown()` (or SIGTERM/SIGINT via [`Server::install_signal_hooks`],
//! or `POST /shutdown`) flips one flag: the acceptor stops accepting and
//! closes the listener; handlers finish the request they are executing —
//! pinned generation snapshots run to completion, nothing in flight is
//! dropped — answer anything already buffered on their socket, then close.
//! When the last handler exits, metrics are optionally flushed to
//! `metrics_out` and [`Server::run`] returns.

use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use ndss_index::{CacheConfig, IngestIndex, IngestOptions};
use ndss_json::{Json, ObjectBuilder};
use ndss_query::{
    DegradedShard, FaultPolicy, OverlaySearcher, PrefixFilter, QueryBudget, QueryError,
    RankedMatch, Resource, SearchOutcome, ServingIndex,
};

use crate::frame::{self, FrameOutcome, RequestPayload};
use crate::http::{self, ReadOutcome};
use crate::prober;
use crate::{ServeError, DEFAULT_ADDR};

/// Tuning for one [`Server`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Listen address, `host:port` (port `0` picks a free port).
    pub addr: String,
    /// Connection-handler pool size = max concurrent connections.
    pub workers: usize,
    /// Max searches executing at once; further searches are shed.
    pub admission_cap: usize,
    /// Per-request deadline applied from the moment the request is read,
    /// unless the request asks for an earlier one. `None` = unbounded.
    pub default_deadline: Option<Duration>,
    /// Largest accepted HTTP body.
    pub max_body_bytes: usize,
    /// Socket read timeout — the granularity at which idle connections and
    /// the acceptor observe the drain flag.
    pub idle_poll: Duration,
    /// Prefix-filter policy for every query.
    pub filter: PrefixFilter,
    /// Cache sizing for each opened generation.
    pub cache: CacheConfig,
    /// Where to flush a final metrics snapshot on drain (`.prom`/`.txt` ⇒
    /// Prometheus text, anything else ⇒ JSON).
    pub metrics_out: Option<PathBuf>,
    /// How often the background health prober re-checks quarantined
    /// shards (spot-check, then full verification, then re-admission via
    /// forced reload). `None` disables self-healing — quarantined shards
    /// then only return through the breaker's own half-open probes.
    pub probe_interval: Option<Duration>,
    /// Streaming-ingest settings. `None` (the default) serves read-only;
    /// `Some` enables `POST /ingest`, overlays the memtable on every
    /// search, and spawns the background compactor.
    pub ingest: Option<IngestServeConfig>,
}

/// Ingest settings for a serving daemon.
#[derive(Debug, Clone)]
pub struct IngestServeConfig {
    /// The generation store the memtable lives in — must be the same store
    /// the [`ServingIndex`] serves, or overlay ids will not line up.
    pub store: PathBuf,
    /// WAL rotation threshold (bytes).
    pub flush_bytes: u64,
    /// Group-fsync cadence (appends per fsync); each `POST /ingest` also
    /// forces one before acking.
    pub fsync_every: u64,
    /// How often the background compactor checks for frozen segments to
    /// seal into generations. `None` disables background compaction (the
    /// memtable then only shrinks via an external `ndss ingest --seal`).
    pub compact_interval: Option<Duration>,
}

impl Default for IngestServeConfig {
    fn default() -> Self {
        let defaults = IngestOptions::default();
        IngestServeConfig {
            store: PathBuf::new(),
            flush_bytes: defaults.flush_bytes,
            fsync_every: defaults.fsync_every,
            compact_interval: Some(Duration::from_millis(500)),
        }
    }
}

impl Default for ServeConfig {
    fn default() -> Self {
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        ServeConfig {
            addr: DEFAULT_ADDR.to_string(),
            workers: (cores * 2).max(4),
            admission_cap: cores.max(2),
            default_deadline: None,
            max_body_bytes: 16 << 20,
            idle_poll: Duration::from_millis(25),
            filter: PrefixFilter::Adaptive,
            cache: CacheConfig::default(),
            metrics_out: None,
            probe_interval: Some(Duration::from_secs(1)),
            ingest: None,
        }
    }
}

pub(crate) struct ServeMetrics {
    connections: ndss_obs::Counter,
    connections_rejected: ndss_obs::Counter,
    active_connections: ndss_obs::Gauge,
    http_requests: ndss_obs::Counter,
    frame_requests: ndss_obs::Counter,
    searches: ndss_obs::Counter,
    shed: ndss_obs::Counter,
    query_shed: ndss_obs::Counter,
    bad_requests: ndss_obs::Counter,
    internal_errors: ndss_obs::Counter,
    request_seconds: ndss_obs::Histogram,
    in_flight: ndss_obs::Gauge,
    degraded: ndss_obs::Counter,
    unavailable: ndss_obs::Counter,
    conn_accepted: ndss_obs::Counter,
    conn_reused: ndss_obs::Counter,
    conn_closed: ndss_obs::Counter,
    reuse_ratio: ndss_obs::Gauge,
    quarantined: ndss_obs::Gauge,
    pub(crate) probe_attempts: ndss_obs::Counter,
    pub(crate) probe_recovered: ndss_obs::Counter,
    pub(crate) probe_failed: ndss_obs::Counter,
}

impl ServeMetrics {
    fn register(reg: &ndss_obs::Registry) -> Self {
        ServeMetrics {
            connections: reg.counter("serve.connections", "Connections accepted"),
            connections_rejected: reg.counter(
                "serve.connections.rejected",
                "Connections rejected because the handler pool was full",
            ),
            active_connections: reg.gauge(
                "serve.connections.active",
                "Connections currently being served",
            ),
            http_requests: reg.counter("serve.requests.http", "HTTP requests handled"),
            frame_requests: reg.counter("serve.requests.frame", "Binary frames handled"),
            searches: reg.counter("serve.searches", "Search requests admitted for execution"),
            shed: reg.counter(
                "serve.shed",
                "Search requests shed by the server's admission cap",
            ),
            query_shed: reg.counter("query.shed", "Queries shed by admission control"),
            bad_requests: reg.counter("serve.bad_requests", "Unparseable or invalid requests"),
            internal_errors: reg.counter("serve.errors", "Requests failed server-side"),
            request_seconds: reg.histogram(
                "serve.request.seconds",
                "Wall time from request decode to response write",
                ndss_obs::Unit::Seconds,
            ),
            in_flight: reg.gauge("serve.in_flight", "Searches currently executing"),
            degraded: reg.counter(
                "serve.degraded",
                "Search responses answered from a partial (degraded) shard set",
            ),
            unavailable: reg.counter(
                "serve.unavailable",
                "Search requests failed because every shard was quarantined",
            ),
            conn_accepted: reg.counter("serve.conn.accepted", "Connections accepted (keep-alive)"),
            conn_reused: reg.counter(
                "serve.conn.reused",
                "Requests served on an already-open connection (beyond each \
                 connection's first request)",
            ),
            conn_closed: reg.counter("serve.conn.closed", "Connections closed"),
            reuse_ratio: reg.gauge(
                "serve.conn.reuse_ratio_percent",
                "Share of requests that reused an existing connection, in percent",
            ),
            quarantined: reg.gauge(
                "index.shards.quarantined",
                "Shards currently quarantined by their circuit breaker",
            ),
            probe_attempts: reg.counter(
                "serve.probe.attempts",
                "Health-prober re-verification attempts on quarantined shards",
            ),
            probe_recovered: reg.counter(
                "serve.probe.recovered",
                "Quarantined shards re-admitted after passing re-verification",
            ),
            probe_failed: reg.counter(
                "serve.probe.failed",
                "Health-prober re-verification attempts that failed",
            ),
        }
    }
}

pub(crate) struct Shared {
    pub(crate) serving: ServingIndex,
    pub(crate) config: ServeConfig,
    draining: AtomicBool,
    in_flight: AtomicUsize,
    pub(crate) metrics: ServeMetrics,
    /// The mutable front of the store (when ingest is enabled). Appends,
    /// overlay reads, and compaction all serialize on this lock; the disk
    /// lane of a search runs outside it.
    pub(crate) ingest: Option<Mutex<IngestIndex>>,
}

impl Shared {
    pub(crate) fn draining(&self) -> bool {
        self.draining.load(Ordering::Relaxed) || TERM_REQUESTED.load(Ordering::Relaxed)
    }

    /// Refreshes the gauges derived from breaker state: per-shard breaker
    /// position/trip counts and the quarantine count. Called when
    /// `/metrics` renders and by the health prober, so scrapes and probes
    /// both see current values.
    pub(crate) fn publish_breaker_metrics(&self) -> usize {
        let snapshot = self.serving.snapshot();
        let health = snapshot.health();
        let reg = ndss_obs::Registry::global();
        let mut quarantined = 0usize;
        for snap in health.snapshot() {
            if snap.state != ndss_query::BreakerState::Closed {
                quarantined += 1;
            }
            let shard = snap.shard.to_string();
            reg.gauge_with_labels(
                "index.shard.breaker",
                "Per-shard circuit-breaker state: 0 closed, 1 open, 2 half-open",
                &[("shard", &shard)],
            )
            .set(snap.state.as_gauge());
            reg.gauge_with_labels(
                "index.shard.breaker_trips",
                "Cumulative closed-to-open transitions per shard (current view)",
                &[("shard", &shard)],
            )
            .set(snap.trips.min(i64::MAX as u64) as i64);
        }
        self.metrics.quarantined.set(quarantined as i64);
        quarantined
    }
}

/// Remote-control handle for a [`Server`]: trigger drain, read the bound
/// address. Clonable and sendable across threads.
#[derive(Clone)]
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
}

impl ServerHandle {
    /// The address the server actually bound (resolves port `0`).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Initiates graceful drain: stop accepting, finish in-flight work,
    /// then [`Server::run`] returns. Idempotent.
    pub fn shutdown(&self) {
        self.shared.draining.store(true, Ordering::Relaxed);
    }

    /// Whether drain has been requested.
    pub fn is_draining(&self) -> bool {
        self.shared.draining()
    }
}

/// A server spawned onto a background thread (tests, benches, embedding).
pub struct RunningServer {
    handle: ServerHandle,
    thread: std::thread::JoinHandle<Result<DrainReport, ServeError>>,
}

impl RunningServer {
    /// The control handle (address + shutdown).
    pub fn handle(&self) -> ServerHandle {
        self.handle.clone()
    }

    /// Requests drain and waits for the acceptor and every handler to
    /// finish.
    pub fn shutdown_and_join(self) -> Result<DrainReport, ServeError> {
        self.handle.shutdown();
        self.thread.join().expect("server thread panicked")
    }
}

/// What a completed drain handed back.
#[derive(Debug, Clone, Copy)]
pub struct DrainReport {
    /// Connections accepted over the server's lifetime.
    pub connections: u64,
    /// HTTP requests answered.
    pub http_requests: u64,
    /// Binary frames answered.
    pub frame_requests: u64,
    /// Searches shed by admission control.
    pub shed: u64,
}

/// Set by the SIGTERM/SIGINT hook; observed by every server in the
/// process.
static TERM_REQUESTED: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
unsafe extern "C" fn on_terminate_signal(_signum: i32) {
    // A relaxed store to a static atomic is async-signal-safe.
    TERM_REQUESTED.store(true, Ordering::Relaxed);
}

/// The network front door over a [`ServingIndex`].
pub struct Server {
    listener: TcpListener,
    addr: SocketAddr,
    shared: Arc<Shared>,
}

impl Server {
    /// Binds the listen socket. The index is opened by the caller (so open
    /// errors surface before forking off threads) and owned by the server.
    pub fn bind(config: ServeConfig, serving: ServingIndex) -> Result<Self, ServeError> {
        let listener = TcpListener::bind(&config.addr).map_err(ServeError::Io)?;
        listener.set_nonblocking(true).map_err(ServeError::Io)?;
        let addr = listener.local_addr().map_err(ServeError::Io)?;
        let metrics = ServeMetrics::register(ndss_obs::Registry::global());
        let ingest = match &config.ingest {
            Some(cfg) => {
                let opts = IngestOptions {
                    flush_bytes: cfg.flush_bytes,
                    fsync_every: cfg.fsync_every,
                    ..IngestOptions::default()
                };
                // The serving index is already open, so the store has a
                // configuration to inherit — no `config_if_new` needed.
                let index = IngestIndex::open(&cfg.store, None, opts)
                    .map_err(|e| ServeError::Query(QueryError::Index(e)))?;
                Some(Mutex::new(index))
            }
            None => None,
        };
        Ok(Server {
            listener,
            addr,
            shared: Arc::new(Shared {
                serving,
                config,
                draining: AtomicBool::new(false),
                in_flight: AtomicUsize::new(0),
                metrics,
                ingest,
            }),
        })
    }

    /// The bound address (resolves a requested port `0`).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// A control handle usable from other threads.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            addr: self.addr,
            shared: self.shared.clone(),
        }
    }

    /// Routes SIGTERM and SIGINT into graceful drain for every server in
    /// this process. Installed by `ndss serve`; tests and embedded servers
    /// use [`ServerHandle::shutdown`] instead.
    #[cfg(unix)]
    pub fn install_signal_hooks() {
        extern "C" {
            fn signal(signum: i32, handler: usize) -> usize;
        }
        const SIGINT: i32 = 2;
        const SIGTERM: i32 = 15;
        unsafe {
            signal(SIGTERM, on_terminate_signal as *const () as usize);
            signal(SIGINT, on_terminate_signal as *const () as usize);
        }
    }

    #[cfg(not(unix))]
    pub fn install_signal_hooks() {}

    /// Spawns the accept loop onto a background thread.
    pub fn spawn(self) -> RunningServer {
        let handle = self.handle();
        let thread = std::thread::Builder::new()
            .name("ndss-serve-accept".into())
            .spawn(move || self.run())
            .expect("spawning the acceptor thread");
        RunningServer { handle, thread }
    }

    /// Runs the accept loop on the calling thread until drain completes.
    pub fn run(self) -> Result<DrainReport, ServeError> {
        let shared = self.shared;
        let mut handlers: Vec<std::thread::JoinHandle<()>> = Vec::new();
        let active = Arc::new(AtomicUsize::new(0));
        let prober = shared.config.probe_interval.map(|interval| {
            let shared = shared.clone();
            std::thread::Builder::new()
                .name("ndss-serve-prober".into())
                .spawn(move || prober::run(&shared, interval))
                .expect("spawning the health prober")
        });
        let compactor = shared
            .config
            .ingest
            .as_ref()
            .and_then(|cfg| cfg.compact_interval)
            .filter(|_| shared.ingest.is_some())
            .map(|interval| {
                let shared = shared.clone();
                std::thread::Builder::new()
                    .name("ndss-serve-compact".into())
                    .spawn(move || run_compactor(&shared, interval))
                    .expect("spawning the ingest compactor")
            });

        while !shared.draining() {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    // Reap finished handlers so the vec stays bounded by the
                    // pool size, not the connection count.
                    handlers.retain(|h| !h.is_finished());
                    if active.load(Ordering::Relaxed) >= shared.config.workers {
                        shared.metrics.connections_rejected.inc(1);
                        reject_connection(stream, &shared);
                        continue;
                    }
                    shared.metrics.connections.inc(1);
                    shared.metrics.conn_accepted.inc(1);
                    let n = active.fetch_add(1, Ordering::Relaxed) + 1;
                    shared.metrics.active_connections.set(n as i64);
                    let shared = shared.clone();
                    let active = active.clone();
                    let handler = std::thread::Builder::new()
                        .name("ndss-serve-conn".into())
                        .spawn(move || {
                            handle_connection(stream, &shared);
                            let n = active.fetch_sub(1, Ordering::Relaxed) - 1;
                            shared.metrics.active_connections.set(n as i64);
                        })
                        .expect("spawning a connection handler");
                    handlers.push(handler);
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(shared.config.idle_poll);
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return Err(ServeError::Io(e)),
            }
        }

        // Drain: the listener closes here (drop), handlers finish their
        // in-flight requests and observe the flag at their next idle poll.
        // The prober sleeps in short slices and re-checks the drain flag,
        // so joining it never blocks drain on a full probe interval.
        drop(self.listener);
        for handler in handlers {
            let _ = handler.join();
        }
        if let Some(prober) = prober {
            let _ = prober.join();
        }
        if let Some(compactor) = compactor {
            let _ = compactor.join();
        }
        // Every acked append must be durable before the drain report goes
        // out: flush + fsync the WAL while no handler can append anymore.
        if let Some(ingest) = &shared.ingest {
            let mut ingest = ingest.lock().unwrap();
            if let Err(e) = ingest.sync() {
                eprintln!("warning: draining WAL sync failed: {e}");
            }
        }
        if let Some(path) = &shared.config.metrics_out {
            flush_metrics(path);
        }
        Ok(DrainReport {
            connections: shared.metrics.connections.get(),
            http_requests: shared.metrics.http_requests.get(),
            frame_requests: shared.metrics.frame_requests.get(),
            shed: shared.metrics.shed.get(),
        })
    }
}

/// The background compactor: seals frozen memtable segments into
/// generations and hot-swaps the serving view onto each new publication.
/// Sleeps in short slices so drain is never blocked on a full interval
/// (compactions in progress run to completion — they are resumable anyway,
/// but finishing cleanly avoids pointless recovery work on restart).
fn run_compactor(shared: &Shared, interval: Duration) {
    let Some(ingest) = &shared.ingest else { return };
    let slice = Duration::from_millis(20);
    let mut elapsed = Duration::ZERO;
    while !shared.draining() {
        std::thread::sleep(slice.min(interval));
        elapsed += slice;
        if elapsed < interval {
            continue;
        }
        elapsed = Duration::ZERO;
        let compacted = {
            let mut guard = ingest.lock().unwrap();
            if guard.frozen_segments() == 0 {
                continue;
            }
            guard.compact_once()
        };
        match compacted {
            Ok(true) => {
                // The new generation is published; swap the serving view so
                // the disk lane covers it. If this reload fails (or a query
                // pins the old view before it lands), the query path notices
                // the view lagging the store's coverage and reloads under
                // the memtable lock itself — no texts go invisible.
                if let Err(e) = shared.serving.reload() {
                    eprintln!("warning: reload after compaction failed: {e}");
                }
            }
            Ok(false) => {}
            Err(e) => eprintln!("warning: background compaction failed: {e}"),
        }
    }
}

/// Writes the final metrics snapshot; drain must not fail on a bad path,
/// so errors go to stderr.
fn flush_metrics(path: &std::path::Path) {
    let reg = ndss_obs::Registry::global();
    let ext = path.extension().and_then(|e| e.to_str()).unwrap_or("");
    let body = if matches!(ext, "prom" | "txt") {
        reg.prometheus_text()
    } else {
        let mut json = reg.to_json().to_string_pretty();
        json.push('\n');
        json
    };
    if let Err(e) = std::fs::write(path, body) {
        eprintln!("warning: flushing metrics to {}: {e}", path.display());
    }
}

/// Tells an over-capacity client why it was turned away, on whichever
/// protocol it speaks (best effort — the peek is bounded by one timeout).
fn reject_connection(stream: TcpStream, shared: &Shared) {
    let _ = stream.set_nonblocking(false);
    let _ = stream.set_read_timeout(Some(shared.config.idle_poll.max(Duration::from_millis(10))));
    let mut first = [0u8; 4];
    let is_frame = matches!(stream.peek(&mut first), Ok(n) if n >= 4 && first == frame::MAGIC);
    let mut stream = stream;
    if is_frame {
        let payload = frame::encode_error(frame::STATUS_OVERLOADED, "connection pool full");
        let _ = frame::write_frame(&mut stream, &payload);
    } else {
        let body = ObjectBuilder::new()
            .field("error", Json::Str("overloaded".into()))
            .field("detail", Json::Str("connection pool full".into()))
            .build()
            .to_string_compact();
        let _ = http::write_response(
            &mut stream,
            503,
            "Service Unavailable",
            "application/json",
            body.as_bytes(),
            true,
        );
    }
}

/// Serves one connection to completion: sniff the protocol, then loop
/// request → response until close, error, or drain.
fn handle_connection(stream: TcpStream, shared: &Shared) {
    if stream.set_nonblocking(false).is_err()
        || stream
            .set_read_timeout(Some(shared.config.idle_poll))
            .is_err()
        || stream.set_nodelay(true).is_err()
    {
        return;
    }

    // Protocol sniff: wait for the first 4 bytes (bounded rounds so a
    // 2-byte-then-stall client cannot pin the handler forever).
    let mut first = [0u8; 4];
    let mut rounds = 0u32;
    let is_frame = loop {
        match stream.peek(&mut first) {
            Ok(0) => return,
            Ok(n) if n >= 4 => break first == frame::MAGIC,
            Ok(_) => std::thread::sleep(Duration::from_millis(1)),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut => {}
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => return,
        }
        rounds += 1;
        if rounds > 2_000 || shared.draining() && rounds > 2 {
            return;
        }
    };

    let mut stream = stream;
    if is_frame {
        serve_frames(&mut stream, shared);
    } else {
        serve_http(&mut stream, shared);
    }
    shared.metrics.conn_closed.inc(1);
}

/// The HTTP side of the front door.
fn serve_http(stream: &mut TcpStream, shared: &Shared) {
    let mut requests_on_conn = 0u64;
    loop {
        let outcome = match http::read_request(stream, shared.config.max_body_bytes) {
            Ok(outcome) => outcome,
            Err(_) => return,
        };
        let request = match outcome {
            ReadOutcome::Request(request) => request,
            ReadOutcome::Closed => return,
            ReadOutcome::Idle => {
                if shared.draining() {
                    return;
                }
                continue;
            }
            ReadOutcome::Malformed(reason) => {
                shared.metrics.bad_requests.inc(1);
                let body = error_body("bad-request", &reason);
                let _ = http::write_response(
                    stream,
                    400,
                    "Bad Request",
                    "application/json",
                    body.as_bytes(),
                    true,
                );
                return;
            }
        };
        shared.metrics.http_requests.inc(1);
        requests_on_conn += 1;
        if requests_on_conn > 1 {
            shared.metrics.conn_reused.inc(1);
        }
        let started = Instant::now();
        // Serve the request we already read even if drain started while it
        // was in the socket; close afterwards so drain converges.
        let close = request.wants_close() || shared.draining();
        let (status, reason, content_type, body) = route_http(&request, shared);
        shared
            .metrics
            .request_seconds
            .record_duration(started.elapsed());
        if http::write_response(stream, status, reason, content_type, body.as_bytes(), close)
            .is_err()
            || close
        {
            return;
        }
    }
}

/// Dispatches one HTTP request to its endpoint.
fn route_http(
    request: &http::Request,
    shared: &Shared,
) -> (u16, &'static str, &'static str, String) {
    const JSON: &str = "application/json";
    match (request.method.as_str(), request.route()) {
        ("GET", "/healthz") => {
            if shared.draining() {
                (
                    503,
                    "Service Unavailable",
                    JSON,
                    ObjectBuilder::new()
                        .field("status", Json::Str("draining".into()))
                        .build()
                        .to_string_compact(),
                )
            } else {
                let body = ObjectBuilder::new()
                    .field("status", Json::Str("ok".into()))
                    .field(
                        "generation",
                        Json::UInt(shared.serving.generation().unwrap_or(0)),
                    )
                    .build()
                    .to_string_compact();
                (200, "OK", JSON, body)
            }
        }
        ("GET", "/metrics") => {
            shared
                .metrics
                .in_flight
                .set(shared.in_flight.load(Ordering::Relaxed) as i64);
            let requests = shared.metrics.http_requests.get() + shared.metrics.frame_requests.get();
            let reused = shared.metrics.conn_reused.get();
            shared
                .metrics
                .reuse_ratio
                .set((100 * reused / requests.max(1)) as i64);
            shared.publish_breaker_metrics();
            (
                200,
                "OK",
                "text/plain; version=0.0.4",
                ndss_obs::Registry::global().prometheus_text(),
            )
        }
        ("POST", "/search") => match parse_search_body(&request.body) {
            Ok(parsed) => match execute_search(shared, &parsed) {
                Ok(reply) => (200, "OK", JSON, reply.to_json().to_string_compact()),
                Err(fail) => fail.http(JSON),
            },
            Err(reason) => {
                shared.metrics.bad_requests.inc(1);
                (400, "Bad Request", JSON, error_body("bad-request", &reason))
            }
        },
        ("POST", "/ingest") => match execute_ingest(shared, &request.body) {
            Ok(body) => (200, "OK", JSON, body),
            Err(fail) => fail.http(JSON),
        },
        ("POST", "/reload") => match shared.serving.reload() {
            Ok(swapped) => {
                let body = ObjectBuilder::new()
                    .field("reloaded", Json::Bool(swapped))
                    .field(
                        "generation",
                        Json::UInt(shared.serving.generation().unwrap_or(0)),
                    )
                    .build()
                    .to_string_compact();
                (200, "OK", JSON, body)
            }
            Err(e) => {
                shared.metrics.internal_errors.inc(1);
                (
                    500,
                    "Internal Server Error",
                    JSON,
                    error_body("reload-failed", &e.to_string()),
                )
            }
        },
        ("POST", "/shutdown") => {
            shared.draining.store(true, Ordering::Relaxed);
            (
                200,
                "OK",
                JSON,
                ObjectBuilder::new()
                    .field("draining", Json::Bool(true))
                    .build()
                    .to_string_compact(),
            )
        }
        (_, route) => (
            404,
            "Not Found",
            JSON,
            error_body("not-found", &format!("no such endpoint {route}")),
        ),
    }
}

/// The binary side of the front door.
fn serve_frames(stream: &mut TcpStream, shared: &Shared) {
    let mut requests_on_conn = 0u64;
    loop {
        let payload = match frame::read_frame(stream) {
            Ok(FrameOutcome::Payload(payload)) => payload,
            Ok(FrameOutcome::Closed) => return,
            Ok(FrameOutcome::Idle) => {
                if shared.draining() {
                    return;
                }
                continue;
            }
            Ok(FrameOutcome::Malformed(reason)) => {
                shared.metrics.bad_requests.inc(1);
                let _ = frame::write_frame(
                    stream,
                    &frame::encode_error(frame::STATUS_BAD_REQUEST, &reason),
                );
                return;
            }
            Err(_) => return,
        };
        shared.metrics.frame_requests.inc(1);
        requests_on_conn += 1;
        if requests_on_conn > 1 {
            shared.metrics.conn_reused.inc(1);
        }
        let started = Instant::now();
        let close_after = shared.draining();
        let response = match frame::decode_request(&payload) {
            Ok(RequestPayload::Ping) => vec![frame::STATUS_OK],
            Ok(RequestPayload::Search(req)) => {
                let parsed = ParsedSearch {
                    query: req.query,
                    theta: req.theta,
                    top: if req.top == 0 {
                        usize::MAX
                    } else {
                        req.top as usize
                    },
                    deadline: (req.deadline_ms > 0).then(|| Duration::from_millis(req.deadline_ms)),
                    max_io_bytes: None,
                    max_candidates: None,
                    max_matches: None,
                };
                match execute_search(shared, &parsed) {
                    Ok(reply) => frame::encode_search_response(&reply.to_wire()),
                    Err(fail) => fail.frame(),
                }
            }
            Err(reason) => {
                shared.metrics.bad_requests.inc(1);
                frame::encode_error(frame::STATUS_BAD_REQUEST, &reason)
            }
        };
        shared
            .metrics
            .request_seconds
            .record_duration(started.elapsed());
        if frame::write_frame(stream, &response).is_err() || close_after {
            return;
        }
    }
}

/// A search request after protocol-specific decoding.
struct ParsedSearch {
    query: Vec<u32>,
    theta: f64,
    top: usize,
    deadline: Option<Duration>,
    max_io_bytes: Option<u64>,
    max_candidates: Option<u64>,
    max_matches: Option<usize>,
}

/// `POST /search` body:
/// `{"query": [ids…], "theta": 0.8, "top": 10, "deadline_ms": 100,
///   "max_io_bytes": …, "max_candidates": …, "max_matches": …}`.
fn parse_search_body(body: &[u8]) -> Result<ParsedSearch, String> {
    let text = std::str::from_utf8(body).map_err(|_| "body is not UTF-8".to_string())?;
    let doc = Json::parse(text).map_err(|e| e.to_string())?;
    let query = doc
        .get("query")
        .and_then(Json::as_array)
        .ok_or("missing \"query\": [token ids]")?
        .iter()
        .map(|t| {
            t.as_u64()
                .filter(|&v| v <= u32::MAX as u64)
                .map(|v| v as u32)
                .ok_or_else(|| format!("bad token id {t:?}"))
        })
        .collect::<Result<Vec<u32>, String>>()?;
    let theta = doc
        .get("theta")
        .map(|v| v.as_f64().ok_or("\"theta\" must be a number"))
        .transpose()?
        .unwrap_or(0.8);
    let top = doc
        .get("top")
        .map(|v| v.as_usize().ok_or("\"top\" must be an integer"))
        .transpose()?
        .unwrap_or(usize::MAX);
    let uint = |key: &'static str| -> Result<Option<u64>, String> {
        doc.get(key)
            .map(|v| {
                v.as_u64()
                    .ok_or_else(|| format!("\"{key}\" must be an integer"))
            })
            .transpose()
    };
    Ok(ParsedSearch {
        query,
        theta,
        top: if top == 0 { usize::MAX } else { top },
        deadline: uint("deadline_ms")?.map(Duration::from_millis),
        max_io_bytes: uint("max_io_bytes")?,
        max_candidates: uint("max_candidates")?,
        max_matches: uint("max_matches")?.map(|v| v as usize),
    })
}

/// A completed search, protocol-agnostic; each protocol has its encoder.
struct SearchReply {
    complete: bool,
    exhausted: Option<Resource>,
    generation: u64,
    beta: usize,
    num_texts: usize,
    total_sequences: u64,
    matches: Vec<RankedMatch>,
    io_bytes: u64,
    postings_read: u64,
    wall: Duration,
    /// Quarantined shard ranges the answer does not cover (degraded
    /// responses only).
    degraded: Vec<DegradedShard>,
}

impl SearchReply {
    fn to_json(&self) -> Json {
        let matches = self
            .matches
            .iter()
            .map(|m| {
                let spans = m
                    .spans
                    .iter()
                    .map(|s| {
                        Json::Array(vec![Json::UInt(s.start as u64), Json::UInt(s.end as u64)])
                    })
                    .collect();
                ObjectBuilder::new()
                    .field("text", Json::UInt(m.text as u64))
                    .field("collisions", Json::UInt(m.collisions as u64))
                    .field("estimated_similarity", Json::Float(m.estimated_similarity))
                    .field("spans", Json::Array(spans))
                    .build()
            })
            .collect();
        let mut builder = ObjectBuilder::new()
            .field("complete", Json::Bool(self.complete))
            .field("generation", Json::UInt(self.generation))
            .field("beta", Json::UInt(self.beta as u64))
            .field("num_texts", Json::UInt(self.num_texts as u64))
            .field("total_sequences", Json::UInt(self.total_sequences))
            .field("matches", Json::Array(matches));
        if let Some(resource) = self.exhausted {
            builder = builder.field("budget_exhausted", Json::Str(resource.to_string()));
        }
        if !self.degraded.is_empty() {
            let shards = self
                .degraded
                .iter()
                .map(|d| {
                    ObjectBuilder::new()
                        .field("shard", Json::UInt(d.shard as u64))
                        .field("first_text", Json::UInt(d.first_text as u64))
                        .field("num_texts", Json::UInt(d.num_texts))
                        .field("kind", Json::Str(d.kind.label().into()))
                        .field("reason", Json::Str(d.reason.clone()))
                        .build()
                })
                .collect();
            builder = builder.field("degraded_shards", Json::Array(shards));
        }
        builder
            .field(
                "stats",
                ObjectBuilder::new()
                    .field("wall_ms", Json::Float(self.wall.as_secs_f64() * 1e3))
                    .field("io_bytes", Json::UInt(self.io_bytes))
                    .field("postings_read", Json::UInt(self.postings_read))
                    .build(),
            )
            .build()
    }

    fn to_wire(&self) -> frame::SearchResponse {
        frame::SearchResponse {
            complete: self.complete,
            generation: self.generation,
            beta: self.beta as u32,
            total_sequences: self.total_sequences,
            matches: self
                .matches
                .iter()
                .map(|m| frame::WireMatch {
                    text: m.text,
                    collisions: m.collisions,
                    spans: m.spans.iter().map(|s| (s.start, s.end)).collect(),
                })
                .collect(),
            degraded: self
                .degraded
                .iter()
                .map(|d| frame::WireDegraded {
                    shard: d.shard as u32,
                    first_text: d.first_text,
                    num_texts: d.num_texts,
                    kind: d.kind.as_wire(),
                    reason: d.reason.clone(),
                })
                .collect(),
        }
    }
}

/// Why a search produced no reply.
enum SearchFail {
    Overloaded {
        in_flight: usize,
        cap: usize,
    },
    BadRequest(String),
    Internal(String),
    /// Every shard of the view is quarantined: nothing can answer, not
    /// even partially.
    Unavailable(String),
}

impl SearchFail {
    fn http(&self, json: &'static str) -> (u16, &'static str, &'static str, String) {
        match self {
            SearchFail::Overloaded { in_flight, cap } => (
                429,
                "Too Many Requests",
                json,
                ObjectBuilder::new()
                    .field("error", Json::Str("overloaded".into()))
                    .field("in_flight", Json::UInt(*in_flight as u64))
                    .field("cap", Json::UInt(*cap as u64))
                    .build()
                    .to_string_compact(),
            ),
            SearchFail::BadRequest(reason) => {
                (400, "Bad Request", json, error_body("bad-request", reason))
            }
            SearchFail::Internal(reason) => (
                500,
                "Internal Server Error",
                json,
                error_body("internal", reason),
            ),
            SearchFail::Unavailable(reason) => (
                503,
                "Service Unavailable",
                json,
                error_body("unavailable", reason),
            ),
        }
    }

    fn frame(&self) -> Vec<u8> {
        match self {
            SearchFail::Overloaded { cap, .. } => frame::encode_error(
                frame::STATUS_OVERLOADED,
                &format!("shed by admission control (cap {cap})"),
            ),
            SearchFail::BadRequest(reason) => {
                frame::encode_error(frame::STATUS_BAD_REQUEST, reason)
            }
            SearchFail::Internal(reason) => frame::encode_error(frame::STATUS_INTERNAL, reason),
            SearchFail::Unavailable(reason) => frame::encode_error(frame::STATUS_INTERNAL, reason),
        }
    }
}

fn error_body(kind: &str, detail: &str) -> String {
    ObjectBuilder::new()
        .field("error", Json::Str(kind.into()))
        .field("detail", Json::Str(detail.into()))
        .build()
        .to_string_compact()
}

/// Admission + budget + execution, shared by both protocols. The snapshot
/// is pinned once: search, ranking, and the reported generation all come
/// from the same generation even if a reload lands mid-request.
fn execute_search(shared: &Shared, parsed: &ParsedSearch) -> Result<SearchReply, SearchFail> {
    let cap = shared.config.admission_cap;
    let admitted = shared.in_flight.fetch_add(1, Ordering::AcqRel);
    if admitted >= cap {
        shared.in_flight.fetch_sub(1, Ordering::AcqRel);
        shared.metrics.shed.inc(1);
        shared.metrics.query_shed.inc(1);
        return Err(SearchFail::Overloaded {
            in_flight: admitted,
            cap,
        });
    }
    let result = execute_admitted(shared, parsed);
    shared.in_flight.fetch_sub(1, Ordering::AcqRel);
    result
}

/// `POST /ingest` body: `{"tokens": [ids…]}` for one text, or
/// `{"texts": [[ids…], …]}` for a batch. Admission-capped alongside
/// searches; the response is written only after the WAL fsync, so an
/// acked text survives any crash.
fn execute_ingest(shared: &Shared, body: &[u8]) -> Result<String, SearchFail> {
    let Some(ingest) = &shared.ingest else {
        return Err(SearchFail::BadRequest(
            "ingest is not enabled on this server (start with --ingest)".to_string(),
        ));
    };
    let cap = shared.config.admission_cap;
    let admitted = shared.in_flight.fetch_add(1, Ordering::AcqRel);
    if admitted >= cap {
        shared.in_flight.fetch_sub(1, Ordering::AcqRel);
        shared.metrics.shed.inc(1);
        shared.metrics.query_shed.inc(1);
        return Err(SearchFail::Overloaded {
            in_flight: admitted,
            cap,
        });
    }
    let result = execute_ingest_admitted(shared, ingest, body);
    shared.in_flight.fetch_sub(1, Ordering::AcqRel);
    result
}

fn execute_ingest_admitted(
    shared: &Shared,
    ingest: &Mutex<IngestIndex>,
    body: &[u8],
) -> Result<String, SearchFail> {
    let texts = parse_ingest_body(body).map_err(|reason| {
        shared.metrics.bad_requests.inc(1);
        SearchFail::BadRequest(reason)
    })?;
    let mut guard = ingest.lock().unwrap();
    let first = guard.next_text_id();
    let mut ids = Vec::with_capacity(texts.len());
    for tokens in &texts {
        match guard.append(tokens) {
            Ok(id) => ids.push(id),
            Err(e) => {
                shared.metrics.internal_errors.inc(1);
                return Err(SearchFail::Internal(e.to_string()));
            }
        }
    }
    // Ack = durable: force the group fsync before answering.
    if let Err(e) = guard.sync() {
        shared.metrics.internal_errors.inc(1);
        return Err(SearchFail::Internal(e.to_string()));
    }
    let body = ObjectBuilder::new()
        .field("accepted", Json::UInt(ids.len() as u64))
        .field("first_text", Json::UInt(first))
        .field("next_text", Json::UInt(guard.next_text_id()))
        .field("pending", Json::UInt(guard.pending_texts()))
        .build()
        .to_string_compact();
    Ok(body)
}

/// Decodes an ingest body into token sequences.
fn parse_ingest_body(body: &[u8]) -> Result<Vec<Vec<u32>>, String> {
    let text = std::str::from_utf8(body).map_err(|_| "body is not UTF-8".to_string())?;
    let doc = Json::parse(text).map_err(|e| e.to_string())?;
    let tokens_of = |v: &Json| -> Result<Vec<u32>, String> {
        v.as_array()
            .ok_or("a text must be an array of token ids")?
            .iter()
            .map(|t| {
                t.as_u64()
                    .filter(|&v| v <= u32::MAX as u64)
                    .map(|v| v as u32)
                    .ok_or_else(|| format!("bad token id {t:?}"))
            })
            .collect()
    };
    if let Some(tokens) = doc.get("tokens") {
        return Ok(vec![tokens_of(tokens)?]);
    }
    let texts = doc
        .get("texts")
        .and_then(Json::as_array)
        .ok_or("missing \"tokens\": [ids] or \"texts\": [[ids], …]")?;
    if texts.is_empty() {
        return Err("\"texts\" is empty".to_string());
    }
    texts.iter().map(tokens_of).collect()
}

/// Maps a lane-search result into the protocol-agnostic reply parts,
/// classifying failures exactly as the pre-overlay single path did.
fn map_search_result(
    shared: &Shared,
    result: Result<SearchOutcome, QueryError>,
) -> Result<(SearchOutcome, Option<Resource>), SearchFail> {
    match result {
        Ok(outcome) => Ok((outcome, None)),
        Err(QueryError::BudgetExceeded { resource, partial }) => Ok((*partial, Some(resource))),
        Err(e @ (QueryError::EmptyQuery | QueryError::BadThreshold(_))) => {
            shared.metrics.bad_requests.inc(1);
            Err(SearchFail::BadRequest(e.to_string()))
        }
        Err(e @ QueryError::AllShardsQuarantined { .. }) => {
            shared.metrics.unavailable.inc(1);
            Err(SearchFail::Unavailable(e.to_string()))
        }
        Err(e) => {
            shared.metrics.internal_errors.inc(1);
            Err(SearchFail::Internal(e.to_string()))
        }
    }
}

fn execute_admitted(shared: &Shared, parsed: &ParsedSearch) -> Result<SearchReply, SearchFail> {
    shared.metrics.searches.inc(1);
    let started = Instant::now();
    let mut budget = QueryBudget::unlimited();
    if let Some(d) = shared.config.default_deadline {
        budget = budget.deadline_at(started + d);
    }
    if let Some(d) = parsed.deadline {
        budget = budget.time_limit(d);
    }
    if let Some(b) = parsed.max_io_bytes {
        budget = budget.max_io_bytes(b);
    }
    if let Some(c) = parsed.max_candidates {
        budget = budget.max_candidates(c);
    }
    if let Some(m) = parsed.max_matches {
        budget = budget.max_result_matches(m);
    }

    // One lock read yields both the view and its generation, so the reply
    // always reports exactly the manifest generation its results came from
    // — a reload racing this request can never produce a torn pairing.
    //
    // With ingest enabled, the pin happens *under* the memtable lock, and
    // a view that lags the store's published coverage is reloaded first.
    // Both halves matter: a compaction between a bare pin and the lock
    // would drop a segment the stale view doesn't serve yet, silently
    // losing its texts; pinning under the lock makes snapshot + segments
    // mutually consistent, and the reload-on-lag heals the window where a
    // compaction published but its hot-swap failed or hasn't landed. The
    // per-segment exactness rule (overlay a segment iff its base is ≥ the
    // snapshot's text count) lives in `OverlaySearcher::push_segment`.
    let (outcome, exhausted, matches, generation) = if let Some(ingest) = &shared.ingest {
        let guard = ingest.lock().unwrap();
        let (mut snapshot, mut generation) = shared.serving.pinned();
        if (snapshot.num_texts() as u64) < guard.covered() {
            shared
                .serving
                .reload()
                .map_err(|e| SearchFail::Internal(e.to_string()))?;
            (snapshot, generation) = shared.serving.pinned();
        }
        let searcher = snapshot
            .searcher_with_filter(shared.config.filter)
            .map_err(|e| SearchFail::Internal(e.to_string()))?
            .fault_policy(FaultPolicy::Isolate);
        let (k, t) = {
            let cfg = snapshot.config();
            (cfg.k, cfg.t as u32)
        };
        let mut overlay = OverlaySearcher::new(Some(searcher), snapshot.num_texts() as u64, k, t);
        for segment in guard.segments() {
            overlay
                .push_segment(segment)
                .map_err(|e| SearchFail::Internal(e.to_string()))?;
        }
        let (outcome, exhausted) = map_search_result(
            shared,
            overlay.search_governed(&parsed.query, parsed.theta, &budget),
        )?;
        let matches = overlay.rank(&outcome, parsed.top);
        (outcome, exhausted, matches, generation.unwrap_or(0))
    } else {
        // Serving runs under the isolating fault policy: a sick shard is
        // contained by its circuit breaker and reported as a degraded
        // range instead of failing the whole request.
        let (snapshot, generation) = shared.serving.pinned();
        let searcher = snapshot
            .searcher_with_filter(shared.config.filter)
            .map_err(|e| SearchFail::Internal(e.to_string()))?
            .fault_policy(FaultPolicy::Isolate);
        let (outcome, exhausted) = map_search_result(
            shared,
            searcher.search_governed(&parsed.query, parsed.theta, &budget),
        )?;
        let matches = searcher.rank(&outcome, parsed.top);
        (outcome, exhausted, matches, generation.unwrap_or(0))
    };
    if !outcome.degraded.is_empty() {
        shared.metrics.degraded.inc(1);
    }
    Ok(SearchReply {
        complete: outcome.complete,
        exhausted,
        generation,
        beta: outcome.beta,
        num_texts: outcome.num_texts(),
        total_sequences: outcome.total_sequences(),
        matches,
        io_bytes: outcome.stats.io_bytes,
        postings_read: outcome.stats.postings_read,
        wall: started.elapsed(),
        degraded: outcome.degraded,
    })
}
