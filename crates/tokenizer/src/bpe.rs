//! The trained BPE tokenizer: encoding, decoding, (de)serialization.
//!
//! Encoding a word applies the learned merges in *rank order*: at each step
//! the adjacent pair with the lowest merge rank present in the word is
//! merged, exactly as at training time, which makes encoding deterministic
//! and consistent with the learned vocabulary. A per-word cache makes
//! re-encoding large corpora (where word distributions are Zipfian) fast.

use std::collections::HashMap;
use std::path::Path;
use std::sync::Mutex;

use ndss_json::Json;

use crate::pretokenize::split_words;
use crate::vocab::Vocab;
use crate::TokenizerError;

/// Serialized form of a tokenizer: `{"format_version":1,"merges":[[a,b],…]}`.
/// The vocab is reconstructible from merges, so only the merge list is
/// stored.
struct TokenizerFile {
    format_version: u32,
    merges: Vec<(u32, u32)>,
}

impl TokenizerFile {
    fn to_json(&self) -> Json {
        Json::Object(vec![
            (
                "format_version".to_string(),
                Json::UInt(self.format_version as u64),
            ),
            (
                "merges".to_string(),
                Json::Array(
                    self.merges
                        .iter()
                        .map(|&(a, b)| {
                            Json::Array(vec![Json::UInt(a as u64), Json::UInt(b as u64)])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    fn from_json(doc: &Json) -> Result<Self, TokenizerError> {
        let malformed = |what: &str| TokenizerError::Malformed(what.to_string());
        let format_version =
            doc.get("format_version")
                .and_then(Json::as_u64)
                .ok_or_else(|| malformed("missing format_version"))? as u32;
        let mut merges = Vec::new();
        for pair in doc
            .get("merges")
            .and_then(Json::as_array)
            .ok_or_else(|| malformed("missing merges array"))?
        {
            let pair = pair.as_array().ok_or_else(|| malformed("merge entry"))?;
            let [a, b] = pair else {
                return Err(malformed("merge entry must hold two ids"));
            };
            let (Some(a), Some(b)) = (a.as_u64(), b.as_u64()) else {
                return Err(malformed("merge ids must be non-negative integers"));
            };
            if a > u32::MAX as u64 || b > u32::MAX as u64 {
                return Err(malformed("merge id exceeds u32"));
            }
            merges.push((a as u32, b as u32));
        }
        Ok(TokenizerFile {
            format_version,
            merges,
        })
    }
}

/// A trained byte-pair-encoding tokenizer.
pub struct BpeTokenizer {
    vocab: Vocab,
    merges: Vec<(u32, u32)>,
    /// rank of each merge pair; lower rank = applied earlier.
    ranks: HashMap<(u32, u32), u32>,
    /// Cache of word → encoded ids. Mutex-guarded so `encode(&self)` stays
    /// shareable across threads; contention is negligible next to the work.
    cache: Mutex<HashMap<String, Vec<u32>>>,
}

impl std::fmt::Debug for BpeTokenizer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BpeTokenizer")
            .field("vocab_size", &self.vocab.len())
            .field("merges", &self.merges.len())
            .finish()
    }
}

impl BpeTokenizer {
    /// Assembles a tokenizer from a vocabulary and its merge list (the
    /// trainer's output). The merge list must be consistent with the vocab:
    /// merge `i` must have produced id `256 + i`.
    pub fn from_parts(vocab: Vocab, merges: Vec<(u32, u32)>) -> Self {
        debug_assert_eq!(vocab.len(), 256 + merges.len());
        let ranks = merges
            .iter()
            .enumerate()
            .map(|(i, &p)| (p, i as u32))
            .collect();
        Self {
            vocab,
            merges,
            ranks,
            cache: Mutex::new(HashMap::new()),
        }
    }

    /// Rebuilds a tokenizer from just its merge list.
    pub fn from_merges(merges: Vec<(u32, u32)>) -> Self {
        let mut vocab = Vocab::base();
        for &(a, b) in &merges {
            vocab.push_merge(a, b);
        }
        Self::from_parts(vocab, merges)
    }

    /// The vocabulary.
    pub fn vocab(&self) -> &Vocab {
        &self.vocab
    }

    /// The learned merges in rank order.
    pub fn merges(&self) -> &[(u32, u32)] {
        &self.merges
    }

    /// Total vocabulary size (base bytes + merges).
    pub fn vocab_size(&self) -> usize {
        self.vocab.len()
    }

    /// Encodes one word (no further splitting) into token ids.
    fn encode_word(&self, word: &str) -> Vec<u32> {
        if let Some(hit) = self.cache.lock().expect("cache poisoned").get(word) {
            return hit.clone();
        }
        let mut toks: Vec<u32> = word.bytes().map(u32::from).collect();
        // Repeatedly merge the lowest-rank adjacent pair present.
        while toks.len() >= 2 {
            let mut best: Option<(u32, usize)> = None;
            for i in 0..toks.len() - 1 {
                if let Some(&rank) = self.ranks.get(&(toks[i], toks[i + 1])) {
                    if best.is_none_or(|(r, _)| rank < r) {
                        best = Some((rank, i));
                    }
                }
            }
            let Some((rank, _)) = best else { break };
            let pair = self.merges[rank as usize];
            let new_id = 256 + rank;
            // Merge every occurrence of the pair (left-to-right), as in
            // training.
            let mut merged = Vec::with_capacity(toks.len());
            let mut i = 0;
            while i < toks.len() {
                if i + 1 < toks.len() && toks[i] == pair.0 && toks[i + 1] == pair.1 {
                    merged.push(new_id);
                    i += 2;
                } else {
                    merged.push(toks[i]);
                    i += 1;
                }
            }
            toks = merged;
        }
        self.cache
            .lock()
            .expect("cache poisoned")
            .insert(word.to_owned(), toks.clone());
        toks
    }

    /// Encodes raw text into token ids.
    pub fn encode(&self, text: &str) -> Vec<u32> {
        let mut out = Vec::with_capacity(text.len() / 3);
        for word in split_words(text) {
            out.extend(self.encode_word(word));
        }
        out
    }

    /// Decodes token ids back to text. Exact inverse of [`Self::encode`] for
    /// valid UTF-8 inputs.
    pub fn decode(&self, ids: &[u32]) -> String {
        self.vocab
            .decode(ids)
            .expect("ids produced by this tokenizer")
    }

    /// Decodes, reporting out-of-vocabulary ids instead of panicking.
    pub fn try_decode(&self, ids: &[u32]) -> Result<String, TokenizerError> {
        self.vocab.decode(ids)
    }

    /// Saves the tokenizer to a JSON file.
    pub fn save(&self, path: &Path) -> Result<(), TokenizerError> {
        let doc = TokenizerFile {
            format_version: 1,
            merges: self.merges.clone(),
        }
        .to_json();
        std::fs::write(path, doc.to_string_compact())?;
        Ok(())
    }

    /// Loads a tokenizer saved by [`Self::save`].
    pub fn load(path: &Path) -> Result<Self, TokenizerError> {
        let text = std::fs::read_to_string(path)?;
        let doc = Json::parse(&text).map_err(|e| TokenizerError::Malformed(e.to_string()))?;
        let parsed = TokenizerFile::from_json(&doc)?;
        if parsed.format_version != 1 {
            return Err(TokenizerError::Malformed(format!(
                "unsupported tokenizer format version {}",
                parsed.format_version
            )));
        }
        for (i, &(a, b)) in parsed.merges.iter().enumerate() {
            let limit = 256 + i as u32;
            if a >= limit || b >= limit {
                return Err(TokenizerError::Malformed(format!(
                    "merge {i} references future id ({a}, {b})"
                )));
            }
        }
        Ok(Self::from_merges(parsed.merges))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trainer::BpeTrainer;

    fn sample_tokenizer() -> BpeTokenizer {
        let corpus = [
            "the cat sat on the mat",
            "the cat ate the rat",
            "a cat and a rat and a mat",
        ];
        BpeTrainer::new(300).train(corpus.iter().copied())
    }

    #[test]
    fn encode_decode_roundtrip() {
        let tok = sample_tokenizer();
        for text in [
            "the cat sat",
            "unseen words also roundtrip",
            "punctuation!? and\nnewlines",
            "",
            "  spaces  everywhere  ",
        ] {
            assert_eq!(tok.decode(&tok.encode(text)), text);
        }
    }

    #[test]
    fn merges_compress() {
        let tok = sample_tokenizer();
        let text = "the cat sat on the mat";
        let ids = tok.encode(text);
        assert!(
            ids.len() < text.len(),
            "learned merges should beat byte-level encoding: {} vs {}",
            ids.len(),
            text.len()
        );
    }

    #[test]
    fn encoding_is_deterministic_and_cached() {
        let tok = sample_tokenizer();
        let a = tok.encode("the cat sat on the mat");
        let b = tok.encode("the cat sat on the mat");
        assert_eq!(a, b);
    }

    #[test]
    fn save_load_roundtrip() {
        let tok = sample_tokenizer();
        let dir = std::env::temp_dir().join("ndss_tok_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("tok.json");
        tok.save(&path).unwrap();
        let loaded = BpeTokenizer::load(&path).unwrap();
        assert_eq!(loaded.merges(), tok.merges());
        let text = "the cat ate the rat";
        assert_eq!(loaded.encode(text), tok.encode(text));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn load_rejects_inconsistent_merges() {
        let dir = std::env::temp_dir().join("ndss_tok_test_bad");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.json");
        std::fs::write(&path, r#"{"format_version":1,"merges":[[999,5]]}"#).unwrap();
        assert!(matches!(
            BpeTokenizer::load(&path),
            Err(TokenizerError::Malformed(_))
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn unknown_bytes_fall_back_to_base_vocab() {
        let tok = sample_tokenizer();
        let text = "§ unicode ¶ never seen ☃";
        assert_eq!(tok.decode(&tok.encode(text)), text);
    }

    #[test]
    fn vocab_size_accounts_for_merges() {
        let tok = sample_tokenizer();
        assert_eq!(tok.vocab_size(), 256 + tok.merges().len());
    }
}
