//! A from-scratch byte-pair-encoding (BPE) tokenizer.
//!
//! The paper tokenizes its corpora with BPE before indexing: OpenWebText with
//! a freshly trained 64K-vocabulary BPE model, The Pile with the 50,257-token
//! GPT-2 tokenizer (§4, "BPE Tokenization"). The search algorithms themselves
//! only ever see `u32` token ids, but the memorization evaluation needs to
//! *decode* matches back to human-readable text (Table 1), and the example
//! programs tokenize raw text end-to-end — so the tokenizer is a real
//! substrate, not a stub.
//!
//! Components:
//!
//! * [`pretokenize`] — splits raw text into *words* (maximal non-whitespace
//!   runs with their leading space attached, GPT-2 style) so that BPE merges
//!   never cross word boundaries.
//! * [`vocab::Vocab`] — the id ↔ byte-string mapping. The base vocabulary is
//!   the 256 single bytes; learned merges append new ids.
//! * [`trainer::BpeTrainer`] — learns merge rules from raw text by iterated
//!   most-frequent-pair merging over a word-frequency dictionary.
//! * [`bpe::BpeTokenizer`] — applies the learned merges to encode text to
//!   token ids and decodes ids back to text; serializes to / from JSON.
//!
//! # Example
//!
//! ```
//! use ndss_tokenizer::{BpeTrainer, BpeTokenizer};
//!
//! let corpus = ["the cat sat on the mat", "the cat ate the rat"];
//! let tokenizer = BpeTrainer::new(300).train(corpus.iter().copied());
//! let ids = tokenizer.encode("the cat sat");
//! assert_eq!(tokenizer.decode(&ids), "the cat sat");
//! ```

pub mod bpe;
pub mod pretokenize;
pub mod trainer;
pub mod vocab;

pub use bpe::BpeTokenizer;
pub use trainer::BpeTrainer;
pub use vocab::Vocab;

/// Errors produced while loading or using a tokenizer.
#[derive(Debug)]
pub enum TokenizerError {
    /// A serialized tokenizer file could not be parsed.
    Malformed(String),
    /// An id outside the vocabulary was passed to `decode`.
    OutOfVocabulary(u32, usize),
    /// Underlying IO failure.
    Io(std::io::Error),
}

impl std::fmt::Display for TokenizerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TokenizerError::Malformed(msg) => write!(f, "malformed tokenizer file: {msg}"),
            TokenizerError::OutOfVocabulary(id, size) => {
                write!(f, "token id {id} is out of vocabulary (size {size})")
            }
            TokenizerError::Io(e) => e.fmt(f),
        }
    }
}

impl std::error::Error for TokenizerError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TokenizerError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for TokenizerError {
    fn from(e: std::io::Error) -> Self {
        TokenizerError::Io(e)
    }
}
