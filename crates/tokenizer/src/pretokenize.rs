//! Pre-tokenization: raw text → words.
//!
//! BPE merges are learned and applied *within* words only, so the first step
//! of both training and encoding is a deterministic split of the input into
//! words. We follow the GPT-2 convention of attaching a single leading space
//! to the word that follows it (so `"the cat"` becomes `["the", " cat"]`),
//! which lets decoding be exact concatenation. Newlines and other whitespace
//! runs are emitted as standalone words so that no byte of the input is lost.

/// Splits `text` into pre-tokenization words.
///
/// Properties (tested below):
/// * concatenating the returned words reproduces `text` byte-for-byte;
/// * no word is empty;
/// * a word is either (a) an optional single space followed by a maximal run
///   of non-whitespace bytes, or (b) a maximal run of whitespace (minus any
///   single space donated to a following word).
pub fn split_words(text: &str) -> Vec<&str> {
    let bytes = text.as_bytes();
    let mut words = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let start = i;
        if bytes[i].is_ascii_whitespace() {
            // Consume the whitespace run.
            while i < bytes.len() && bytes[i].is_ascii_whitespace() {
                i += 1;
            }
            // Donate one trailing plain space to a following non-space word.
            let donate = i < bytes.len() && bytes[i - 1] == b' ';
            let end = if donate { i - 1 } else { i };
            if end > start {
                words.push(&text[start..end]);
            }
            if donate {
                let word_start = i - 1;
                while i < bytes.len() && !bytes[i].is_ascii_whitespace() {
                    i += 1;
                }
                words.push(&text[word_start..i]);
            }
        } else {
            while i < bytes.len() && !bytes[i].is_ascii_whitespace() {
                i += 1;
            }
            words.push(&text[start..i]);
        }
    }
    words
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(text: &str) {
        let words = split_words(text);
        assert_eq!(words.concat(), text, "words {words:?}");
        assert!(words.iter().all(|w| !w.is_empty()));
    }

    #[test]
    fn simple_sentence() {
        assert_eq!(split_words("the cat sat"), vec!["the", " cat", " sat"]);
    }

    #[test]
    fn leading_space_attaches_forward() {
        assert_eq!(split_words(" hello"), vec![" hello"]);
    }

    #[test]
    fn multiple_spaces_split_off_extra() {
        assert_eq!(split_words("a  b"), vec!["a", " ", " b"]);
        assert_eq!(split_words("a   b"), vec!["a", "  ", " b"]);
    }

    #[test]
    fn newlines_are_standalone() {
        assert_eq!(split_words("a\nb"), vec!["a", "\n", "b"]);
        assert_eq!(split_words("a\n b"), vec!["a", "\n", " b"]);
        assert_eq!(split_words("a \nb"), vec!["a", " \n", "b"]);
    }

    #[test]
    fn concatenation_is_lossless() {
        roundtrip("");
        roundtrip("x");
        roundtrip("  leading and trailing  ");
        roundtrip("tabs\tand\nnewlines \t mixed");
        roundtrip("unicode: naïve café 北京 🚀 end");
        roundtrip("   ");
    }

    #[test]
    fn empty_input() {
        assert!(split_words("").is_empty());
    }

    #[test]
    fn trailing_space_stays_with_whitespace_run() {
        assert_eq!(split_words("a "), vec!["a", " "]);
    }
}
