//! BPE training: learning merge rules from raw text.
//!
//! Classic Sennrich-style training over a word-frequency dictionary: the
//! corpus is pre-tokenized into words, each word starts as its byte sequence,
//! and the most frequent adjacent token pair (weighted by word frequency) is
//! merged into a new token until the target vocabulary size is reached or no
//! pair occurs at least twice. Pair counts are maintained incrementally —
//! only words containing the merged pair are rewritten — so training a 64K
//! vocabulary over millions of words stays tractable (the paper trained a
//! 64K-vocab model over 1M OpenWebText documents, §4).

use std::collections::HashMap;

use crate::bpe::BpeTokenizer;
use crate::pretokenize::split_words;
use crate::vocab::Vocab;

/// Configuration + driver for BPE training.
#[derive(Debug, Clone)]
pub struct BpeTrainer {
    vocab_size: usize,
    min_pair_count: u64,
}

impl BpeTrainer {
    /// A trainer targeting the given total vocabulary size (including the
    /// 256 base byte tokens). Sizes below 256 train no merges.
    pub fn new(vocab_size: usize) -> Self {
        Self {
            vocab_size,
            min_pair_count: 2,
        }
    }

    /// Sets the minimum weighted count a pair must reach to be merged
    /// (default 2: never learn a merge witnessed only once).
    pub fn min_pair_count(mut self, count: u64) -> Self {
        self.min_pair_count = count.max(1);
        self
    }

    /// Trains a tokenizer from an iterator of raw texts.
    pub fn train<'a, I: IntoIterator<Item = &'a str>>(&self, texts: I) -> BpeTokenizer {
        // 1. Word-frequency dictionary.
        let mut word_freq: HashMap<&str, u64> = HashMap::new();
        for text in texts {
            for word in split_words(text) {
                *word_freq.entry(word).or_insert(0) += 1;
            }
        }

        // 2. Each distinct word as a token-id sequence, with its frequency.
        let mut words: Vec<(Vec<u32>, u64)> = word_freq
            .into_iter()
            .map(|(w, f)| (w.bytes().map(u32::from).collect(), f))
            .collect();
        // Deterministic processing order regardless of hash-map iteration.
        words.sort_unstable();

        let mut vocab = Vocab::base();
        let mut merges: Vec<(u32, u32)> = Vec::new();

        // 3. Global pair counts and which words contain each pair.
        let mut pair_counts: HashMap<(u32, u32), u64> = HashMap::new();
        let mut pair_words: HashMap<(u32, u32), Vec<u32>> = HashMap::new();
        for (wi, (toks, f)) in words.iter().enumerate() {
            for pair in toks.windows(2) {
                let key = (pair[0], pair[1]);
                *pair_counts.entry(key).or_insert(0) += f;
                pair_words.entry(key).or_default().push(wi as u32);
            }
        }

        while vocab.len() < self.vocab_size {
            // Most frequent pair; ties break toward the smaller pair so the
            // result is independent of hash-map order.
            let Some((&best_pair, &count)) = pair_counts
                .iter()
                .max_by(|a, b| a.1.cmp(b.1).then_with(|| b.0.cmp(a.0)))
            else {
                break;
            };
            if count < self.min_pair_count {
                break;
            }
            let new_id = vocab.push_merge(best_pair.0, best_pair.1);
            merges.push(best_pair);

            // Rewrite only the words that contain the pair, updating counts
            // incrementally.
            let mut touched = pair_words.remove(&best_pair).unwrap_or_default();
            touched.sort_unstable();
            touched.dedup();
            pair_counts.remove(&best_pair);
            for wi in touched {
                let (toks, f) = &mut words[wi as usize];
                let f = *f;
                // Remove this word's contribution to all its current pairs.
                for pair in toks.windows(2) {
                    let key = (pair[0], pair[1]);
                    if let Some(c) = pair_counts.get_mut(&key) {
                        *c = c.saturating_sub(f);
                        if *c == 0 {
                            pair_counts.remove(&key);
                        }
                    }
                }
                // Apply the merge within the word.
                let mut merged = Vec::with_capacity(toks.len());
                let mut i = 0;
                while i < toks.len() {
                    if i + 1 < toks.len() && toks[i] == best_pair.0 && toks[i + 1] == best_pair.1 {
                        merged.push(new_id);
                        i += 2;
                    } else {
                        merged.push(toks[i]);
                        i += 1;
                    }
                }
                *toks = merged;
                // Add back the word's new pairs.
                for pair in toks.windows(2) {
                    let key = (pair[0], pair[1]);
                    *pair_counts.entry(key).or_insert(0) += f;
                    pair_words.entry(key).or_default().push(wi);
                }
            }
        }

        BpeTokenizer::from_parts(vocab, merges)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_frequent_pairs_first() {
        // "aaaa..." makes ('a','a') the overwhelmingly most frequent pair.
        let text = "aaaaaaaa aaaaaaaa aaaaaaaa";
        let tok = BpeTrainer::new(257).train([text]);
        assert_eq!(tok.merges().len(), 1);
        assert_eq!(tok.merges()[0], (b'a' as u32, b'a' as u32));
    }

    #[test]
    fn respects_vocab_size_budget() {
        let corpus = ["the quick brown fox jumps over the lazy dog"; 10];
        let tok = BpeTrainer::new(280).train(corpus.iter().copied());
        assert!(tok.vocab().len() <= 280);
        assert!(tok.vocab().len() > 256, "should learn at least one merge");
    }

    #[test]
    fn no_merges_below_min_count() {
        // Every pair occurs exactly once: nothing to learn with default
        // min_pair_count = 2.
        let tok = BpeTrainer::new(1000).train(["abcdefg"]);
        assert!(tok.merges().is_empty());
    }

    #[test]
    fn training_is_deterministic() {
        let corpus = [
            "near duplicate sequence search at scale",
            "sequence search with minhash sketches",
            "near duplicate detection for language models",
        ];
        let a = BpeTrainer::new(300).train(corpus.iter().copied());
        let b = BpeTrainer::new(300).train(corpus.iter().copied());
        assert_eq!(a.merges(), b.merges());
    }

    #[test]
    fn merges_do_not_cross_word_boundaries() {
        // 'x y' repeated: the pair (x, space) never forms because the space
        // belongs to the following word.
        let tok = BpeTrainer::new(400).train(["x y x y x y x y"]);
        for &(a, b) in tok.merges() {
            let bytes_a = tok.vocab().bytes_of(a).unwrap();
            let bytes_b = tok.vocab().bytes_of(b).unwrap();
            // No learned token may contain a space in a non-leading position,
            // which would indicate a cross-word merge.
            let mut joined = bytes_a.to_vec();
            joined.extend_from_slice(bytes_b);
            assert!(!joined[1..].contains(&b' '), "cross-word merge {joined:?}");
        }
    }
}
