//! Vocabulary: the bidirectional mapping between token ids and byte strings.
//!
//! Ids `0..256` are the single bytes (the *base vocabulary*), so any input is
//! encodable. Learned BPE merges append ids `256, 257, …`, each denoting the
//! concatenation of two earlier tokens. The vocabulary therefore grows
//! append-only and every id's byte string is fixed at creation.

use std::collections::HashMap;

use crate::TokenizerError;

/// A token vocabulary. Construct via [`Vocab::base`] and [`Vocab::push_merge`]
/// (the trainer does this) or rebuild a trained one from its merge list.
#[derive(Debug, Clone)]
pub struct Vocab {
    /// `bytes[id]` is the byte string token `id` stands for.
    tokens: Vec<Vec<u8>>,
    /// Reverse map for exact-token lookups (used by tests and tools).
    /// Derived from `tokens`; not part of any serialized form.
    reverse: HashMap<Vec<u8>, u32>,
}

impl Vocab {
    /// The 256-entry byte-level base vocabulary.
    pub fn base() -> Self {
        let tokens: Vec<Vec<u8>> = (0u16..256).map(|b| vec![b as u8]).collect();
        let mut vocab = Self {
            tokens,
            reverse: HashMap::new(),
        };
        vocab.rebuild_reverse();
        vocab
    }

    fn rebuild_reverse(&mut self) {
        self.reverse = self
            .tokens
            .iter()
            .enumerate()
            .map(|(i, t)| (t.clone(), i as u32))
            .collect();
    }

    /// Re-creates the reverse map after reconstructing the token table from
    /// a serialized form (which stores only `tokens`).
    pub fn finalize_after_deserialize(&mut self) {
        self.rebuild_reverse();
    }

    /// Appends a merged token formed from ids `a` and `b`; returns the new id.
    ///
    /// # Panics
    /// Panics if either id is out of range.
    pub fn push_merge(&mut self, a: u32, b: u32) -> u32 {
        let mut bytes = self.tokens[a as usize].clone();
        bytes.extend_from_slice(&self.tokens[b as usize]);
        let id = self.tokens.len() as u32;
        self.reverse.entry(bytes.clone()).or_insert(id);
        self.tokens.push(bytes);
        id
    }

    /// Number of tokens in the vocabulary.
    pub fn len(&self) -> usize {
        self.tokens.len()
    }

    /// A vocabulary always contains at least the 256 base bytes.
    pub fn is_empty(&self) -> bool {
        self.tokens.is_empty()
    }

    /// The byte string of token `id`.
    pub fn bytes_of(&self, id: u32) -> Result<&[u8], TokenizerError> {
        self.tokens
            .get(id as usize)
            .map(|v| v.as_slice())
            .ok_or(TokenizerError::OutOfVocabulary(id, self.tokens.len()))
    }

    /// Looks up the id of an exact byte string, if present.
    pub fn id_of(&self, bytes: &[u8]) -> Option<u32> {
        self.reverse.get(bytes).copied()
    }

    /// Decodes a sequence of ids into a string (invalid UTF-8 is replaced).
    pub fn decode(&self, ids: &[u32]) -> Result<String, TokenizerError> {
        let mut out = Vec::new();
        for &id in ids {
            out.extend_from_slice(self.bytes_of(id)?);
        }
        Ok(String::from_utf8_lossy(&out).into_owned())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base_has_256_byte_tokens() {
        let v = Vocab::base();
        assert_eq!(v.len(), 256);
        assert_eq!(v.bytes_of(65).unwrap(), b"A");
        assert_eq!(v.id_of(b"A"), Some(65));
    }

    #[test]
    fn merge_concatenates() {
        let mut v = Vocab::base();
        let th = v.push_merge(b't' as u32, b'h' as u32);
        assert_eq!(th, 256);
        assert_eq!(v.bytes_of(th).unwrap(), b"th");
        let the = v.push_merge(th, b'e' as u32);
        assert_eq!(v.bytes_of(the).unwrap(), b"the");
        assert_eq!(v.id_of(b"the"), Some(the));
    }

    #[test]
    fn decode_concatenates_and_reports_bad_ids() {
        let mut v = Vocab::base();
        let hi = v.push_merge(b'h' as u32, b'i' as u32);
        assert_eq!(v.decode(&[hi, b'!' as u32]).unwrap(), "hi!");
        assert!(matches!(
            v.decode(&[9999]),
            Err(TokenizerError::OutOfVocabulary(9999, _))
        ));
    }

    #[test]
    fn finalize_rebuilds_reverse_map() {
        let mut v = Vocab::base();
        v.push_merge(b'a' as u32, b'b' as u32);
        // Simulate a vocabulary reconstructed from storage: the token table
        // survives, the derived reverse map does not.
        let mut back = Vocab {
            tokens: v.tokens.clone(),
            reverse: HashMap::new(),
        };
        assert_eq!(back.id_of(b"ab"), None);
        back.finalize_after_deserialize();
        assert_eq!(back.len(), v.len());
        assert_eq!(back.id_of(b"ab"), Some(256));
    }
}
