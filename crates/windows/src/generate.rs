//! The compact-window generators.
//!
//! All generators consume the array of *position hashes*
//! `hashes[p] = f(T[p])` and a length threshold `t ≥ 1`, and produce every
//! valid compact window — `(l, c, r)` with `r − l + 1 ≥ t` where `c` is the
//! leftmost minimum of `hashes[l..=r]` and the window arises from the
//! divide-and-conquer of Algorithm 2. Ties break leftmost, making output
//! deterministic (the paper permits arbitrary tie-breaking).
//!
//! Output order is unspecified and differs between generators; callers that
//! need a canonical order sort (tests do).

use ndss_rmq::{BlockRmq, CartesianTree, RangeArgmin};

use ndss_hash::{HashValue, MinHasher, TokenId};

use crate::{CompactWindow, HashedWindow};

/// Paper Algorithm 2, faithfully: divide-and-conquer with an RMQ structure,
/// `O(n)`-ish with the block RMQ (the paper's "advanced RMQ" slot). The
/// recursion is run on an explicit work stack so monotone hash arrays (depth
/// `n`) cannot overflow the call stack.
pub fn generate_recursive(hashes: &[HashValue], t: usize, out: &mut Vec<HashedWindow>) {
    assert!(t >= 1, "length threshold must be at least 1");
    if hashes.len() < t {
        return;
    }
    let rmq = BlockRmq::new(hashes);
    // Work stack of (l, r) inclusive sub-ranges standing in for recursion.
    let mut stack: Vec<(u32, u32)> = vec![(0, (hashes.len() - 1) as u32)];
    while let Some((l, r)) = stack.pop() {
        // Line 1: stop when the input sequence is shorter than t.
        if ((r - l + 1) as usize) < t {
            continue;
        }
        // Line 2: the (leftmost) position with the minimum hash value.
        let c = rmq.argmin(l as usize, r as usize) as u32;
        // Line 3: emit the compact window (l, c, r).
        out.push(HashedWindow {
            hash: hashes[c as usize],
            window: CompactWindow::new(l, c, r),
        });
        // Lines 4–5: recurse on [l, c-1] and [c+1, r].
        if c > l {
            stack.push((l, c - 1));
        }
        if c < r {
            stack.push((c + 1, r));
        }
    }
}

/// The `O(n)` fast path: the Cartesian tree of the hash array *is* the
/// recursion tree of Algorithm 2 (each node's subtree span `[l, r]` with
/// pivot `c` is exactly one candidate window), so building it in linear time
/// and walking it with pruning yields the same window set with no RMQ
/// queries at all.
pub fn generate_cartesian(hashes: &[HashValue], t: usize, out: &mut Vec<HashedWindow>) {
    assert!(t >= 1, "length threshold must be at least 1");
    if hashes.len() < t {
        return;
    }
    let tree = CartesianTree::new(hashes);
    out.reserve(2 * hashes.len() / t + 1);
    tree.visit_spans(|l, c, r| {
        if r - l + 1 < t {
            // Every span in this subtree is narrower still: prune.
            return false;
        }
        out.push(HashedWindow {
            hash: hashes[c],
            window: CompactWindow::new(l as u32, c as u32, r as u32),
        });
        true
    });
}

/// Buffer-reusing generator used by the indexer: hashes a text's tokens
/// under one of the [`MinHasher`]'s functions, then runs the Cartesian-tree
/// generator. Reuses its internal hash buffer across calls so indexing a
/// million texts does not allocate a million arrays.
#[derive(Debug, Default)]
pub struct WindowGenerator {
    hash_buf: Vec<HashValue>,
}

impl WindowGenerator {
    /// A fresh generator (buffers grow on first use).
    pub fn new() -> Self {
        Self::default()
    }

    /// Generates the valid compact windows of `tokens` under hash function
    /// `func_idx` of `hasher`, appending them to `out`.
    pub fn generate(
        &mut self,
        hasher: &MinHasher,
        func_idx: usize,
        tokens: &[TokenId],
        t: usize,
        out: &mut Vec<HashedWindow>,
    ) {
        hasher.hash_positions_into(func_idx, tokens, &mut self.hash_buf);
        generate_cartesian(&self.hash_buf, t, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::check_partition_property;

    /// The paper's running example (Figure 1): 17 tokens whose hash values
    /// produce 5 valid windows at t = 5, matching `2·18/(5+1) − 1 = 5`.
    /// Hash values chosen so position 12 (0-based; paper's 13) is the global
    /// minimum and position 5 (paper's 6) the minimum of the left part.
    fn figure1_hashes() -> Vec<u64> {
        // positions:     0   1   2   3   4   5   6   7   8   9  10  11  12  13  14  15  16
        vec![
            55, 80, 62, 91, 47, 20, 30, 66, 88, 41, 95, 59, 10, 77, 84, 35, 93,
        ]
        // Recursion at t = 5: pivot 12 → (0,12,16); left part pivots at 5 →
        // (0,5,11); then (0,4,4), (6,6,11), (7,9,11). Total 5 windows,
        // matching the paper's Example 1 count 2·18/6 − 1 = 5.
    }

    fn sorted(mut v: Vec<HashedWindow>) -> Vec<HashedWindow> {
        v.sort_by_key(|hw| (hw.window.l, hw.window.c, hw.window.r));
        v
    }

    #[test]
    fn figure1_example_produces_expected_count() {
        let hashes = figure1_hashes();
        let mut out = Vec::new();
        generate_cartesian(&hashes, 5, &mut out);
        assert_eq!(out.len(), 5, "paper's Example 1 expects 5 valid windows");
        // The first division produces (1, 13, 17) in paper coordinates,
        // i.e. (0, 12, 16) in ours.
        assert!(out
            .iter()
            .any(|hw| hw.window == CompactWindow::new(0, 12, 16)));
        // And the left half divides at paper position 6 → (1, 6, 12)/(0,5,11).
        assert!(out
            .iter()
            .any(|hw| hw.window == CompactWindow::new(0, 5, 11)));
    }

    #[test]
    fn recursive_and_cartesian_agree() {
        for (seed, len) in [(1u64, 1usize), (2, 2), (3, 17), (4, 100), (5, 257)] {
            let hashes: Vec<u64> = (0..len as u64)
                .map(|i| {
                    // Deterministic pseudo-random with deliberate ties (mod).
                    (i.wrapping_add(seed).wrapping_mul(0x9E3779B97F4A7C15) >> 40) % 97
                })
                .collect();
            for t in [1usize, 2, 3, 5, 10, 50] {
                let mut a = Vec::new();
                let mut b = Vec::new();
                generate_recursive(&hashes, t, &mut a);
                generate_cartesian(&hashes, t, &mut b);
                assert_eq!(
                    sorted(a),
                    sorted(b),
                    "generators disagree at seed={seed} len={len} t={t}"
                );
            }
        }
    }

    #[test]
    fn windows_satisfy_partition_property() {
        let hashes = figure1_hashes();
        for t in [1usize, 3, 5, 8, 17] {
            let mut out = Vec::new();
            generate_cartesian(&hashes, t, &mut out);
            check_partition_property(&hashes, t, &out).unwrap();
        }
    }

    #[test]
    fn partition_holds_with_duplicate_tokens() {
        // Many ties: only 3 distinct hash values.
        let hashes: Vec<u64> = (0..60u64).map(|i| i % 3).collect();
        for t in [1usize, 4, 10, 30] {
            let mut out = Vec::new();
            generate_cartesian(&hashes, t, &mut out);
            check_partition_property(&hashes, t, &out).unwrap();
        }
    }

    #[test]
    fn short_text_produces_nothing() {
        let mut out = Vec::new();
        generate_cartesian(&[1, 2, 3], 4, &mut out);
        assert!(out.is_empty());
        generate_recursive(&[1, 2, 3], 4, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn t_equals_one_covers_every_position_as_pivot() {
        // With t = 1 the full recursion runs: exactly n windows, one per
        // pivot position.
        let hashes = figure1_hashes();
        let mut out = Vec::new();
        generate_cartesian(&hashes, 1, &mut out);
        assert_eq!(out.len(), hashes.len());
        let mut pivots: Vec<u32> = out.iter().map(|hw| hw.window.c).collect();
        pivots.sort_unstable();
        assert_eq!(pivots, (0..hashes.len() as u32).collect::<Vec<_>>());
    }

    #[test]
    fn emitted_hash_is_range_minimum() {
        let hashes = figure1_hashes();
        let mut out = Vec::new();
        generate_cartesian(&hashes, 3, &mut out);
        for hw in &out {
            let w = hw.window;
            let min = (w.l..=w.r).map(|p| hashes[p as usize]).min().unwrap();
            assert_eq!(hw.hash, min);
            assert_eq!(hashes[w.c as usize], min);
        }
    }

    #[test]
    fn monotone_arrays_do_not_overflow() {
        // Increasing hashes → recursion depth n in the naive formulation.
        let hashes: Vec<u64> = (0..100_000u64).collect();
        let mut out = Vec::new();
        generate_recursive(&hashes, 50_000, &mut out);
        let mut out2 = Vec::new();
        generate_cartesian(&hashes, 50_000, &mut out2);
        assert_eq!(sorted(out), sorted(out2));
    }

    #[test]
    fn window_generator_matches_direct_path() {
        let hasher = MinHasher::new(4, 9);
        let tokens: Vec<u32> = (0..200).map(|i| i % 37).collect();
        let mut gen = WindowGenerator::new();
        let mut a = Vec::new();
        gen.generate(&hasher, 2, &tokens, 10, &mut a);

        let mut hashes = Vec::new();
        hasher.hash_positions_into(2, &tokens, &mut hashes);
        let mut b = Vec::new();
        generate_cartesian(&hashes, 10, &mut b);
        assert_eq!(sorted(a), sorted(b));
    }
}
