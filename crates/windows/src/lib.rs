//! Compact-window generation (the paper's §3.3, Algorithm 2).
//!
//! A **compact window** `(l, c, r)` over a text `T` under a token hash
//! function `f` asserts that *every* sequence `T[i..=j]` with
//! `l ≤ i ≤ c ≤ j ≤ r` has min-hash `f(T[c])`, and that the window is
//! maximal. Generating one window therefore prices the min-hash of
//! `(c−l+1)·(r−c+1)` sequences at `O(1)` — this is what makes indexing all
//! `O(n²)` sequences of a text feasible.
//!
//! The paper's contribution over ALIGN is the **length threshold `t`**: only
//! *valid* windows with width `r − l + 1 ≥ t` are generated, because every
//! sequence of length ≥ t lies in a window of width ≥ t. Theorem 1 shows a
//! text of `n` distinct tokens yields only `2(n+1)/(t+1) − 1` valid windows
//! in expectation, and that the valid windows still cover every sequence of
//! length ≥ t exactly once.
//!
//! Three generators are provided, all producing identical window sets
//! (tested against each other and against a brute-force checker):
//!
//! * [`generate::generate_recursive`] — the paper's Algorithm 2 verbatim: a
//!   divide-and-conquer over RMQ queries (with an explicit work stack, so
//!   adversarially sorted hash arrays cannot overflow the call stack).
//! * [`generate::generate_cartesian`] — the `O(n)` fast path: builds the
//!   Cartesian tree of the hash array (its shape *is* the recursion tree of
//!   Algorithm 2) and walks it with pruning at spans narrower than `t`.
//! * [`generate::WindowGenerator`] — a reusable-buffer wrapper over the
//!   Cartesian path used by the indexer, including per-hash-function token
//!   hashing.
//!
//! [`theory`] holds the closed-form expectation and [`verify`] the
//! partition-property oracle used by unit, property, and integration tests.

pub mod generate;
pub mod theory;
pub mod verify;

pub use generate::{generate_cartesian, generate_recursive, WindowGenerator};

use ndss_hash::HashValue;

/// A compact window `(l, c, r)`: positions are 0-based, both ends inclusive,
/// with `l ≤ c ≤ r`. The token at `c` carries the minimum hash value in
/// `[l, r]` (leftmost on ties).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CompactWindow {
    /// Leftmost start position a covered sequence may have.
    pub l: u32,
    /// The pivot position holding the range-minimum hash.
    pub c: u32,
    /// Rightmost end position a covered sequence may have.
    pub r: u32,
}

impl CompactWindow {
    /// Creates a window; `l ≤ c ≤ r` is required.
    #[inline]
    pub fn new(l: u32, c: u32, r: u32) -> Self {
        debug_assert!(l <= c && c <= r, "invalid window ({l}, {c}, {r})");
        Self { l, c, r }
    }

    /// The window's width `r − l + 1` (the longest covered sequence).
    #[inline]
    pub fn width(&self) -> u32 {
        self.r - self.l + 1
    }

    /// Whether the sequence `[i, j]` is covered: `l ≤ i ≤ c ≤ j ≤ r`.
    #[inline]
    pub fn covers(&self, i: u32, j: u32) -> bool {
        self.l <= i && i <= self.c && self.c <= j && j <= self.r
    }

    /// Number of sequences this window represents.
    #[inline]
    pub fn sequences_covered(&self) -> u64 {
        (self.c - self.l + 1) as u64 * (self.r - self.c + 1) as u64
    }
}

/// A compact window annotated with its min-hash value — the record the
/// inverted index stores (`(T, l, c, r)` in list `hash`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HashedWindow {
    /// `f(T[c])`: the shared min-hash of all covered sequences.
    pub hash: HashValue,
    /// The window itself.
    pub window: CompactWindow,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_geometry() {
        let w = CompactWindow::new(2, 5, 9);
        assert_eq!(w.width(), 8);
        assert_eq!(w.sequences_covered(), 4 * 5);
        assert!(w.covers(2, 9));
        assert!(w.covers(5, 5));
        assert!(!w.covers(6, 9)); // starts right of the pivot
        assert!(!w.covers(2, 4)); // ends left of the pivot
        assert!(!w.covers(1, 9)); // starts left of the window
    }

    #[test]
    fn single_position_window() {
        let w = CompactWindow::new(3, 3, 3);
        assert_eq!(w.width(), 1);
        assert_eq!(w.sequences_covered(), 1);
        assert!(w.covers(3, 3));
    }
}
