//! Brute-force oracles for the compact-window guarantees (Theorem 1, part 2).
//!
//! These checkers are `O(n²)`–`O(n³)` and exist purely for tests and
//! property-based verification; production code never calls them.

use ndss_hash::HashValue;

use crate::HashedWindow;

/// Verifies the two window invariants over `hashes` for threshold `t`:
///
/// 1. **Partition**: every sequence `[i, j]` with `j − i + 1 ≥ t` is covered
///    by *exactly one* window, and every shorter sequence by *at most one*
///    (valid windows are a subset of the full partition, so short sequences
///    may or may not be covered but can never be double-covered).
/// 2. **Min-hash labeling**: each window's recorded hash equals the minimum
///    position hash over `[l, r]`, which is also the min over `[i, j]` for
///    every covered sequence.
///
/// Returns a description of the first violation, if any.
pub fn check_partition_property(
    hashes: &[HashValue],
    t: usize,
    windows: &[HashedWindow],
) -> Result<(), String> {
    let n = hashes.len();
    // Labeling first: cheap per window.
    for hw in windows {
        let w = hw.window;
        if w.r as usize >= n {
            return Err(format!("window {w:?} exceeds text length {n}"));
        }
        if (w.width() as usize) < t {
            return Err(format!("window {w:?} narrower than threshold {t}"));
        }
        let min = (w.l..=w.r)
            .map(|p| hashes[p as usize])
            .min()
            .expect("window non-empty");
        if hashes[w.c as usize] != min {
            return Err(format!(
                "window {w:?}: pivot hash {} is not the range minimum {min}",
                hashes[w.c as usize]
            ));
        }
        if hw.hash != min {
            return Err(format!(
                "window {w:?}: recorded hash {} differs from range minimum {min}",
                hw.hash
            ));
        }
    }
    // Coverage counts for every sequence.
    for i in 0..n {
        for j in i..n {
            let count = windows
                .iter()
                .filter(|hw| hw.window.covers(i as u32, j as u32))
                .count();
            let len = j - i + 1;
            if len >= t && count != 1 {
                return Err(format!(
                    "sequence [{i},{j}] (len {len} ≥ t={t}) covered {count} times"
                ));
            }
            if len < t && count > 1 {
                return Err(format!(
                    "short sequence [{i},{j}] covered {count} times (> 1)"
                ));
            }
        }
    }
    Ok(())
}

/// Brute-force min-hash of a sequence of position hashes (min over `[i, j]`).
/// The oracle for "what min-hash value should sequence `[i, j]` be filed
/// under".
pub fn bruteforce_sequence_minhash(hashes: &[HashValue], i: usize, j: usize) -> HashValue {
    hashes[i..=j].iter().copied().min().expect("non-empty")
}

/// Finds, by brute force, the unique window covering `[i, j]`, if any.
pub fn covering_window(windows: &[HashedWindow], i: u32, j: u32) -> Option<HashedWindow> {
    let mut found = None;
    for hw in windows {
        if hw.window.covers(i, j) {
            assert!(found.is_none(), "sequence [{i},{j}] covered twice");
            found = Some(*hw);
        }
    }
    found
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::generate_cartesian;
    use crate::CompactWindow;

    #[test]
    fn oracle_accepts_generated_windows() {
        let hashes: Vec<u64> = (0..80u64).map(|i| (i * 2654435761) % 101).collect();
        for t in [1usize, 5, 20] {
            let mut out = Vec::new();
            generate_cartesian(&hashes, t, &mut out);
            check_partition_property(&hashes, t, &out).unwrap();
        }
    }

    #[test]
    fn oracle_rejects_missing_window() {
        let hashes: Vec<u64> = vec![5, 1, 7, 3, 9, 2, 8, 4];
        let mut out = Vec::new();
        generate_cartesian(&hashes, 2, &mut out);
        let removed = out.split_off(out.len() - 1);
        assert!(!removed.is_empty());
        assert!(check_partition_property(&hashes, 2, &out).is_err());
    }

    #[test]
    fn oracle_rejects_wrong_pivot() {
        let hashes: Vec<u64> = vec![5, 1, 7];
        let bogus = vec![HashedWindow {
            hash: hashes[0],
            window: CompactWindow::new(0, 0, 2), // pivot 0 is not the min
        }];
        assert!(check_partition_property(&hashes, 3, &bogus).is_err());
    }

    #[test]
    fn oracle_rejects_narrow_window() {
        let hashes: Vec<u64> = vec![5, 1, 7, 2];
        let bogus = vec![HashedWindow {
            hash: 1,
            window: CompactWindow::new(1, 1, 1),
        }];
        assert!(check_partition_property(&hashes, 3, &bogus).is_err());
    }

    #[test]
    fn covering_window_finds_the_right_one() {
        let hashes: Vec<u64> = vec![9, 4, 8, 1, 7, 5, 6];
        let mut out = Vec::new();
        generate_cartesian(&hashes, 2, &mut out);
        let hw = covering_window(&out, 2, 5).expect("len-4 sequence must be covered");
        assert!(hw.window.covers(2, 5));
        assert_eq!(hw.hash, bruteforce_sequence_minhash(&hashes, 2, 5));
    }
}
