//! Property tests for Theorem 1 over seeded random inputs:
//!
//! 1. **Partition** — for arbitrary hash arrays (heavy ties and distinct
//!    alike), every sequence of length ≥ t is covered by exactly one valid
//!    compact window, shorter sequences by at most one, and each window's
//!    recorded hash is its range minimum (`check_partition_property` is the
//!    O(n²)–O(n³) oracle).
//! 2. **Expectation** — for distinct tokens with random hashes, the mean
//!    number of valid windows tracks the closed form `2(n+1)/(t+1) − 1`.
//!
//! Seeds are pinned so CI failures reproduce exactly.

use ndss_hash::SplitMix64;
use ndss_windows::theory::{expected_windows, expected_windows_recurrence};
use ndss_windows::verify::check_partition_property;
use ndss_windows::{generate_cartesian, generate_recursive};

#[test]
fn random_inputs_satisfy_partition_property() {
    let mut rng = SplitMix64::new(0xA11CE);
    for case in 0..150 {
        let n = 1 + (rng.next_u64() % 80) as usize;
        let t = 1 + (rng.next_u64() % 16) as usize;
        // Alternate tie-heavy and distinct hash arrays: duplicate hashes
        // exercise the tie-breaking that makes windows a partition.
        let range = if case % 2 == 0 { 24 } else { u64::MAX };
        let hashes: Vec<u64> = (0..n).map(|_| rng.next_u64() % range).collect();

        let mut cart = Vec::new();
        generate_cartesian(&hashes, t, &mut cart);
        check_partition_property(&hashes, t, &cart)
            .unwrap_or_else(|e| panic!("case {case} (n={n}, t={t}): {e}"));

        // Both generators must produce the identical window set.
        let mut rec = Vec::new();
        generate_recursive(&hashes, t, &mut rec);
        let key = |hw: &ndss_windows::HashedWindow| (hw.window.l, hw.window.c, hw.window.r);
        cart.sort_by_key(key);
        rec.sort_by_key(key);
        assert_eq!(cart, rec, "case {case} (n={n}, t={t}): generators differ");
    }
}

#[test]
fn every_long_sequence_covered_exactly_once_exhaustive_small() {
    // Exhaustive coverage check on every (i, j) pair for all n ≤ 12 with
    // fully adversarial tiny hash alphabets {0, 1, 2}.
    let mut rng = SplitMix64::new(0xBEE5);
    for n in 1..=12usize {
        for t in 1..=n {
            for _ in 0..20 {
                let hashes: Vec<u64> = (0..n).map(|_| rng.next_u64() % 3).collect();
                let mut out = Vec::new();
                generate_cartesian(&hashes, t, &mut out);
                for i in 0..n {
                    for j in i..n {
                        let covered = out
                            .iter()
                            .filter(|hw| hw.window.covers(i as u32, j as u32))
                            .count();
                        if j - i + 1 >= t {
                            assert_eq!(
                                covered, 1,
                                "n={n} t={t} [{i},{j}] covered {covered} times ({hashes:?})"
                            );
                        } else {
                            assert!(covered <= 1, "short [{i},{j}] covered {covered} times");
                        }
                    }
                }
            }
        }
    }
}

#[test]
fn mean_window_count_matches_theorem_1_closed_form() {
    // Distinct tokens ⇔ i.i.d. random hashes: the empirical mean count of
    // valid windows must track S_n = 2(n+1)/(t+1) − 1. The closed form is
    // independently cross-checked against the paper's recurrence.
    let mut rng = SplitMix64::new(0x7E01);
    for &(n, t, trials, tol) in &[
        (300usize, 5usize, 250usize, 0.04f64),
        (400, 25, 250, 0.05),
        (200, 50, 400, 0.08),
    ] {
        let closed = expected_windows(n, t);
        let rec = expected_windows_recurrence(n, t);
        assert!(
            (closed - rec).abs() < 1e-9 * closed,
            "closed form {closed} vs recurrence {rec} (n={n}, t={t})"
        );
        let mut total = 0usize;
        let mut out = Vec::new();
        for _ in 0..trials {
            let hashes: Vec<u64> = (0..n).map(|_| rng.next_u64()).collect();
            out.clear();
            generate_cartesian(&hashes, t, &mut out);
            total += out.len();
        }
        let mean = total as f64 / trials as f64;
        let rel = (mean - closed).abs() / closed;
        assert!(
            rel < tol,
            "n={n} t={t}: empirical mean {mean:.2} vs 2(n+1)/(t+1)−1 = {closed:.2} (rel {rel:.3})"
        );
    }
}
