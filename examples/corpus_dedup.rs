//! Corpus deduplication audit: find texts that contain near-duplicate
//! sequences of *other* texts in the same corpus.
//!
//! This is the data-curation use case the paper motivates: training corpora
//! are full of near-duplicates, and duplicated training data is memorized
//! super-linearly. The audit slides windows over a sample of texts, queries
//! each window against the index of the whole corpus, and reports
//! cross-text near-duplicate regions.
//!
//! ```text
//! cargo run -p ndss-examples --release --example corpus_dedup
//! ```

use std::collections::BTreeMap;

use ndss::prelude::*;

fn main() {
    println!("generating corpus with injected near-duplicates…");
    let (corpus, planted) = SyntheticCorpusBuilder::new(4242)
        .num_texts(800)
        .text_len(250, 500)
        .vocab_size(16_000)
        .duplicates_per_text(0.4)
        .dup_len(80, 160)
        .mutation_rate(0.03)
        .build();
    println!(
        "  {} texts, {} tokens, {} planted copies (hidden from the audit)",
        corpus.num_texts(),
        corpus.total_tokens(),
        planted.len()
    );

    println!("indexing (k = 16, t = 50: only long duplications matter here)…");
    let index = CorpusIndex::build_in_memory_parallel(&corpus, SearchParams::new(16, 50, 3))
        .expect("index build");
    let searcher = index.searcher().expect("searcher");

    // Audit a sample of texts: slide non-overlapping 64-token windows.
    let audit_texts = 100usize;
    let window = 64usize;
    let theta = 0.8;
    println!("auditing the first {audit_texts} texts (window {window}, θ = {theta})…");

    // audited text -> set of other texts it shares near-duplicate regions with
    let mut duplicate_pairs: BTreeMap<TextId, Vec<TextId>> = BTreeMap::new();
    let mut audited_windows = 0usize;
    let mut flagged_windows = 0usize;
    for text_id in 0..audit_texts as TextId {
        let text = corpus.text_to_vec(text_id).expect("text");
        for (w, chunk) in text.chunks_exact(window).enumerate() {
            audited_windows += 1;
            let outcome = searcher.search(chunk, theta).expect("search");
            // Ignore the self-match: the window trivially matches its own text.
            let others: Vec<TextId> = outcome
                .matches
                .iter()
                .map(|m| m.text)
                .filter(|&t| t != text_id)
                .collect();
            if !others.is_empty() {
                flagged_windows += 1;
                let entry = duplicate_pairs.entry(text_id).or_default();
                for o in others {
                    if !entry.contains(&o) {
                        entry.push(o);
                    }
                }
            }
            let _ = w;
        }
    }

    println!(
        "\n{flagged_windows}/{audited_windows} windows have cross-text near-duplicates \
         ({:.1}%)",
        flagged_windows as f64 / audited_windows as f64 * 100.0
    );
    println!(
        "{} of the audited texts share near-duplicate regions with other texts",
        duplicate_pairs.len()
    );

    // Check the audit's findings against the hidden ground truth: how many
    // of the planted (src, dst) pairs involving audited texts were caught?
    let relevant: Vec<_> = planted
        .iter()
        .filter(|p| (p.dst.text as usize) < audit_texts && p.dst.span.len() >= window as u32)
        .collect();
    let caught = relevant
        .iter()
        .filter(|p| {
            duplicate_pairs
                .get(&p.dst.text)
                .is_some_and(|others| others.contains(&p.src.text))
        })
        .count();
    println!(
        "\nground truth: {caught}/{} planted long copies among audited texts were caught",
        relevant.len()
    );

    println!("\nsample findings:");
    for (text, others) in duplicate_pairs.iter().take(5) {
        println!("  text {text} shares near-duplicate regions with {others:?}");
    }
}
