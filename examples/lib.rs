//! Runnable examples for the `ndss` library.
//!
//! Each example is declared as an explicit `[[example]]` target in this
//! package's `Cargo.toml` and lives in a sibling `.rs` file:
//!
//! ```text
//! cargo run -p ndss-examples --release --example quickstart
//! cargo run -p ndss-examples --release --example memorization_eval
//! cargo run -p ndss-examples --release --example corpus_dedup
//! cargo run -p ndss-examples --release --example plagiarism_check
//! ```
