//! LLM memorization evaluation (the paper's §5 pipeline, scaled down).
//!
//! Trains n-gram language models of several capacities on a corpus, indexes
//! the corpus, generates texts from each model with top-50 sampling (the
//! paper's decoding strategy), slices the generations into fixed-width
//! query windows, and reports the fraction of windows with near-duplicates
//! in the training corpus — per threshold θ, per window width x, and per
//! model size, mirroring Figure 4.
//!
//! ```text
//! cargo run -p ndss-examples --release --example memorization_eval
//! ```

use ndss::prelude::*;

fn main() {
    // Training corpus with substantial internal duplication (web corpora
    // are 30–45% near-duplicate content, paper §1).
    println!("generating training corpus…");
    let (corpus, _) = SyntheticCorpusBuilder::new(99)
        .num_texts(600)
        .text_len(300, 600)
        .vocab_size(4_000)
        .duplicates_per_text(1.5)
        .dup_len(80, 200)
        .mutation_rate(0.0)
        .build();
    println!(
        "  {} texts, {} tokens",
        corpus.num_texts(),
        corpus.total_tokens()
    );

    println!("indexing (k = 32, t = 25)…");
    let index = CorpusIndex::build_in_memory_parallel(&corpus, SearchParams::new(32, 25, 21))
        .expect("index build");
    let searcher = index.searcher().expect("searcher");

    // "Model sizes": n-gram orders standing in for 117M/345M/1.3B/2.7B
    // parameter models (DESIGN.md §3). More context = more capacity = more
    // memorization.
    let model_specs = [
        ("small (order 2)", 2usize),
        ("medium (order 3)", 3),
        ("large (order 5)", 5),
    ];
    let thetas = [1.0, 0.9, 0.8, 0.7];

    println!("\n== memorized fraction vs θ (x = 32), per model size ==");
    println!(
        "{:<18} {:>8} {:>8} {:>8} {:>8}",
        "model", "θ=1.0", "θ=0.9", "θ=0.8", "θ=0.7"
    );
    for (name, order) in model_specs {
        let model = NGramModel::train(&corpus, order).expect("train");
        let config = MemorizationConfig::new(20, 512).window(32).seed(5);
        let reports = evaluate_memorization(&model, &searcher, &config, &thetas).expect("evaluate");
        print!("{name:<18}");
        for r in &reports {
            print!(" {:>7.1}%", r.ratio() * 100.0);
        }
        println!(
            "  ({} params, {} windows)",
            model.num_parameters(),
            reports[0].queries
        );
    }

    println!("\n== memorized fraction vs window width x (θ = 0.8, large model) ==");
    let model = NGramModel::train(&corpus, 5).expect("train");
    for x in [32usize, 64, 128] {
        let config = MemorizationConfig::new(20, 512).window(x).seed(6);
        let r = evaluate_memorization(&model, &searcher, &config, &[0.8]).expect("evaluate")[0];
        println!(
            "  x = {x:>3}: {:>5.1}%  ({}/{} windows memorized)",
            r.ratio() * 100.0,
            r.memorized,
            r.queries
        );
    }

    println!("\n== example memorized generations (Table 1 style) ==");
    let config = MemorizationConfig::new(10, 256).window(32).seed(7);
    let examples = ndss::lm::memorization::collect_examples(&model, &searcher, &config, 0.8, 3)
        .expect("examples");
    for (i, ex) in examples.iter().enumerate() {
        println!("\nexample {}:", i + 1);
        println!("  generated : {}", PseudoWords::render(&ex.query));
        let matched = corpus
            .sequence_to_vec(SeqRef {
                text: ex.text,
                span: ex.span,
            })
            .expect("matched span");
        let preview: Vec<TokenId> = matched.iter().copied().take(32).collect();
        println!(
            "  training  : {}{}",
            PseudoWords::render(&preview),
            if matched.len() > 32 { " …" } else { "" }
        );
        println!(
            "  (text {}, span [{}, {}], {}/32 min-hash collisions)",
            ex.text, ex.span.start, ex.span.end, ex.collisions
        );
    }
}
