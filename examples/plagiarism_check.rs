//! Plagiarism-style check over *raw text*, end to end: train a BPE
//! tokenizer, tokenize a document collection, index it, then query with a
//! suspicious document and decode the matching passages.
//!
//! Demonstrates the full substrate chain the paper assumes: raw text → BPE
//! tokens → compact-window index → near-duplicate search → decoded matches.
//!
//! ```text
//! cargo run -p ndss-examples --release --example plagiarism_check
//! ```

use ndss::prelude::*;

/// A deterministic pseudo-word "document collection": each document is an
/// independent random word stream (so genuine cross-document similarity is
/// negligible). Document 17 will be our plagiarism source.
fn make_documents() -> Vec<String> {
    let mut rng = ndss::hash::Xoshiro256StarStar::new(0x5EED);
    (0..60u32)
        .map(|_| {
            let words: Vec<String> = (0..400)
                .map(|_| PseudoWords::word(rng.next_bounded(1_500) as u32))
                .collect();
            words.join(" ")
        })
        .collect()
}

fn main() {
    let documents = make_documents();
    println!("collection: {} documents", documents.len());

    // 1. Train a BPE tokenizer on the collection (the paper trains a 64K
    //    model on 1M texts; we scale down).
    println!("training BPE tokenizer…");
    let tokenizer = BpeTrainer::new(2_000).train(documents.iter().map(String::as_str));
    println!(
        "  vocab {} ({} learned merges)",
        tokenizer.vocab_size(),
        tokenizer.merges().len()
    );

    // 2. Tokenize into a corpus and index it.
    let mut corpus = InMemoryCorpus::new();
    for doc in &documents {
        corpus.push_text(&tokenizer.encode(doc));
    }
    println!(
        "indexing {} tokens (k = 24, t = 30)…",
        corpus.total_tokens()
    );
    let index = CorpusIndex::build_in_memory_parallel(&corpus, SearchParams::new(24, 30, 77))
        .expect("index build");
    let searcher = index.searcher().expect("searcher");

    // 3. A "suspicious submission": fresh text that quietly lifts two
    //    passages from document 17, lightly paraphrased (a few words
    //    swapped).
    let source = &documents[17];
    let source_words: Vec<&str> = source.split(' ').collect();
    let mut lifted_a: Vec<String> = source_words[40..110]
        .iter()
        .map(|w| w.to_string())
        .collect();
    let mut lifted_b: Vec<String> = source_words[200..260]
        .iter()
        .map(|w| w.to_string())
        .collect();
    // Paraphrase: replace every 15th word.
    for (i, w) in lifted_a.iter_mut().enumerate() {
        if i % 15 == 7 {
            *w = PseudoWords::word(9_000 + i as u32);
        }
    }
    for (i, w) in lifted_b.iter_mut().enumerate() {
        if i % 15 == 3 {
            *w = PseudoWords::word(9_100 + i as u32);
        }
    }
    let original: Vec<String> = (0..80u32).map(|i| PseudoWords::word(7_000 + i)).collect();
    let submission = format!(
        "{} {} {} {}",
        original[..40].join(" "),
        lifted_a.join(" "),
        original[40..].join(" "),
        lifted_b.join(" ")
    );

    // 4. Slide windows over the submission and search.
    let tokens = tokenizer.encode(&submission);
    println!(
        "\nchecking submission ({} tokens) with 48-token windows at θ = 0.7…",
        tokens.len()
    );
    let mut flagged: Vec<(usize, TextId, SeqSpan)> = Vec::new();
    for (w, chunk) in tokens.chunks(48).enumerate() {
        if chunk.len() < 48 {
            break;
        }
        let outcome = searcher.search(chunk, 0.7).expect("search");
        for m in &outcome.matches {
            if let Some(span) = m.merged_spans(outcome.t).first() {
                flagged.push((w, m.text, *span));
            }
        }
    }

    if flagged.is_empty() {
        println!("no plagiarism detected.");
        return;
    }
    println!("\nplagiarism report:");
    let mut sources: Vec<TextId> = flagged.iter().map(|&(_, t, _)| t).collect();
    sources.sort_unstable();
    sources.dedup();
    println!("  matched source documents: {sources:?} (expected: [17])");
    for (w, text, span) in flagged.iter().take(4) {
        let matched_tokens = corpus
            .sequence_to_vec(SeqRef {
                text: *text,
                span: *span,
            })
            .expect("span");
        let decoded = tokenizer.decode(&matched_tokens);
        let preview: String = decoded.chars().take(100).collect();
        println!(
            "\n  submission window {w} ≈ document {text} tokens [{}, {}]:",
            span.start, span.end
        );
        println!("    “{preview}…”");
    }
}
