//! Quickstart: build an index over a synthetic corpus and run a few
//! near-duplicate searches.
//!
//! ```text
//! cargo run -p ndss-examples --release --example quickstart
//! ```

use ndss::prelude::*;

fn main() {
    // 1. A corpus. Real deployments tokenize raw text with the BPE
    //    tokenizer (see the plagiarism_check example); here we generate a
    //    Zipfian synthetic corpus with planted near-duplicates so the
    //    example is self-contained and has known ground truth.
    println!("generating corpus…");
    let (corpus, planted) = SyntheticCorpusBuilder::new(2024)
        .num_texts(2_000)
        .text_len(200, 600)
        .vocab_size(32_000)
        .duplicates_per_text(0.5)
        .dup_len(60, 150)
        .mutation_rate(0.05)
        .build();
    println!(
        "  {} texts, {} tokens, {} planted near-duplicate pairs",
        corpus.num_texts(),
        corpus.total_tokens(),
        planted.len()
    );

    // 2. Index every sequence of at least t = 25 tokens, with k = 32
    //    min-hash functions (the paper's defaults for the memorization
    //    study).
    println!("building index (k = 32, t = 25)…");
    let start = std::time::Instant::now();
    let index = CorpusIndex::build_in_memory_parallel(&corpus, SearchParams::new(32, 25, 7))
        .expect("index build");
    println!(
        "  built in {:.2?}: {} postings across {} inverted indexes",
        start.elapsed(),
        index.index().total_postings(),
        index.config().k
    );

    // 3. Query with a mutated copy of a planted duplicate — the searcher
    //    must find the original.
    let searcher = index.searcher().expect("searcher");
    let p = &planted[0];
    let query = corpus.sequence_to_vec(p.dst).expect("planted span");
    println!(
        "\nquery: the planted copy at text {} [{}, {}] ({} tokens, {} mutated)",
        p.dst.text,
        p.dst.span.start,
        p.dst.span.end,
        p.dst.span.len(),
        p.mutated_tokens
    );
    for theta in [1.0, 0.9, 0.8, 0.7] {
        let outcome = searcher.search(&query, theta).expect("search");
        println!(
            "  θ = {theta:.1}: {:3} matched texts, {:6} qualifying sequences, \
             {:.2?} total ({:.2?} CPU)",
            outcome.num_texts(),
            outcome.total_sequences(),
            outcome.stats.total,
            outcome.stats.cpu_time,
        );
        if let Some(m) = outcome.matches.iter().find(|m| m.text == p.src.text) {
            let spans = m.merged_spans(outcome.t);
            println!(
                "       → planted source text {} found; merged span(s): {:?}",
                m.text,
                spans.iter().map(|s| (s.start, s.end)).collect::<Vec<_>>()
            );
        }
    }

    // 4. Verified mode: keep only sequences whose *true* distinct Jaccard
    //    similarity reaches the threshold.
    let (verified, _) = index
        .search_verified(&query, 0.8, &corpus, 1_000_000)
        .expect("verified search");
    println!(
        "\nverified (true Jaccard ≥ 0.8): {} sequences",
        verified.len()
    );
    if let Some(seq) = verified.iter().find(|s| s.text == p.src.text) {
        let tokens = corpus.sequence_to_vec(*seq).expect("sequence");
        println!(
            "  e.g. text {} [{}, {}], J = {:.3}",
            seq.text,
            seq.span.start,
            seq.span.end,
            distinct_jaccard(&query, &tokens)
        );
    }
}
