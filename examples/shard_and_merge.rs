//! Distributed-style indexing: shard the corpus, build per-shard indexes
//! (as separate machines would), merge them into one index, and verify the
//! merged index answers exactly like an index built over the whole corpus.
//!
//! Also demonstrates the compressed (v2) storage format and the parallel
//! batch-search API.
//!
//! ```text
//! cargo run -p ndss-examples --release --example shard_and_merge
//! ```

use ndss::index::merge_indexes;
use ndss::prelude::*;

fn main() {
    let work = std::env::temp_dir().join("ndss_example_shards");
    std::fs::remove_dir_all(&work).ok();
    std::fs::create_dir_all(&work).unwrap();

    // One logical corpus, split into three shards.
    println!("generating corpus…");
    let (corpus, planted) = SyntheticCorpusBuilder::new(515)
        .num_texts(1_500)
        .text_len(200, 500)
        .vocab_size(16_000)
        .duplicates_per_text(0.5)
        .mutation_rate(0.03)
        .build();
    let all: Vec<Vec<TokenId>> = (0..corpus.num_texts() as u32)
        .map(|i| corpus.text(i).to_vec())
        .collect();
    let cuts = [0usize, 500, 1000, all.len()];
    let shards: Vec<InMemoryCorpus> = cuts
        .windows(2)
        .map(|w| InMemoryCorpus::from_texts(all[w[0]..w[1]].to_vec()))
        .collect();

    // Build each shard independently — compressed storage on.
    let config = IndexConfig::new(16, 25, 99).compressed(true);
    let mut shard_dirs = Vec::new();
    for (i, shard) in shards.iter().enumerate() {
        let dir = work.join(format!("shard_{i}"));
        let t = std::time::Instant::now();
        ndss::index::build_and_write(shard, config.clone(), &dir, true).unwrap();
        println!(
            "  shard {i}: {} texts indexed in {:.2?}",
            shard.num_texts(),
            t.elapsed()
        );
        shard_dirs.push(dir);
    }

    // Merge.
    let merged_dir = work.join("merged");
    let t = std::time::Instant::now();
    let refs: Vec<&std::path::Path> = shard_dirs.iter().map(|d| d.as_path()).collect();
    let merged = merge_indexes(&refs, &merged_dir).unwrap();
    println!(
        "merged {} shards in {:.2?}: {} texts, {:.1} MiB on disk (compressed)",
        shard_dirs.len(),
        t.elapsed(),
        merged.config().num_texts,
        merged.size_bytes().unwrap() as f64 / (1 << 20) as f64
    );

    // Reference: a direct build over the whole corpus.
    let reference =
        CorpusIndex::build_in_memory_parallel(&corpus, SearchParams::new(16, 25, 99)).unwrap();

    // Compare on a batch of planted-duplicate queries (parallel search).
    let queries: Vec<Vec<TokenId>> = planted
        .iter()
        .take(50)
        .map(|p| corpus.sequence_to_vec(p.dst).unwrap())
        .collect();
    let merged_index = CorpusIndex::open(&merged_dir, PrefixFilter::Adaptive).unwrap();
    let t = std::time::Instant::now();
    let merged_results = merged_index.search_many(&queries, 0.8).unwrap();
    let batch_time = t.elapsed();
    let reference_results = reference.search_many(&queries, 0.8).unwrap();

    let mut agree = 0usize;
    for (a, b) in merged_results.iter().zip(&reference_results) {
        if a.enumerate_all() == b.enumerate_all() {
            agree += 1;
        }
    }
    println!(
        "\n{} queries in {:.2?} through the merged index; {agree}/{} answers identical \
         to the monolithic build",
        queries.len(),
        batch_time,
        queries.len()
    );
    assert_eq!(agree, queries.len(), "merged index must answer identically");
    println!("shard → merge → search round trip verified.");
    std::fs::remove_dir_all(&work).ok();
}
