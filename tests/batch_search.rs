//! Batch query engine: determinism across thread counts against a disk
//! index, and per-query IO attribution (each outcome's `QueryStats` must
//! account for exactly its own query's work, with no cross-query bleed
//! under concurrency).

use ndss::index::CacheConfig;
use ndss::prelude::*;

fn temp_dir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("ndss_it_batch").join(name);
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn workload(seed: u64) -> (InMemoryCorpus, Vec<Vec<TokenId>>) {
    let (corpus, planted) = SyntheticCorpusBuilder::new(seed)
        .num_texts(150)
        .text_len(150, 300)
        .duplicates_per_text(1.0)
        .dup_len(50, 90)
        .mutation_rate(0.03)
        .build();
    let queries: Vec<Vec<TokenId>> = planted
        .iter()
        .take(24)
        .map(|p| corpus.sequence_to_vec(p.dst).unwrap())
        .collect();
    assert!(queries.len() >= 20, "expected a non-trivial query set");
    (corpus, queries)
}

/// The same query set through `BatchSearcher` at 1/4/8 threads returns
/// results identical to a serial `NearDupSearcher` loop, in input order,
/// against a disk index (positioned reads + shared caches).
#[test]
fn batch_results_identical_to_serial_on_disk_index() {
    let (corpus, queries) = workload(2024);
    let dir = temp_dir("determinism");
    ndss::index::build_and_write(&corpus, IndexConfig::new(16, 25, 5), &dir, true).unwrap();
    let index = DiskIndex::open(&dir).unwrap();

    let serial = NearDupSearcher::new(&index).unwrap();
    let expected: Vec<_> = queries
        .iter()
        .map(|q| {
            let o = serial.search(q, 0.8).unwrap();
            (o.enumerate_all(), o.stats.postings_read)
        })
        .collect();

    for threads in [1usize, 4, 8] {
        let batch = BatchSearcher::new(&index).unwrap().threads(threads);
        let outcomes = batch.search_all(&queries, 0.8).unwrap();
        assert_eq!(outcomes.len(), queries.len());
        for (i, o) in outcomes.iter().enumerate() {
            assert_eq!(
                o.enumerate_all(),
                expected[i].0,
                "query {i} results diverged at {threads} threads"
            );
            assert_eq!(
                o.stats.postings_read, expected[i].1,
                "query {i} postings_read diverged at {threads} threads"
            );
        }
    }
}

/// With caching disabled, every byte the index reads belongs to exactly one
/// query: the per-query `io_bytes` sum equals the global `IoStats` delta,
/// serial or concurrent. This is the property the old snapshot-diff
/// accounting violated under concurrency.
#[test]
fn per_query_io_sums_to_global_counters_without_bleed() {
    let (corpus, queries) = workload(2025);
    let dir = temp_dir("attribution");
    ndss::index::build_and_write(&corpus, IndexConfig::new(16, 25, 5), &dir, true).unwrap();
    let index = DiskIndex::open_with_cache(&dir, CacheConfig::disabled()).unwrap();

    let serial = NearDupSearcher::new(&index).unwrap();
    let serial_io: Vec<u64> = queries
        .iter()
        .map(|q| serial.search(q, 0.8).unwrap().stats.io_bytes)
        .collect();
    assert!(
        serial_io.iter().sum::<u64>() > 0,
        "disk searches must report IO"
    );

    for threads in [1usize, 4, 8] {
        let batch = BatchSearcher::new(&index).unwrap().threads(threads);
        let before = index.io_snapshot();
        let outcomes = batch.search_all(&queries, 0.8).unwrap();
        let delta = index.io_snapshot().since(&before);
        let per_query: Vec<u64> = outcomes.iter().map(|o| o.stats.io_bytes).collect();
        // No bleed: each query charged exactly what it read (searches are
        // deterministic, so the serial per-query numbers are ground truth)…
        assert_eq!(
            per_query, serial_io,
            "per-query io_bytes misattributed at {threads} threads"
        );
        // …and nothing lost or double-counted against the global counters.
        assert_eq!(
            per_query.iter().sum::<u64>(),
            delta.bytes,
            "global io delta mismatch at {threads} threads"
        );
    }
}

/// The hot posting-list cache: a second pass over the same queries reads
/// strictly fewer bytes and reports cache hits through `QueryStats`.
#[test]
fn warm_cache_cuts_io_and_reports_hits() {
    let (corpus, queries) = workload(2026);
    let dir = temp_dir("warm_cache");
    ndss::index::build_and_write(&corpus, IndexConfig::new(16, 25, 5), &dir, true).unwrap();
    let index = DiskIndex::open_with_cache(&dir, CacheConfig::default()).unwrap();
    let batch = BatchSearcher::new(&index).unwrap().threads(4);

    let cold = batch.search_all(&queries, 0.8).unwrap();
    let cold_bytes: u64 = cold.iter().map(|o| o.stats.io_bytes).sum();
    let cold_misses: u64 = cold.iter().map(|o| o.stats.cache_misses).sum();
    assert!(cold_misses > 0, "first pass must miss the empty cache");

    let warm = batch.search_all(&queries, 0.8).unwrap();
    let warm_bytes: u64 = warm.iter().map(|o| o.stats.io_bytes).sum();
    let warm_hits: u64 = warm.iter().map(|o| o.stats.cache_hits).sum();
    assert!(
        warm_bytes < cold_bytes,
        "warm pass should read less: {warm_bytes} vs {cold_bytes}"
    );
    assert!(warm_hits > 0, "warm pass must hit the posting-list cache");

    // Results are unchanged by cache state.
    for (c, w) in cold.iter().zip(warm.iter()) {
        assert_eq!(c.enumerate_all(), w.enumerate_all());
    }
}

/// Disabling the cache is equivalent to an unbounded miss stream: same
/// results, no hits ever recorded.
#[test]
fn disabled_cache_never_hits_but_results_match() {
    let (corpus, queries) = workload(2027);
    let dir = temp_dir("disabled_cache");
    ndss::index::build_and_write(&corpus, IndexConfig::new(16, 25, 5), &dir, true).unwrap();

    let cached = DiskIndex::open_with_cache(&dir, CacheConfig::default()).unwrap();
    let raw = DiskIndex::open_with_cache(&dir, CacheConfig::disabled()).unwrap();

    let a = BatchSearcher::new(&cached)
        .unwrap()
        .threads(4)
        .search_all(&queries, 0.8)
        .unwrap();
    let b = BatchSearcher::new(&raw)
        .unwrap()
        .threads(4)
        .search_all(&queries, 0.8)
        .unwrap();
    let hits: u64 = b.iter().map(|o| o.stats.cache_hits).sum();
    assert_eq!(hits, 0, "disabled cache must never report hits");
    for (x, y) in a.iter().zip(b.iter()) {
        assert_eq!(x.enumerate_all(), y.enumerate_all());
    }
}
