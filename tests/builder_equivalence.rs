//! The three index-construction paths — serial in-memory, parallel
//! in-memory, and external hash aggregation (with forced recursive
//! partitioning) — must produce byte-identical on-disk indexes, and the
//! disk corpus path must behave exactly like the in-memory corpus path.

use ndss::corpus::disk::write_corpus;
use ndss::index::{inv_file_path, write_memory_index};
use ndss::prelude::*;

fn temp_dir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("ndss_it_builders").join(name);
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn read_inv_files(dir: &std::path::Path, k: usize) -> Vec<Vec<u8>> {
    (0..k)
        .map(|func| std::fs::read(inv_file_path(dir, func)).unwrap())
        .collect()
}

#[test]
fn all_builders_byte_identical() {
    let (corpus, _) = SyntheticCorpusBuilder::new(201)
        .num_texts(80)
        .text_len(100, 250)
        .vocab_size(700)
        .duplicates_per_text(0.5)
        .build();
    let config = IndexConfig::new(4, 15, 321).zone_map(16, 32);
    let k = config.k;

    // Path A: serial in-memory → disk.
    let dir_a = temp_dir("serial");
    let mem = MemoryIndex::build(&corpus, config.clone()).unwrap();
    write_memory_index(&mem, &dir_a).unwrap();

    // Path B: parallel in-memory → disk.
    let dir_b = temp_dir("parallel");
    let mem_par = MemoryIndex::build_parallel(&corpus, config.clone()).unwrap();
    write_memory_index(&mem_par, &dir_b).unwrap();

    // Path C: external with tiny batches and a budget forcing recursion.
    let dir_c = temp_dir("external");
    ExternalIndexBuilder::new(config.clone())
        .batch_tokens(1000)
        .memory_budget(4 << 10)
        .partition_bits(3)
        .build(&corpus, &dir_c)
        .unwrap();

    // Path D: external, parallel, comfortable budget.
    let dir_d = temp_dir("external_par");
    ExternalIndexBuilder::new(config)
        .parallel(true)
        .build(&corpus, &dir_d)
        .unwrap();

    let a = read_inv_files(&dir_a, k);
    for (name, dir) in [
        ("parallel", &dir_b),
        ("external", &dir_c),
        ("external_par", &dir_d),
    ] {
        let other = read_inv_files(dir, k);
        for func in 0..k {
            assert_eq!(
                a[func], other[func],
                "inv_{func}.ndsi differs between serial and {name}"
            );
        }
    }
    for dir in [dir_a, dir_b, dir_c, dir_d] {
        std::fs::remove_dir_all(&dir).ok();
    }
}

#[test]
fn disk_corpus_builds_the_same_index_as_memory_corpus() {
    let (mem_corpus, _) = SyntheticCorpusBuilder::new(202)
        .num_texts(40)
        .text_len(80, 200)
        .build();
    let corpus_path = temp_dir("corpus").join("corpus.ndsc");
    let disk_corpus = write_corpus(&mem_corpus, &corpus_path).unwrap();

    let config = IndexConfig::new(3, 20, 55);
    let dir_mem = temp_dir("from_mem");
    let dir_disk = temp_dir("from_disk");
    write_memory_index(
        &MemoryIndex::build(&mem_corpus, config.clone()).unwrap(),
        &dir_mem,
    )
    .unwrap();
    write_memory_index(
        &MemoryIndex::build(&disk_corpus, config).unwrap(),
        &dir_disk,
    )
    .unwrap();

    for func in 0..3 {
        assert_eq!(
            std::fs::read(inv_file_path(&dir_mem, func)).unwrap(),
            std::fs::read(inv_file_path(&dir_disk, func)).unwrap(),
        );
    }
    std::fs::remove_dir_all(dir_mem).ok();
    std::fs::remove_dir_all(dir_disk).ok();
    std::fs::remove_file(&corpus_path).ok();
}

#[test]
fn reopened_index_answers_identically() {
    let (corpus, planted) = SyntheticCorpusBuilder::new(203)
        .num_texts(50)
        .duplicates_per_text(1.0)
        .mutation_rate(0.03)
        .build();
    let dir = temp_dir("reopen");
    let params = SearchParams::new(8, 25, 77);
    let built = CorpusIndex::build_on_disk(&corpus, params, &dir).unwrap();
    let p = &planted[0];
    let query = corpus.sequence_to_vec(p.dst).unwrap();
    let before = built.search(&query, 0.8).unwrap().enumerate_all();
    drop(built);

    let reopened = CorpusIndex::open(&dir, PrefixFilter::Disabled).unwrap();
    let after = reopened.search(&query, 0.8).unwrap().enumerate_all();
    assert_eq!(before, after);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn index_size_respects_paper_bound() {
    // §3.4: each inverted index holds ≤ 2N/t compact windows of 16 bytes on
    // average, i.e. posting bytes / corpus bytes ≤ 8/t (corpus = 4 B/token).
    // The paper's accounting covers postings only — at production scale the
    // key directory is negligible, though at this test's scale it is not,
    // so we check the bound on posting bytes and separately sanity-check
    // that total file size stays within a small multiple.
    // Theorem-model corpus: near-distinct tokens (huge uniform vocab, no
    // planted repeats), where Theorem 1's expectation is tight.
    let (distinct_corpus, _) = SyntheticCorpusBuilder::new(204)
        .num_texts(100)
        .text_len(300, 600)
        .vocab_size(1_000_000)
        .zipf_exponent(0.0)
        .duplicates_per_text(0.0)
        .build();
    // Natural-language-like corpus: Zipfian tokens, where duplicate tokens
    // push the window count somewhat above the distinct-token expectation
    // (the recursion's random-pivot assumption breaks under ties).
    let (zipf_corpus, _) = SyntheticCorpusBuilder::new(205)
        .num_texts(100)
        .text_len(300, 600)
        .vocab_size(50_000)
        .build();
    for (name, corpus, slack) in [
        ("distinct", &distinct_corpus, 1.05),
        ("zipf", &zipf_corpus, 1.5),
    ] {
        let corpus_bytes = corpus.total_tokens() as f64 * 4.0;
        for t in [25usize, 50, 100] {
            let dir = temp_dir(&format!("size_{name}_t{t}"));
            let disk =
                CorpusIndex::build_on_disk(corpus, SearchParams::new(2, t, 1), &dir).unwrap();
            let bound = 8.0 / t as f64;
            for func in 0..2 {
                let posting_bytes = disk.index().postings_for_function(func).unwrap() as f64 * 16.0;
                assert!(
                    posting_bytes / corpus_bytes <= bound * slack,
                    "{name} t={t} func={func}: posting ratio {} exceeds {slack}×(8/t) = {}",
                    posting_bytes / corpus_bytes,
                    bound * slack
                );
            }
            // Whole files (directory + zones included) stay within 4× the
            // posting-only bound at this scale.
            let file_bytes = disk.index().size_bytes().unwrap() as f64 / 2.0;
            assert!(file_bytes / corpus_bytes <= bound * 4.0);
            std::fs::remove_dir_all(&dir).ok();
        }
    }
}
