//! The serve-path chaos harness: seeded fault sweeps over live sharded
//! views and the serving daemon.
//!
//! Faults are injected through [`ChaosPlan`] — a runtime tap attached at
//! open to one shard's files and armed/disarmed *while queries are in
//! flight* — so these tests exercise exactly the failure the fault-
//! isolation layer exists for: an already-serving shard going bad under a
//! live reader. The sweep grid is
//!
//! ```text
//! 3 formats (v3, v4, v5) × 2 read paths (pread, mmap)
//!   × 5 fault kinds (transient storm, corruption, eof/truncation,
//!                    permission denial, deletion+repair)
//!   × 2 corpus seeds  =  60 seeded scenarios
//! ```
//!
//! Invariants checked in every scenario, always:
//!
//! * **zero panics** — every fault surfaces as a classified error, a
//!   degraded response, or a quarantine, never a crash;
//! * **sibling soundness** — shards that did not fault answer
//!   bit-identically to a single-index oracle over the whole corpus,
//!   restricted to their text-id ranges;
//! * **exact labeling** — a degraded response names exactly the faulty
//!   shard's `[first_text, first_text + num_texts)` range, nothing more,
//!   nothing less, and contributes no matches from that range;
//! * **recovery without restart** — once the fault is lifted (tap
//!   disarmed, or files repaired and the view reopened) responses return
//!   to `complete: true`, bit-identical to the oracle.
//!
//! The daemon-level tests run the same story through real sockets: HTTP
//! and NDSB clients observe degraded responses and quarantine metrics,
//! and the background prober re-admits the shard with no operator action.

use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use ndss::index::{build_and_write, CacheConfig, ChaosMode, ChaosPlan};
use ndss::prelude::*;
use ndss::query::{BreakerConfig, BreakerState, FaultKind, FaultPolicy, ServingOptions};
use ndss::serve::client::{FrameClient, HttpClient};
use ndss::serve::frame::SearchRequest;
use ndss::serve::{ServeConfig, Server};

const THETA: f64 = 0.8;
const SHARDS: usize = 4;
const SEEDS: [u64; 2] = [11, 23];
const FORMATS: [(bool, bool, &str); 3] = [
    (false, false, "v3"),
    (true, false, "v4"),
    (false, true, "v5"),
];
const CHAOS_MODES: [(ChaosMode, &str); 4] = [
    (ChaosMode::TransientStorm, "storm"),
    (ChaosMode::Corrupt, "corrupt"),
    (ChaosMode::Eof, "eof"),
    (ChaosMode::Deny, "deny"),
];
const TIMEOUT: Duration = Duration::from_secs(30);

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("ndss_it_chaos").join(name);
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn config(compress: bool, packed: bool) -> IndexConfig {
    IndexConfig::new(8, 20, 13)
        .zone_map(16, 64)
        .compressed(compress)
        .bit_packed(packed)
}

/// Fast breaker tuning so scenarios trip and recover in tens of
/// milliseconds instead of the serving defaults' seconds.
fn breaker_cfg() -> BreakerConfig {
    BreakerConfig {
        failure_threshold: 2,
        backoff: Duration::from_millis(40),
        max_backoff: Duration::from_millis(320),
    }
}

/// A seeded corpus with planted near-duplicates whose sources spread over
/// all future shards, plus queries that match in several shards at once —
/// so losing any one shard visibly changes the result set.
fn workload(seed: u64) -> (InMemoryCorpus, Vec<Vec<TokenId>>) {
    let (corpus, planted) = SyntheticCorpusBuilder::new(seed)
        .num_texts(48)
        .text_len(100, 200)
        .duplicates_per_text(1.0)
        .dup_len(40, 80)
        .mutation_rate(0.02)
        .build();
    let queries: Vec<Vec<TokenId>> = planted
        .iter()
        .take(4)
        .map(|p| corpus.sequence_to_vec(p.dst).unwrap())
        .collect();
    assert_eq!(queries.len(), 4);
    (corpus, queries)
}

fn build_store(corpus: &InMemoryCorpus, compress: bool, packed: bool, tag: &str) -> PathBuf {
    let root = temp_dir(tag);
    let opts = ShardedBuildOptions {
        threads: 2,
        ..ShardedBuildOptions::default()
    };
    build_sharded(corpus, config(compress, packed), &root, SHARDS, &opts).unwrap();
    root
}

fn oracle_outcomes(
    corpus: &InMemoryCorpus,
    queries: &[Vec<TokenId>],
    compress: bool,
    packed: bool,
    tag: &str,
) -> Vec<SearchOutcome> {
    let dir = temp_dir(tag);
    build_and_write(corpus, config(compress, packed), &dir, true).unwrap();
    let index = DiskIndex::open(&dir).unwrap();
    let searcher = NearDupSearcher::new(&index).unwrap();
    let outcomes = queries
        .iter()
        .map(|q| searcher.search(q, THETA).unwrap())
        .collect();
    std::fs::remove_dir_all(&dir).ok();
    outcomes
}

/// The faulty shard's global text-id range `[lo, hi)`.
fn shard_range(view: &ShardedIndex, shard: usize) -> (TextId, TextId) {
    let lo = view.shard_base(shard);
    let hi = lo + view.shard(shard).config().num_texts as TextId;
    (lo, hi)
}

/// Matches restricted to text ids outside `[lo, hi)` — the sibling
/// shards' contribution, which must never be perturbed by a fault in
/// `[lo, hi)`.
fn outside(matches: &[TextMatch], lo: TextId, hi: TextId) -> Vec<TextMatch> {
    matches
        .iter()
        .filter(|m| m.text < lo || m.text >= hi)
        .cloned()
        .collect()
}

/// A degraded outcome must label exactly the faulty shard — its ordinal,
/// its full text range, and a classification the armed mode can produce —
/// and must not smuggle matches from the unsearched range.
fn assert_degraded_exactly(
    outcome: &SearchOutcome,
    view: &ShardedIndex,
    faulty: usize,
    allowed: &[FaultKind],
    ctx: &str,
) {
    let (lo, hi) = shard_range(view, faulty);
    assert!(!outcome.complete, "degraded outcome must say so ({ctx})");
    assert_eq!(
        outcome.degraded.len(),
        1,
        "exactly one shard degraded ({ctx}): {:?}",
        outcome.degraded
    );
    let d = &outcome.degraded[0];
    assert_eq!(d.shard, faulty, "wrong shard labeled ({ctx})");
    assert_eq!(d.first_text, lo, "wrong first_text ({ctx})");
    assert_eq!(d.num_texts, (hi - lo) as u64, "wrong num_texts ({ctx})");
    assert!(
        allowed.contains(&d.kind),
        "kind {:?} not among {allowed:?} ({ctx}; reason: {})",
        d.kind,
        d.reason
    );
    assert!(
        !d.reason.is_empty(),
        "reason must be human-readable ({ctx})"
    );
    assert!(
        outcome.matches.iter().all(|m| m.text < lo || m.text >= hi),
        "degraded outcome reported matches from the unsearched range ({ctx})"
    );
}

/// Fault kinds each chaos mode may legitimately classify to. A transient
/// storm exhausts the IO retry budget (transient); EOF means the file no
/// longer matches its header (corruption); denial is permanent; XOR bit
/// rot surfaces wherever a decode or bounds check first notices
/// (corruption), or occasionally as a short/failed read (transient).
fn allowed_kinds(mode: ChaosMode) -> &'static [FaultKind] {
    match mode {
        ChaosMode::TransientStorm => &[FaultKind::Transient],
        ChaosMode::Eof => &[FaultKind::Corruption],
        ChaosMode::Deny => &[FaultKind::Permanent],
        ChaosMode::Corrupt => &[FaultKind::Corruption, FaultKind::Transient],
        ChaosMode::Off => &[],
    }
}

/// One seeded chaos scenario over a live library-level view: healthy →
/// armed (degrade + quarantine) → disarmed (probe heals) → bit-identical
/// again. Returns whether the armed fault was *detected* (corruption via
/// XOR can decode to garbage that downstream validation rejects on some
/// but not all reads; everything else must always detect).
fn chaos_scenario(
    store: &Path,
    oracle: &[SearchOutcome],
    queries: &[Vec<TokenId>],
    mode: ChaosMode,
    mmap: bool,
    faulty: usize,
    ctx: &str,
) -> bool {
    let plan = ChaosPlan::targeting(format!("shard-{faulty:04}"));
    let io = ndss::index::ReadOptions {
        mmap,
        chaos: Some(plan.clone()),
        ..Default::default()
    };
    // Caching stays off: a warmed posting cache would satisfy the armed
    // rounds without ever touching the tapped files.
    let view = ShardedIndex::open_full(store, CacheConfig::disabled(), io, breaker_cfg()).unwrap();
    assert_eq!(view.num_shards(), SHARDS);
    assert!(plan.attached() > 0, "tap attached to no files ({ctx})");
    let (lo, hi) = shard_range(&view, faulty);
    let searcher = view
        .searcher()
        .unwrap()
        .threads(SHARDS)
        .fault_policy(FaultPolicy::Isolate);

    // Healthy phase: dormant tap is invisible.
    for (q, want) in queries.iter().zip(oracle) {
        let got = searcher.search(q, THETA).unwrap();
        assert!(
            got.complete && got.degraded.is_empty(),
            "dormant tap degraded ({ctx})"
        );
        assert_eq!(
            got.matches, want.matches,
            "dormant tap perturbed results ({ctx})"
        );
    }

    // Armed phase: every search must be contained. The shard either
    // faults (degraded outcome labeling exactly its range) or — for
    // undetected bit rot only — keeps answering; siblings stay exact
    // either way once the shard is out.
    plan.arm(mode);
    let mut detected = false;
    for round in 0..8 {
        let i = round % queries.len();
        let got = searcher.search(&queries[i], THETA).unwrap_or_else(|e| {
            panic!("isolate policy must contain shard faults, got: {e} ({ctx})")
        });
        if got.degraded.is_empty() {
            assert!(
                mode == ChaosMode::Corrupt,
                "{mode:?} must always be detected, round {round} ({ctx})"
            );
        } else {
            detected = true;
            assert_degraded_exactly(&got, &view, faulty, allowed_kinds(mode), ctx);
            assert_eq!(
                outside(&got.matches, lo, hi),
                outside(&oracle[i].matches, lo, hi),
                "sibling shards diverged from the oracle while degraded ({ctx})"
            );
        }
        if view.health().state(faulty) == BreakerState::Open {
            break;
        }
    }
    if detected {
        assert_eq!(
            view.health().state(faulty),
            BreakerState::Open,
            "detected faults must quarantine within the sweep ({ctx})"
        );
        assert_eq!(view.health().quarantined(), vec![faulty]);

        // Quarantined phase: the shard is skipped without touching its
        // files — the tap's injection count stays frozen while the
        // breaker holds (we stay inside the backoff window).
        let frozen = plan.injected();
        for i in 0..queries.len() {
            let got = searcher.search(&queries[i], THETA).unwrap();
            assert_degraded_exactly(&got, &view, faulty, allowed_kinds(mode), ctx);
            assert_eq!(
                outside(&got.matches, lo, hi),
                outside(&oracle[i].matches, lo, hi)
            );
        }
        assert_eq!(
            plan.injected(),
            frozen,
            "quarantined shard was still being read ({ctx})"
        );
    }

    // Healed phase: disarm, wait out the backoff, and search until the
    // half-open probe closes the breaker. Responses must return to
    // complete and bit-identical — recovery needs no reopen because the
    // fault was in the IO path, not the bytes on disk.
    plan.disarm();
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let got = searcher.search(&queries[0], THETA).unwrap();
        if got.complete {
            assert!(got.degraded.is_empty());
            break;
        }
        assert!(
            Instant::now() < deadline,
            "no recovery within 10s of disarming ({ctx})"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    for (q, want) in queries.iter().zip(oracle) {
        let got = searcher.search(q, THETA).unwrap();
        assert!(got.complete && got.degraded.is_empty());
        assert_eq!(
            got.matches, want.matches,
            "post-recovery divergence ({ctx})"
        );
    }
    assert_eq!(view.health().state(faulty), BreakerState::Closed);
    detected
}

/// The 48 tap-based scenarios: every format × read path × armed mode ×
/// seed, each against the single-index oracle.
#[test]
fn chaos_sweep_across_formats_read_paths_and_fault_kinds() {
    let mut ran = 0usize;
    let mut corrupt_detected = 0usize;
    let mut corrupt_ran = 0usize;
    for seed in SEEDS {
        let (corpus, queries) = workload(seed);
        let faulty = (seed as usize) % SHARDS;
        for (compress, packed, format) in FORMATS {
            let store = build_store(&corpus, compress, packed, &format!("sweep_{format}_{seed}"));
            let oracle = oracle_outcomes(
                &corpus,
                &queries,
                compress,
                packed,
                &format!("sweep_oracle_{format}_{seed}"),
            );
            for mmap in [false, true] {
                for (mode, mode_name) in CHAOS_MODES {
                    let ctx = format!(
                        "{format}/{}/{mode_name}/seed {seed}/shard {faulty}",
                        if mmap { "mmap" } else { "pread" }
                    );
                    let detected =
                        chaos_scenario(&store, &oracle, &queries, mode, mmap, faulty, &ctx);
                    ran += 1;
                    if mode == ChaosMode::Corrupt {
                        corrupt_ran += 1;
                        corrupt_detected += detected as usize;
                    } else {
                        assert!(detected, "{ctx}: mode must always be detected");
                    }
                }
            }
            std::fs::remove_dir_all(&store).ok();
        }
    }
    assert_eq!(ran, 48, "the sweep grid must stay complete");
    // Bit rot must be *caught* by the validation layers in the vast
    // majority of scenarios — a silent-corruption regression would show
    // up here as a detection collapse.
    assert!(
        corrupt_detected * 2 > corrupt_ran,
        "XOR corruption detected in only {corrupt_detected}/{corrupt_ran} scenarios"
    );
    println!(
        "chaos-sweep: {ran} scenarios, zero panics, corruption detected {corrupt_detected}/{corrupt_ran}"
    );
}

fn copy_tree(from: &Path, to: &Path) {
    std::fs::create_dir_all(to).unwrap();
    for entry in std::fs::read_dir(from).unwrap() {
        let entry = entry.unwrap();
        let dst = to.join(entry.file_name());
        if entry.file_type().unwrap().is_dir() {
            copy_tree(&entry.path(), &dst);
        } else {
            std::fs::copy(entry.path(), &dst).unwrap();
        }
    }
}

/// The 12 deletion + repair scenarios: a shard's serving generation is
/// deleted out from under a live view (live reads keep answering from
/// their open descriptors — a deliberately pinned unix property), on-disk
/// verification reports the shard unhealthy (what keeps the prober from
/// re-admitting it), restoring the files makes verification pass again,
/// and a fresh open — the forced-reload analog — serves complete,
/// bit-identical results.
#[test]
fn deletion_and_repair_round_trips_through_verification() {
    let mut ran = 0usize;
    for seed in SEEDS {
        let (corpus, queries) = workload(seed);
        let faulty = (seed as usize) % SHARDS;
        for (compress, packed, format) in FORMATS {
            let pristine = build_store(&corpus, compress, packed, &format!("del_{format}_{seed}"));
            let oracle = oracle_outcomes(
                &corpus,
                &queries,
                compress,
                packed,
                &format!("del_oracle_{format}_{seed}"),
            );
            for mmap in [false, true] {
                let ctx = format!(
                    "deletion/{format}/{}/seed {seed}/shard {faulty}",
                    if mmap { "mmap" } else { "pread" }
                );
                let work = temp_dir(&format!(
                    "del_work_{format}_{seed}_{}",
                    if mmap { "mmap" } else { "pread" }
                ));
                copy_tree(&pristine, &work);

                let io = ndss::index::ReadOptions {
                    mmap,
                    ..Default::default()
                };
                let view =
                    ShardedIndex::open_with(&work, CacheConfig::default(), io.clone()).unwrap();
                let searcher = view.searcher().unwrap().threads(SHARDS);

                // Delete the faulty shard's current serving generation.
                let store = ShardedStore::open(&work).unwrap();
                store
                    .verify_shard(faulty)
                    .unwrap_or_else(|e| panic!("pristine copy failed verification ({ctx}): {e}"));
                let serving = store.serving_dir(faulty).unwrap();
                std::fs::remove_dir_all(&serving).unwrap();

                // On-disk health checks must notice; the live view, which
                // holds open descriptors, must not.
                assert!(
                    store.verify_shard(faulty).is_err(),
                    "deleted shard passed verification ({ctx})"
                );
                for (q, want) in queries.iter().zip(&oracle) {
                    let got = searcher.search(q, THETA).unwrap();
                    assert!(got.complete);
                    assert_eq!(
                        got.matches, want.matches,
                        "live view perturbed by on-disk deletion ({ctx})"
                    );
                }

                // Repair: restore the files, verification passes, and a
                // fresh open (what ServingIndex::force_reload performs)
                // serves complete results again.
                copy_tree(
                    &pristine.join(serving.strip_prefix(&work).unwrap()),
                    &serving,
                );
                store.spot_check_shard(faulty).unwrap_or_else(|e| {
                    panic!("repaired shard failed the spot check ({ctx}): {e}")
                });
                store
                    .verify_shard(faulty)
                    .unwrap_or_else(|e| panic!("repaired shard failed verification ({ctx}): {e}"));
                let reopened = ShardedIndex::open_with(&work, CacheConfig::default(), io).unwrap();
                let searcher = reopened.searcher().unwrap().threads(SHARDS);
                for (q, want) in queries.iter().zip(&oracle) {
                    let got = searcher.search(q, THETA).unwrap();
                    assert!(got.complete && got.degraded.is_empty());
                    assert_eq!(got.matches, want.matches, "post-repair divergence ({ctx})");
                }
                ran += 1;
                std::fs::remove_dir_all(&work).ok();
            }
            std::fs::remove_dir_all(&pristine).ok();
        }
    }
    assert_eq!(ran, 12, "the deletion grid must stay complete");
    println!("chaos-deletion: {ran} scenarios, zero panics, full recovery");
}

/// When *every* shard faults, the searcher returns a classified
/// all-quarantined error instead of an empty "success".
#[test]
fn all_shards_faulting_is_an_error_not_an_empty_result() {
    let (corpus, queries) = workload(SEEDS[0]);
    let store = build_store(&corpus, false, true, "all_out");
    let plan = ChaosPlan::targeting("shard-"); // taps every shard
    let view = ShardedIndex::open_full(
        &store,
        CacheConfig::default(),
        ndss::index::ReadOptions {
            chaos: Some(plan.clone()),
            ..Default::default()
        },
        breaker_cfg(),
    )
    .unwrap();
    let searcher = view
        .searcher()
        .unwrap()
        .threads(SHARDS)
        .fault_policy(FaultPolicy::Isolate);

    plan.arm(ChaosMode::Deny);
    let err = searcher
        .search(&queries[0], THETA)
        .expect_err("an answer built from zero shards is not an answer");
    match err {
        QueryError::AllShardsQuarantined { shards, kind, .. } => {
            assert_eq!(shards, SHARDS);
            assert_eq!(kind, FaultKind::Permanent);
        }
        other => panic!("expected AllShardsQuarantined, got: {other}"),
    }
    // And once quarantined (no shard is touched), the skip-path error
    // still reports the breakers' recorded cause.
    let err = searcher.search(&queries[0], THETA).expect_err("still out");
    assert!(matches!(err, QueryError::AllShardsQuarantined { .. }));

    plan.disarm();
    std::thread::sleep(breaker_cfg().backoff + Duration::from_millis(20));
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        match searcher.search(&queries[0], THETA) {
            Ok(outcome) if outcome.complete => break,
            Ok(_) | Err(QueryError::AllShardsQuarantined { .. }) => {}
            Err(e) => panic!("unexpected error during recovery: {e}"),
        }
        assert!(Instant::now() < deadline, "no recovery after disarm");
        std::thread::sleep(Duration::from_millis(10));
    }
    std::fs::remove_dir_all(&store).ok();
}

/// The fail-fast default is untouched by all of this: the same armed
/// fault that Isolate contains makes a FailFast search return the
/// underlying error, exactly as PR 8 specified.
#[test]
fn fail_fast_policy_still_propagates_shard_errors() {
    let (corpus, queries) = workload(SEEDS[1]);
    let store = build_store(&corpus, false, false, "failfast");
    let plan = ChaosPlan::targeting("shard-0001");
    let view = ShardedIndex::open_full(
        &store,
        CacheConfig::default(),
        ndss::index::ReadOptions {
            chaos: Some(plan.clone()),
            ..Default::default()
        },
        breaker_cfg(),
    )
    .unwrap();
    let searcher = view.searcher().unwrap().threads(SHARDS); // default policy

    plan.arm(ChaosMode::Deny);
    let err = searcher.search(&queries[0], THETA).expect_err("fail fast");
    assert!(
        !matches!(err, QueryError::AllShardsQuarantined { .. }),
        "fail-fast must surface the shard's own error, got: {err}"
    );
    // Breakers are bypassed entirely under fail-fast.
    assert_eq!(view.health().state(1), BreakerState::Closed);
    std::fs::remove_dir_all(&store).ok();
}

// ---------------------------------------------------------------------------
// Daemon-level chaos: the same fault story through real sockets.
// ---------------------------------------------------------------------------

fn chaos_server(
    store: &Path,
    plan: &ChaosPlan,
    probe_interval: Option<Duration>,
) -> ndss::serve::RunningServer {
    let serving = ServingIndex::open_with_options(
        store,
        ServingOptions {
            cache: CacheConfig::disabled(),
            io: ndss::index::ReadOptions {
                chaos: Some(plan.clone()),
                ..Default::default()
            },
            breaker: breaker_cfg(),
        },
    )
    .unwrap();
    Server::bind(
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 8,
            admission_cap: 8,
            probe_interval,
            ..ServeConfig::default()
        },
        serving,
    )
    .unwrap()
    .spawn()
}

fn search_body(query: &[u32]) -> String {
    let tokens: Vec<String> = query.iter().map(|t| t.to_string()).collect();
    format!("{{\"query\":[{}],\"theta\":{THETA}}}", tokens.join(","))
}

/// End to end over HTTP and NDSB: a shard faults under the live daemon,
/// responses degrade with exact labels on both protocols, `/metrics`
/// exposes the breaker + quarantine + degraded counters (validated
/// exposition), and the background prober re-admits the shard — recovery
/// to `complete: true` with no restart and no operator `/reload`.
#[test]
fn daemon_degrades_labels_exactly_and_self_heals() {
    let (corpus, queries) = workload(SEEDS[0]);
    let store = build_store(&corpus, false, true, "daemon");
    let faulty = 2usize;
    let plan = ChaosPlan::targeting(format!("shard-{faulty:04}"));
    let server = chaos_server(&store, &plan, Some(Duration::from_millis(50)));
    let addr = server.handle().addr();

    let view = ShardedIndex::open(&store).unwrap();
    let (lo, hi) = shard_range(&view, faulty);

    let mut http = HttpClient::connect(addr, TIMEOUT).unwrap();
    let body = search_body(&queries[0]);

    // Healthy: complete, no degraded ranges.
    let reply = http.request("POST", "/search", body.as_bytes()).unwrap();
    assert_eq!(reply.status, 200, "search: {}", reply.text());
    let doc = ndss::json::Json::parse(&reply.text()).unwrap();
    assert!(matches!(
        doc.get("complete"),
        Some(ndss::json::Json::Bool(true))
    ));
    assert!(doc.get("degraded_shards").is_none());

    // Fault the shard under the live daemon: responses must degrade with
    // the exact range, on both protocols.
    plan.arm(ChaosMode::Deny);
    let deadline = Instant::now() + Duration::from_secs(10);
    let degraded_doc = loop {
        let reply = http.request("POST", "/search", body.as_bytes()).unwrap();
        assert_eq!(reply.status, 200, "degraded search: {}", reply.text());
        let doc = ndss::json::Json::parse(&reply.text()).unwrap();
        if doc.get("degraded_shards").is_some() {
            break doc;
        }
        // The prober may have force-reloaded between requests (on-disk
        // bytes are clean; only the IO path is poisoned), resetting the
        // breakers — the next request re-trips them.
        assert!(Instant::now() < deadline, "no degraded response within 10s");
        std::thread::sleep(Duration::from_millis(5));
    };
    assert!(matches!(
        degraded_doc.get("complete"),
        Some(ndss::json::Json::Bool(false))
    ));
    let shards = degraded_doc
        .get("degraded_shards")
        .and_then(|v| v.as_array())
        .unwrap();
    assert_eq!(shards.len(), 1);
    let d = &shards[0];
    assert_eq!(
        d.get("shard").and_then(|v| v.as_u64()).unwrap(),
        faulty as u64
    );
    assert_eq!(
        d.get("first_text").and_then(|v| v.as_u64()).unwrap(),
        lo as u64
    );
    assert_eq!(
        d.get("num_texts").and_then(|v| v.as_u64()).unwrap(),
        (hi - lo) as u64
    );
    assert_eq!(d.get("kind").and_then(|v| v.as_str()).unwrap(), "permanent");

    // Same story over the binary framing: STATUS_DEGRADED decodes as a
    // result carrying the same range.
    let mut frames = FrameClient::connect(addr, TIMEOUT).unwrap();
    let wire = frames
        .search(&SearchRequest {
            theta: THETA,
            deadline_ms: 0,
            top: 0,
            query: queries[0].clone(),
        })
        .unwrap()
        .expect("degraded responses decode as results, not errors");
    if !wire.complete {
        assert_eq!(wire.degraded.len(), 1);
        assert_eq!(wire.degraded[0].shard, faulty as u32);
        assert_eq!(wire.degraded[0].first_text, lo);
        assert_eq!(wire.degraded[0].num_texts, (hi - lo) as u64);
        assert_eq!(wire.degraded[0].kind, 2, "permanent on the wire");
    }

    // The exposition names the breaker, quarantine, degraded-response,
    // and probe instruments — and still validates.
    let metrics = http.request("GET", "/metrics", b"").unwrap();
    assert_eq!(metrics.status, 200);
    let text = metrics.text();
    ndss::obs::validate_prometheus_text(&text)
        .unwrap_or_else(|e| panic!("invalid exposition: {e}"));
    for needle in [
        "index_shard_breaker",
        "index_shard_breaker_trips",
        "index_shards_quarantined",
        "serve_degraded",
        "serve_probe_attempts",
        "serve_conn_accepted",
        "serve_conn_reuse_ratio_percent",
    ] {
        assert!(text.contains(needle), "metrics exposition lacks {needle}");
    }

    // Self-healing: lift the fault and wait for the prober to verify the
    // on-disk store and force a reload. No restart, no /reload.
    plan.disarm();
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let reply = http.request("POST", "/search", body.as_bytes()).unwrap();
        assert_eq!(reply.status, 200);
        let doc = ndss::json::Json::parse(&reply.text()).unwrap();
        if matches!(doc.get("complete"), Some(ndss::json::Json::Bool(true))) {
            assert!(doc.get("degraded_shards").is_none());
            break;
        }
        assert!(
            Instant::now() < deadline,
            "prober did not re-admit the repaired shard within 10s"
        );
        std::thread::sleep(Duration::from_millis(20));
    }

    let report = server.shutdown_and_join().unwrap();
    assert!(report.http_requests >= 4);
    std::fs::remove_dir_all(&store).ok();
}
