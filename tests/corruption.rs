//! Failure injection: corrupted, truncated, or mismatched on-disk artifacts
//! must surface typed errors — never panics, never silently wrong results.

use ndss::prelude::*;

fn temp_dir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("ndss_it_corruption").join(name);
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn build_index(dir: &std::path::Path, compress: bool) {
    let (corpus, _) = SyntheticCorpusBuilder::new(161).num_texts(30).build();
    let params =
        SearchParams::new(2, 25, 5).index_config(|c| c.compressed(compress).zone_map(8, 16));
    CorpusIndex::build_on_disk(&corpus, params, dir).unwrap();
}

#[test]
fn truncated_index_file_is_rejected() {
    for compress in [false, true] {
        let dir = temp_dir(&format!("trunc_{compress}"));
        build_index(&dir, compress);
        let file = dir.join("inv_0.ndsi");
        let bytes = std::fs::read(&file).unwrap();
        // Cut the file in half: directory (stored at the tail) is gone.
        std::fs::write(&file, &bytes[..bytes.len() / 2]).unwrap();
        assert!(
            CorpusIndex::open(&dir, PrefixFilter::Disabled).is_err(),
            "truncated v{} file must fail to open",
            if compress { 2 } else { 1 }
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}

#[test]
fn flipped_magic_is_rejected() {
    let dir = temp_dir("magic");
    build_index(&dir, false);
    let file = dir.join("inv_1.ndsi");
    let mut bytes = std::fs::read(&file).unwrap();
    bytes[0] ^= 0xFF;
    std::fs::write(&file, &bytes).unwrap();
    assert!(CorpusIndex::open(&dir, PrefixFilter::Disabled).is_err());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn unsupported_version_is_rejected() {
    let dir = temp_dir("version");
    build_index(&dir, false);
    let file = dir.join("inv_0.ndsi");
    let mut bytes = std::fs::read(&file).unwrap();
    bytes[4..8].copy_from_slice(&99u32.to_le_bytes());
    std::fs::write(&file, &bytes).unwrap();
    let err = CorpusIndex::open(&dir, PrefixFilter::Disabled).unwrap_err();
    assert!(err.to_string().contains("version"), "got: {err}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn missing_index_file_is_rejected() {
    let dir = temp_dir("missing_file");
    build_index(&dir, false);
    std::fs::remove_file(dir.join("inv_1.ndsi")).unwrap();
    assert!(CorpusIndex::open(&dir, PrefixFilter::Disabled).is_err());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn swapped_function_files_are_rejected() {
    // inv_0 claims func 0 in its header; renaming inv_1 over it must be
    // caught, otherwise queries would silently hash with the wrong bank.
    let dir = temp_dir("swapped");
    build_index(&dir, false);
    std::fs::remove_file(dir.join("inv_0.ndsi")).unwrap();
    std::fs::copy(dir.join("inv_1.ndsi"), dir.join("inv_0.ndsi")).unwrap();
    let err = CorpusIndex::open(&dir, PrefixFilter::Disabled).unwrap_err();
    assert!(err.to_string().contains("claims function"), "got: {err}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn corrupt_meta_json_is_rejected() {
    let dir = temp_dir("meta");
    build_index(&dir, false);
    std::fs::write(dir.join("meta.json"), b"{ not json").unwrap();
    assert!(CorpusIndex::open(&dir, PrefixFilter::Disabled).is_err());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn truncated_corpus_is_rejected() {
    let dir = temp_dir("corpus");
    let path = dir.join("c.ndsc");
    let (corpus, _) = SyntheticCorpusBuilder::new(162).num_texts(20).build();
    ndss::corpus::disk::write_corpus(&corpus, &path).unwrap();
    let bytes = std::fs::read(&path).unwrap();
    std::fs::write(&path, &bytes[..bytes.len() / 3]).unwrap();
    assert!(DiskCorpus::open(&path).is_err());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn mangled_corpus_offsets_are_rejected() {
    let dir = temp_dir("offsets");
    let path = dir.join("c.ndsc");
    let (corpus, _) = SyntheticCorpusBuilder::new(163).num_texts(5).build();
    ndss::corpus::disk::write_corpus(&corpus, &path).unwrap();
    let mut bytes = std::fs::read(&path).unwrap();
    // The offsets table sits at the tail; scramble its middle.
    let len = bytes.len();
    bytes[len - 20..len - 12].copy_from_slice(&u64::MAX.to_le_bytes());
    std::fs::write(&path, &bytes).unwrap();
    assert!(DiskCorpus::open(&path).is_err());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn old_meta_without_compress_field_still_opens() {
    // Forward compatibility: meta.json written before the `compress` field
    // existed must deserialize (serde default = false).
    let dir = temp_dir("old_meta");
    build_index(&dir, false);
    let meta = std::fs::read_to_string(dir.join("meta.json")).unwrap();
    let stripped: String = meta
        .lines()
        .filter(|l| !l.contains("compress"))
        .collect::<Vec<_>>()
        .join("\n");
    // Remove the trailing comma on the line before the removed field if any.
    let stripped = stripped.replace(",\n}", "\n}");
    std::fs::write(dir.join("meta.json"), stripped).unwrap();
    let reopened = CorpusIndex::open(&dir, PrefixFilter::Disabled).unwrap();
    assert!(!reopened.config().compress);
    std::fs::remove_dir_all(&dir).ok();
}
