//! Kill-point fault-injection sweep over the journaled build pipelines.
//!
//! The builders expose two families of deterministic crash sites (see
//! `ndss::index::KillPoints`): *checkpoints* bracketing every journal
//! publication, and fine-grained *IO points* (per text spilled, per
//! partition aggregated, per list merged). The harness first runs a
//! counting pass to learn how many sites a given build exposes, then
//! crashes at **every** checkpoint and a seeded sample of IO points,
//! resumes with `--resume` semantics, and requires the resumed directory to
//! be **byte-identical** to an uninterrupted build — on both the
//! fixed-width (v3) and compressed (v4) index formats, for the external
//! build and the k-way merge alike.
//!
//! Builds run serially (`parallel(false)`): the sweep's determinism
//! contract is that crash site `n` means the same on-disk state on every
//! run, which thread scheduling would break.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use ndss::index::{build_and_write, BuildJournal, ExternalIndexBuilder, KillPoints};
use ndss::prelude::*;

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("ndss_it_crash").join(name);
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Every file under `dir` (recursively), relative path → contents.
fn dir_files(dir: &Path) -> BTreeMap<String, Vec<u8>> {
    fn walk(root: &Path, dir: &Path, out: &mut BTreeMap<String, Vec<u8>>) {
        for entry in std::fs::read_dir(dir).unwrap() {
            let path = entry.unwrap().path();
            if path.is_dir() {
                walk(root, &path, out);
            } else {
                let rel = path.strip_prefix(root).unwrap();
                out.insert(
                    rel.to_string_lossy().into_owned(),
                    std::fs::read(&path).unwrap(),
                );
            }
        }
    }
    let mut out = BTreeMap::new();
    walk(dir, dir, &mut out);
    out
}

/// Asserts `dir` holds exactly the reference files: same names, same bytes,
/// and in particular no leftover journal or spill state.
fn assert_same_files(context: &str, dir: &Path, reference: &BTreeMap<String, Vec<u8>>) {
    let got = dir_files(dir);
    let got_names: Vec<&String> = got.keys().collect();
    let want_names: Vec<&String> = reference.keys().collect();
    assert_eq!(
        got_names, want_names,
        "{context}: file set differs from uninterrupted build"
    );
    for (name, bytes) in reference {
        assert_eq!(
            &got[name], bytes,
            "{context}: {name} differs from uninterrupted build"
        );
    }
}

fn small_corpus() -> InMemoryCorpus {
    let (corpus, _) = SyntheticCorpusBuilder::new(91)
        .num_texts(16)
        .vocab_size(400)
        .build();
    corpus
}

fn config(compress: bool) -> IndexConfig {
    IndexConfig::new(3, 20, 11).compressed(compress)
}

/// A serial external builder with budgets small enough to exercise
/// multiple spill batches *and* recursive re-partitioning.
fn builder(compress: bool) -> ExternalIndexBuilder {
    ExternalIndexBuilder::new(config(compress))
        .batch_tokens(1500)
        .memory_budget(1 << 12)
        .parallel(false)
}

/// ~`samples` indices spread evenly over `0..total`, deduplicated.
fn spread(total: u64, samples: u64) -> Vec<u64> {
    let mut points: Vec<u64> = (0..samples)
        .map(|i| i * total / samples)
        .filter(|&n| n < total)
        .collect();
    points.dedup();
    points
}

fn external_build_sweep(compress: bool) {
    let version = if compress { "v4" } else { "v3" };
    let corpus = small_corpus();

    // Uninterrupted reference build (journal on, like every real build).
    let clean_dir = temp_dir(&format!("ext_{version}_clean"));
    builder(compress).build(&corpus, &clean_dir).unwrap();
    let reference = dir_files(&clean_dir);
    assert!(
        !reference.contains_key("build.journal"),
        "a completed build must remove its journal"
    );

    // Counting pass: learn how many crash sites this build exposes, and
    // check that the injector itself doesn't perturb the output.
    let count = KillPoints::count_only();
    let count_dir = temp_dir(&format!("ext_{version}_count"));
    builder(compress)
        .kill_points(count.clone())
        .build(&corpus, &count_dir)
        .unwrap();
    let (checkpoints, io_points) = (count.checkpoints_seen(), count.io_seen());
    assert!(
        checkpoints >= 10,
        "{version}: expected a multi-checkpoint build, saw {checkpoints}"
    );
    assert!(
        io_points > checkpoints,
        "{version}: IO points should be finer-grained than checkpoints"
    );
    assert_same_files(&format!("{version} counting pass"), &count_dir, &reference);

    let sweep = |crash_at: &dyn Fn() -> std::sync::Arc<KillPoints>, label: String| {
        let dir = temp_dir(&format!("ext_{version}_sweep"));
        let kp = crash_at();
        let err = builder(compress)
            .kill_points(kp.clone())
            .build(&corpus, &dir)
            .expect_err(&format!("{label}: build must crash"));
        assert!(kp.fired(), "{label}: injector did not fire");
        assert!(
            err.to_string().contains("injected crash"),
            "{label}: unexpected error {err}"
        );
        // Resume exactly as `ndss index --resume` would: same parameters,
        // no injector.
        builder(compress)
            .resume(true)
            .build(&corpus, &dir)
            .unwrap_or_else(|e| panic!("{label}: resume failed: {e}"));
        assert_same_files(&label, &dir, &reference);
    };

    for n in 0..checkpoints {
        sweep(
            &|| KillPoints::at_checkpoint(n),
            format!("{version} checkpoint {n}"),
        );
    }
    for n in spread(io_points, 12) {
        sweep(&|| KillPoints::at_io(n), format!("{version} io {n}"));
    }

    for name in ["ext_{v}_clean", "ext_{v}_count", "ext_{v}_sweep"] {
        let dir = std::env::temp_dir()
            .join("ndss_it_crash")
            .join(name.replace("{v}", version));
        std::fs::remove_dir_all(dir).ok();
    }
}

#[test]
fn external_build_resumes_byte_identical_fixed_width() {
    external_build_sweep(false);
}

#[test]
fn external_build_resumes_byte_identical_compressed() {
    external_build_sweep(true);
}

// ---------------------------------------------------------------------------
// Merge under injected crash.
// ---------------------------------------------------------------------------

fn build_shards(compress: bool, root: &Path) -> (PathBuf, PathBuf) {
    let corpus = small_corpus();
    let all: Vec<Vec<u32>> = (0..16u32).map(|i| corpus.text(i).to_vec()).collect();
    let a = InMemoryCorpus::from_texts(all[..8].to_vec());
    let b = InMemoryCorpus::from_texts(all[8..].to_vec());
    let dir_a = root.join("shard_a");
    let dir_b = root.join("shard_b");
    std::fs::create_dir_all(&dir_a).unwrap();
    std::fs::create_dir_all(&dir_b).unwrap();
    build_and_write(&a, config(compress), &dir_a, false).unwrap();
    build_and_write(&b, config(compress), &dir_b, false).unwrap();
    (dir_a, dir_b)
}

fn merge_sweep(compress: bool) {
    let version = if compress { "v4" } else { "v3" };
    let root = temp_dir(&format!("merge_{version}"));
    let (dir_a, dir_b) = build_shards(compress, &root);
    let inputs: Vec<&Path> = vec![&dir_a, &dir_b];

    let clean_dir = root.join("clean");
    ndss::index::merge_indexes_with(&inputs, &clean_dir, &MergeOptions::new()).unwrap();
    let reference = dir_files(&clean_dir);

    let count = KillPoints::count_only();
    let count_dir = root.join("count");
    ndss::index::merge_indexes_with(
        &inputs,
        &count_dir,
        &MergeOptions::new().kill_points(count.clone()),
    )
    .unwrap();
    let (checkpoints, io_points) = (count.checkpoints_seen(), count.io_seen());
    assert!(
        checkpoints >= 5,
        "{version} merge: saw only {checkpoints} checkpoints"
    );
    assert_same_files(
        &format!("{version} merge counting pass"),
        &count_dir,
        &reference,
    );

    let sweep = |kp: std::sync::Arc<KillPoints>, label: String| {
        let dir = root.join("sweep");
        std::fs::remove_dir_all(&dir).ok();
        let err = ndss::index::merge_indexes_with(
            &inputs,
            &dir,
            &MergeOptions::new().kill_points(kp.clone()),
        )
        .expect_err(&format!("{label}: merge must crash"));
        assert!(kp.fired(), "{label}: injector did not fire");
        assert!(
            err.to_string().contains("injected crash"),
            "{label}: unexpected error {err}"
        );
        ndss::index::merge_indexes_with(&inputs, &dir, &MergeOptions::new().resume(true))
            .unwrap_or_else(|e| panic!("{label}: resume failed: {e}"));
        assert_same_files(&label, &dir, &reference);
    };

    for n in 0..checkpoints {
        sweep(
            KillPoints::at_checkpoint(n),
            format!("{version} merge checkpoint {n}"),
        );
    }
    for n in spread(io_points, 8) {
        sweep(KillPoints::at_io(n), format!("{version} merge io {n}"));
    }
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn merge_resumes_byte_identical_fixed_width() {
    merge_sweep(false);
}

#[test]
fn merge_resumes_byte_identical_compressed() {
    merge_sweep(true);
}

// ---------------------------------------------------------------------------
// Resume validation and garbage collection.
// ---------------------------------------------------------------------------

#[test]
fn resume_rejects_mismatched_parameters() {
    let corpus = small_corpus();
    let dir = temp_dir("fingerprint");
    builder(false)
        .kill_points(KillPoints::at_checkpoint(4))
        .build(&corpus, &dir)
        .expect_err("build must crash");
    assert!(BuildJournal::load(&dir).unwrap().is_some());
    // Different spill layout (batch size) ⇒ the journal describes a
    // different build; resuming must refuse rather than guess.
    let err = builder(false)
        .batch_tokens(999)
        .resume(true)
        .build(&corpus, &dir)
        .expect_err("mismatched resume must be rejected");
    assert!(
        err.to_string().contains("journal"),
        "expected a journal mismatch error, got: {err}"
    );
    // Same parameters resume fine.
    builder(false).resume(true).build(&corpus, &dir).unwrap();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn resume_without_journal_degrades_to_fresh_build() {
    let corpus = small_corpus();
    let clean = temp_dir("fresh_clean");
    builder(false).build(&corpus, &clean).unwrap();
    let reference = dir_files(&clean);

    let dir = temp_dir("fresh_resume");
    builder(false).resume(true).build(&corpus, &dir).unwrap();
    assert_same_files("resume with no journal", &dir, &reference);
    std::fs::remove_dir_all(&clean).ok();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn fresh_build_sweeps_crash_residue() {
    let corpus = small_corpus();
    let dir = temp_dir("gc_residue");
    // Crash a journaled build, leaving tmp_spill/ + build.journal behind.
    builder(false)
        .kill_points(KillPoints::at_checkpoint(3))
        .build(&corpus, &dir)
        .expect_err("build must crash");
    assert!(dir.join("tmp_spill").is_dir());
    assert!(dir.join("build.journal").is_file());

    let gc_counter = ndss::obs::Registry::global().counter(
        "index.gc_files",
        "files and directories removed by crash-residue garbage collection",
    );
    let before = gc_counter.get();
    // A *fresh* (non-resume) build discards the residue and starts over.
    builder(false).build(&corpus, &dir).unwrap();
    assert!(!dir.join("tmp_spill").exists());
    assert!(!dir.join("build.journal").exists());
    assert!(
        gc_counter.get() > before,
        "gc sweep must count discarded crash residue"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn interrupted_build_is_reported_resumable_and_openable_after_resume() {
    let corpus = small_corpus();
    let root = temp_dir("store_resume");
    let store = GenerationStore::open(&root).unwrap();
    let gen_dir = store.allocate().unwrap();
    builder(false)
        .kill_points(KillPoints::at_checkpoint(6))
        .build(&corpus, &gen_dir)
        .expect_err("build must crash");

    // Reopening the store must keep (not GC) the resumable generation.
    let store = GenerationStore::open(&root).unwrap();
    let resumable = store.resumable().unwrap().expect("generation is resumable");
    assert_eq!(root.join(&resumable.name), gen_dir);

    builder(false)
        .resume(true)
        .build(&corpus, &gen_dir)
        .unwrap();
    store.publish(&resumable.name, 1).unwrap();
    let opened = DiskIndex::open(&resolve_index_dir(&root)).unwrap();
    opened.verify_integrity().unwrap();
    std::fs::remove_dir_all(&root).ok();
}

// ---------------------------------------------------------------------------
// Sharded builds under injected crash.
// ---------------------------------------------------------------------------

/// A killed `--shards N` build resumes byte-identically, shard by shard:
/// shards that finished before the crash are reused unchanged, the shard
/// whose journal survived continues from it, and untouched shards build
/// fresh — the resumed store's bytes (every shard's generation files and
/// the manifest itself) equal an uninterrupted build's.
///
/// Builds run fully serial (`serial: true`): crash site `n` must mean the
/// same on-disk state on every run, which either cross-shard or intra-shard
/// thread scheduling would break.
#[test]
fn sharded_build_resumes_byte_identical_per_shard() {
    let (corpus, _) = SyntheticCorpusBuilder::new(92)
        .num_texts(24)
        .vocab_size(400)
        .build();
    let shards = 3usize;
    let opts = |kill: Option<std::sync::Arc<KillPoints>>, resume: bool| ShardedBuildOptions {
        external: true,
        memory_budget: 1 << 12,
        resume,
        keep: 1,
        serial: true,
        kill,
        ..ShardedBuildOptions::default()
    };

    // Uninterrupted reference build.
    let clean_root = temp_dir("sharded_clean");
    build_sharded(
        &corpus,
        config(false),
        &clean_root,
        shards,
        &opts(None, false),
    )
    .unwrap();
    let reference = dir_files(&clean_root);
    assert!(reference.contains_key("MANIFEST"));
    for name in reference.keys() {
        assert!(
            !name.ends_with("build.journal"),
            "completed shards must remove their journals"
        );
    }

    // Counting pass: how many crash sites does the whole sharded build
    // expose? (The injector observes all three shards' builds in order.)
    let count = KillPoints::count_only();
    let count_root = temp_dir("sharded_count");
    build_sharded(
        &corpus,
        config(false),
        &count_root,
        shards,
        &opts(Some(count.clone()), false),
    )
    .unwrap();
    let (checkpoints, io_points) = (count.checkpoints_seen(), count.io_seen());
    assert!(
        checkpoints >= 3 * 10,
        "expected every shard to contribute checkpoints, saw {checkpoints}"
    );
    assert_same_files("sharded counting pass", &count_root, &reference);

    let sweep = |kp: std::sync::Arc<KillPoints>, label: String| {
        let root = temp_dir("sharded_sweep");
        let err = build_sharded(
            &corpus,
            config(false),
            &root,
            shards,
            &opts(Some(kp.clone()), false),
        )
        .expect_err(&format!("{label}: build must crash"));
        assert!(kp.fired(), "{label}: injector did not fire");
        assert!(
            err.to_string().contains("injected crash"),
            "{label}: unexpected error {err}"
        );
        // A crashed sharded build must never have published: no shard
        // serves and the manifest generation is still 0.
        let crashed = ShardedStore::open(&root).unwrap();
        assert_eq!(crashed.manifest().generation, 0, "{label}: published early");
        // Resume exactly as `ndss index --shards N --resume` would.
        build_sharded(&corpus, config(false), &root, shards, &opts(None, true))
            .unwrap_or_else(|e| panic!("{label}: resume failed: {e}"));
        assert_same_files(&label, &root, &reference);
    };

    // Crash at a seeded sample of checkpoints and IO points spread across
    // the whole build — early sites hit shard 0 mid-build, late sites hit
    // shard 2 with shards 0–1 already complete (exercising the
    // complete-but-unpublished reuse path).
    for n in spread(checkpoints, 9) {
        sweep(
            KillPoints::at_checkpoint(n),
            format!("sharded checkpoint {n}"),
        );
    }
    for n in spread(io_points, 6) {
        sweep(KillPoints::at_io(n), format!("sharded io {n}"));
    }

    // Resuming with different build parameters must refuse, not guess.
    let root = temp_dir("sharded_mismatch");
    let kp = KillPoints::at_checkpoint(checkpoints / 2);
    build_sharded(
        &corpus,
        config(false),
        &root,
        shards,
        &opts(Some(kp), false),
    )
    .expect_err("build must crash");
    build_sharded(&corpus, config(true), &root, shards, &opts(None, true))
        .expect_err("resume with different parameters must be rejected");

    for name in [
        "sharded_clean",
        "sharded_count",
        "sharded_sweep",
        "sharded_mismatch",
    ] {
        std::fs::remove_dir_all(std::env::temp_dir().join("ndss_it_crash").join(name)).ok();
    }
}

// ---------------------------------------------------------------------------
// Ingest pipeline under injected crash.
// ---------------------------------------------------------------------------

use ndss::index::{inv_file_path, verify_memtable, IndexError, IngestIndex, IngestOptions};
use std::sync::Arc;

fn ingest_texts() -> Vec<Vec<u32>> {
    let (corpus, _) = SyntheticCorpusBuilder::new(93)
        .num_texts(18)
        .text_len(40, 90)
        .vocab_size(400)
        .build();
    (0..corpus.num_texts() as u32)
        .map(|i| corpus.text_to_vec(i).unwrap())
        .collect()
}

fn ingest_config() -> IndexConfig {
    IndexConfig::new(3, 20, 11).bit_packed(true)
}

/// Tiny rotation threshold so the scenario spans several WALs, and
/// per-append fsync so *every* acked text is durable — the sweep's
/// exactness assertion depends on that.
fn ingest_opts(kill: Option<Arc<KillPoints>>) -> IngestOptions {
    IngestOptions {
        flush_bytes: 2_000,
        fsync_every: 1,
        keep: 1,
        kill,
    }
}

/// Drives the full ingest scenario from wherever the store left off:
/// append every not-yet-acked text, then seal + compact everything.
/// `acked` tracks the texts durably acknowledged so far — exactly the set
/// a client would believe is safe.
fn drive_ingest(
    root: &Path,
    texts: &[Vec<u32>],
    kill: Option<Arc<KillPoints>>,
    acked: &mut u64,
) -> Result<(), IndexError> {
    let mut ingest = IngestIndex::open(root, Some(ingest_config()), ingest_opts(kill))?;
    *acked = ingest.next_text_id();
    while (*acked as usize) < texts.len() {
        ingest.append(&texts[*acked as usize])?;
        *acked += 1;
    }
    ingest.seal_all()?;
    Ok(())
}

/// The store's CURRENT generation must hold byte-for-byte the same inverted
/// files as the batch-built reference — compaction may not perturb a single
/// posting no matter where it crashed.
fn assert_current_matches(context: &str, root: &Path, reference: &Path) {
    let store = GenerationStore::open(root).unwrap();
    let current = store.current_dir().unwrap().expect("store must publish");
    let index = DiskIndex::open(&current).unwrap();
    index.verify_integrity().unwrap();
    for func in 0..ingest_config().k {
        assert_eq!(
            std::fs::read(inv_file_path(&current, func)).unwrap(),
            std::fs::read(inv_file_path(reference, func)).unwrap(),
            "{context}: inv_{func} differs from the batch build"
        );
    }
}

/// Crash the append → rotate → seal → merge → publish → trim pipeline at
/// every checkpoint and a spread of IO points. After each crash the store
/// must recover *exactly* the acked text set (nothing lost, nothing
/// resurrected), pass offline memtable verification, and — once resumed to
/// completion — serve a CURRENT generation byte-identical to a batch build
/// of all the texts.
#[test]
fn ingest_recovers_the_acked_set_at_every_kill_point() {
    let texts = ingest_texts();
    let ref_dir = temp_dir("ingest_ref");
    let mem =
        MemoryIndex::build(&InMemoryCorpus::from_texts(texts.clone()), ingest_config()).unwrap();
    ndss::index::write_memory_index(&mem, &ref_dir).unwrap();

    // Counting pass: learn the crash-site count, and check the injector
    // itself doesn't perturb the converged store.
    let count = KillPoints::count_only();
    let count_root = temp_dir("ingest_count");
    let mut acked = 0u64;
    drive_ingest(&count_root, &texts, Some(count.clone()), &mut acked).unwrap();
    assert_eq!(acked, texts.len() as u64);
    assert_current_matches("ingest counting pass", &count_root, &ref_dir);
    let (checkpoints, io_points) = (count.checkpoints_seen(), count.io_seen());
    assert!(
        checkpoints >= 10,
        "expected rotations and multi-step compactions, saw {checkpoints} checkpoints"
    );
    assert!(
        io_points >= texts.len() as u64,
        "every append is an IO crash site (saw {io_points})"
    );

    let sweep = |kp: Arc<KillPoints>, label: String| {
        let root = temp_dir("ingest_sweep");
        let mut acked = 0u64;
        let err = drive_ingest(&root, &texts, Some(kp.clone()), &mut acked)
            .expect_err(&format!("{label}: ingest must crash"));
        assert!(kp.fired(), "{label}: injector did not fire");
        assert!(
            err.to_string().contains("injected crash"),
            "{label}: unexpected error {err}"
        );

        // The dead process's durable state: every acked text, in order.
        // One append may be in flight when the crash lands (its WAL frame
        // written but its `Ok` never returned — e.g. a crash inside the
        // rotation the append triggered), so recovery may legitimately
        // hold `acked` or `acked + 1` texts; anything else is lost acked
        // data or resurrected garbage.
        {
            let recovered = IngestIndex::open(&root, None, ingest_opts(None))
                .unwrap_or_else(|e| panic!("{label}: recovery failed: {e}"));
            let next = recovered.next_text_id();
            assert!(
                next == acked || next == acked + 1,
                "{label}: recovered {next} texts, acked {acked} — \
                 acked texts lost or unacked texts resurrected"
            );
            let in_memory: Vec<Vec<u32>> = recovered
                .segments()
                .flat_map(|s| s.texts().iter().cloned())
                .collect();
            assert_eq!(
                in_memory.as_slice(),
                &texts[recovered.covered() as usize..next as usize],
                "{label}: recovered texts differ from the appended prefix"
            );
        }
        // Offline verification holds in the crashed state too.
        verify_memtable(&root).unwrap_or_else(|e| panic!("{label}: verify failed: {e}"));

        // Resume to completion: the converged store equals the batch build.
        let mut resumed = 0u64;
        drive_ingest(&root, &texts, None, &mut resumed)
            .unwrap_or_else(|e| panic!("{label}: resume failed: {e}"));
        assert_eq!(resumed, texts.len() as u64);
        assert_current_matches(&label, &root, &ref_dir);
        let report = verify_memtable(&root)
            .unwrap()
            .expect("memtable manifest persists");
        assert_eq!(report.pending_texts, 0, "{label}: trim left pending texts");
    };

    for n in 0..checkpoints {
        sweep(
            KillPoints::at_checkpoint(n),
            format!("ingest checkpoint {n}"),
        );
    }
    for n in spread(io_points, 8) {
        sweep(KillPoints::at_io(n), format!("ingest io {n}"));
    }
    for name in ["ingest_ref", "ingest_count", "ingest_sweep"] {
        std::fs::remove_dir_all(std::env::temp_dir().join("ndss_it_crash").join(name)).ok();
    }
}

/// A crash *during the recovery run* (the second process dies too) must
/// leave the store just as recoverable: acked texts survive both crashes
/// and the third run converges byte-identically.
#[test]
fn ingest_survives_a_crash_during_recovery() {
    let texts = ingest_texts();
    let ref_dir = temp_dir("ingest2_ref");
    let mem =
        MemoryIndex::build(&InMemoryCorpus::from_texts(texts.clone()), ingest_config()).unwrap();
    ndss::index::write_memory_index(&mem, &ref_dir).unwrap();

    let count = KillPoints::count_only();
    let count_root = temp_dir("ingest2_count");
    let mut acked = 0u64;
    drive_ingest(&count_root, &texts, Some(count.clone()), &mut acked).unwrap();
    let checkpoints = count.checkpoints_seen();

    for second in 0..3u64 {
        let root = temp_dir("ingest2_sweep");
        let mut first_acked = 0u64;
        drive_ingest(
            &root,
            &texts,
            Some(KillPoints::at_checkpoint(checkpoints / 2)),
            &mut first_acked,
        )
        .expect_err("first run must crash");
        // The recovery run crashes at its own early checkpoint…
        let kp = KillPoints::at_checkpoint(second);
        let mut second_acked = 0u64;
        drive_ingest(&root, &texts, Some(kp.clone()), &mut second_acked)
            .expect_err("recovery run must crash too");
        assert!(kp.fired(), "second {second}: injector did not fire");
        assert!(
            second_acked >= first_acked,
            "second {second}: recovery lost acked texts"
        );
        // …and the third run still converges.
        let mut final_acked = 0u64;
        drive_ingest(&root, &texts, None, &mut final_acked)
            .unwrap_or_else(|e| panic!("second {second}: final resume failed: {e}"));
        assert_eq!(final_acked, texts.len() as u64);
        assert_current_matches(&format!("double crash at {second}"), &root, &ref_dir);
    }
    for name in ["ingest2_ref", "ingest2_count", "ingest2_sweep"] {
        std::fs::remove_dir_all(std::env::temp_dir().join("ndss_it_crash").join(name)).ok();
    }
}
