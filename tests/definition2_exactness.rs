//! Property-based verification of the system's central guarantee
//! (Theorem 2): the indexed search solves the approximate problem
//! (Definition 2) **exactly** — sound and complete — and the compact-window
//! machinery underneath preserves its partition invariant on arbitrary
//! inputs.

use proptest::prelude::*;

use ndss::prelude::*;
use ndss::query::bruteforce::definition2_scan;
use ndss::query::{collision_count, interval_scan, Interval};
use ndss::windows::verify::check_partition_property;
use ndss::windows::{generate_cartesian, generate_recursive, CompactWindow};

/// Strategy: a small corpus of token arrays with a controllable amount of
/// token repetition (small vocab = many duplicate tokens = many hash ties).
fn corpus_strategy() -> impl Strategy<Value = Vec<Vec<u32>>> {
    proptest::collection::vec(proptest::collection::vec(0u32..40, 10..60), 1..6)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The indexed search equals the brute-force Definition 2 oracle for
    /// random corpora, queries, k, t, and θ.
    #[test]
    fn indexed_search_equals_oracle(
        texts in corpus_strategy(),
        query in proptest::collection::vec(0u32..40, 5..30),
        k in 1usize..10,
        t in 2usize..12,
        theta in 0.3f64..1.0,
    ) {
        let corpus = InMemoryCorpus::from_texts(texts);
        let config = IndexConfig::new(k, t, 0xABCD);
        let index = MemoryIndex::build(&corpus, config).unwrap();
        let searcher = NearDupSearcher::new(&index).unwrap();
        let hasher = index.config().hasher();

        let indexed = searcher.search(&query, theta).unwrap().enumerate_all();
        let oracle = definition2_scan(&corpus, &hasher, &query, theta, t).unwrap();
        prop_assert_eq!(indexed, oracle);
    }

    /// Prefix filtering never changes the result set.
    #[test]
    fn prefix_filter_is_transparent(
        texts in corpus_strategy(),
        query in proptest::collection::vec(0u32..40, 5..30),
        cutoff in 1u64..30,
        theta in 0.3f64..1.0,
    ) {
        let corpus = InMemoryCorpus::from_texts(texts);
        let index = MemoryIndex::build(&corpus, IndexConfig::new(6, 5, 0xBEEF)).unwrap();
        let plain = NearDupSearcher::new(&index).unwrap();
        let filtered =
            NearDupSearcher::with_prefix_filter(&index, PrefixFilter::MaxListLen(cutoff))
                .unwrap();
        let a = plain.search(&query, theta).unwrap().enumerate_all();
        let b = filtered.search(&query, theta).unwrap().enumerate_all();
        prop_assert_eq!(a, b);
    }

    /// Compact windows partition the ≥ t sequences of arbitrary hash arrays,
    /// and both generators agree.
    #[test]
    fn window_partition_property(
        hashes in proptest::collection::vec(0u64..50, 1..80),
        t in 1usize..15,
    ) {
        let mut cart = Vec::new();
        generate_cartesian(&hashes, t, &mut cart);
        check_partition_property(&hashes, t, &cart)
            .map_err(TestCaseError::fail)?;

        let mut rec = Vec::new();
        generate_recursive(&hashes, t, &mut rec);
        let mut a = cart.clone();
        let mut b = rec;
        a.sort_by_key(|hw| (hw.window.l, hw.window.c, hw.window.r));
        b.sort_by_key(|hw| (hw.window.l, hw.window.c, hw.window.r));
        prop_assert_eq!(a, b);
    }

    /// IntervalScan reports exactly the positions covered by ≥ α intervals.
    #[test]
    fn interval_scan_matches_bruteforce(
        raw in proptest::collection::vec((0u32..40, 0u32..15), 1..12),
        alpha in 1usize..6,
    ) {
        let intervals: Vec<Interval> = raw
            .iter()
            .enumerate()
            .map(|(id, &(lo, width))| Interval::new(id as u32, lo, lo + width))
            .collect();
        let hits = interval_scan(&intervals, alpha);
        let max = intervals.iter().map(|iv| iv.hi).max().unwrap();
        for pos in 0..=max {
            let expect: usize = intervals
                .iter()
                .filter(|iv| iv.lo <= pos && pos <= iv.hi)
                .count();
            let hit = hits.iter().find(|h| h.range_lo <= pos && pos <= h.range_hi);
            if expect >= alpha {
                let h = hit.ok_or_else(|| TestCaseError::fail(format!("pos {pos} missing")))?;
                prop_assert_eq!(h.active.len(), expect);
            } else {
                prop_assert!(hit.is_none(), "pos {} wrongly covered", pos);
            }
        }
    }

    /// CollisionCount rectangles are exactly the ≥ α collision sequences.
    #[test]
    fn collision_count_matches_bruteforce(
        raw in proptest::collection::vec((0u32..12, 0u32..6, 0u32..8), 1..8),
        alpha in 1usize..5,
    ) {
        let windows: Vec<CompactWindow> = raw
            .iter()
            .map(|&(l, dc, dr)| CompactWindow::new(l, l + dc, l + dc + dr))
            .collect();
        let rects = collision_count(&windows, alpha);
        let max = windows.iter().map(|w| w.r).max().unwrap();
        for i in 0..=max {
            for j in i..=max {
                let count = windows.iter().filter(|w| w.covers(i, j)).count();
                let in_rects: Vec<u32> = rects
                    .iter()
                    .filter(|r| r.contains(i, j))
                    .map(|r| r.collisions)
                    .collect();
                if count >= alpha {
                    prop_assert_eq!(
                        in_rects.len(), 1,
                        "seq ({},{}) must be in exactly one rectangle", i, j
                    );
                    prop_assert_eq!(in_rects[0] as usize, count);
                } else {
                    prop_assert!(in_rects.is_empty());
                }
            }
        }
    }

    /// Merged spans cover exactly the union of enumerated sequences.
    #[test]
    fn merged_spans_equal_enumeration_union(
        texts in corpus_strategy(),
        query in proptest::collection::vec(0u32..40, 8..30),
    ) {
        let corpus = InMemoryCorpus::from_texts(texts);
        let index = MemoryIndex::build(&corpus, IndexConfig::new(4, 5, 0xFEED)).unwrap();
        let searcher = NearDupSearcher::new(&index).unwrap();
        let outcome = searcher.search(&query, 0.5).unwrap();
        for m in &outcome.matches {
            let mut covered = std::collections::BTreeSet::new();
            for span in m.enumerate(outcome.t) {
                for pos in span.start..=span.end {
                    covered.insert(pos);
                }
            }
            let mut merged_cover = std::collections::BTreeSet::new();
            for span in m.merged_spans(outcome.t) {
                for pos in span.start..=span.end {
                    merged_cover.insert(pos);
                }
            }
            prop_assert_eq!(covered, merged_cover);
        }
    }
}

// ---------------------------------------------------------------------------
// Deterministic seeded grid sweep: structured corpora × (θ, t, k), always
// checked against the brute-force Definition 2 oracle, plus execution-mode
// equivalences (batch ≡ sequential, cached ≡ cold ≡ in-memory). Every seed
// is pinned so a CI failure reproduces bit-for-bit.
// ---------------------------------------------------------------------------

use ndss::index::{write_memory_index, CacheConfig};

/// Four corpus shapes that stress different index regimes: list fan-out
/// (many short texts), long posting runs (few long texts), heavy hash ties
/// (tiny vocabulary), and near-distinct tokens (large vocabulary).
fn corpus_shapes() -> Vec<(&'static str, InMemoryCorpus)> {
    let build = |seed: u64, n: usize, lo: usize, hi: usize, vocab: usize| {
        SyntheticCorpusBuilder::new(seed)
            .num_texts(n)
            .text_len(lo, hi)
            .vocab_size(vocab)
            .duplicates_per_text(0.8)
            .dup_len(8, 16)
            .mutation_rate(0.1)
            .build()
            .0
    };
    vec![
        ("many-short", build(0x51, 14, 20, 45, 50)),
        ("few-long", build(0x52, 3, 120, 180, 200)),
        ("tiny-vocab", build(0x53, 8, 30, 70, 8)),
        ("large-vocab", build(0x54, 8, 30, 70, 5000)),
    ]
}

/// Two queries per corpus: a verbatim slice of text 0 (guaranteed hits at
/// high θ) and a perturbed copy of it (partial-overlap hits at lower θ).
fn grid_queries(corpus: &InMemoryCorpus) -> Vec<Vec<u32>> {
    let text = corpus.text_to_vec(0).unwrap();
    let len = text.len().min(20);
    let slice = text[..len].to_vec();
    let mut perturbed = slice.clone();
    for (i, tok) in perturbed.iter_mut().enumerate() {
        if i % 4 == 3 {
            *tok = tok.wrapping_add(1);
        }
    }
    vec![slice, perturbed]
}

/// The heart of Theorem 2: across every (shape, t, k, θ) cell the indexed
/// search returns byte-identical results to the O(k·Σn²) oracle.
#[test]
fn seeded_grid_sweep_matches_oracle() {
    for (shape, corpus) in corpus_shapes() {
        let queries = grid_queries(&corpus);
        for &t in &[3usize, 10] {
            for &k in &[2usize, 6, 12] {
                let seed = 0x5EED ^ ((k as u64) << 8) ^ t as u64;
                let index = MemoryIndex::build(&corpus, IndexConfig::new(k, t, seed)).unwrap();
                let searcher = NearDupSearcher::new(&index).unwrap();
                let hasher = index.config().hasher();
                for (qi, query) in queries.iter().enumerate() {
                    for &theta in &[0.4f64, 0.7, 0.9, 1.0] {
                        let got = searcher.search(query, theta).unwrap().enumerate_all();
                        let want = definition2_scan(&corpus, &hasher, query, theta, t).unwrap();
                        assert_eq!(
                            got, want,
                            "divergence at shape={shape} t={t} k={k} θ={theta} query#{qi}"
                        );
                    }
                }
            }
        }
    }
}

/// Batch execution is a pure throughput optimization: for every thread
/// count the outcomes equal the sequential searcher's, query for query.
#[test]
fn batch_equals_sequential_for_all_thread_counts() {
    let (_, corpus) = corpus_shapes().swap_remove(0);
    let index = MemoryIndex::build(&corpus, IndexConfig::new(8, 6, 0xC0FFEE)).unwrap();
    let sequential = NearDupSearcher::new(&index).unwrap();

    let mut queries = Vec::new();
    for text in 0..corpus.num_texts().min(8) as u32 {
        let tokens = corpus.text_to_vec(text).unwrap();
        queries.push(tokens[..tokens.len().min(18)].to_vec());
    }
    queries.push(vec![9999, 9998, 9997, 9996, 9995, 9994, 9993]); // no hits

    for &theta in &[0.5f64, 0.9] {
        let expected: Vec<_> = queries
            .iter()
            .map(|q| sequential.search(q, theta).unwrap().enumerate_all())
            .collect();
        for &threads in &[1usize, 2, 4, 8] {
            let batch = BatchSearcher::new(&index).unwrap().threads(threads);
            let outcomes = batch.search_all(&queries, theta).unwrap();
            assert_eq!(outcomes.len(), queries.len());
            for (i, outcome) in outcomes.iter().enumerate() {
                assert_eq!(
                    outcome.enumerate_all(),
                    expected[i],
                    "θ={theta} threads={threads} query#{i}"
                );
            }
        }
    }
}

/// The on-disk formats are pure storage encodings: for every corpus shape
/// and grid cell, v5 (bitpacked + SIMD unpack + skip gather) answers
/// bit-identically to v4 (varint) and v3 (fixed width), whether the file is
/// read cold (caches disabled), warm (second pass over populated caches),
/// or through the mmap read path — and batch execution over the v5 index
/// agrees at 1/2/4/8 threads.
#[test]
fn format_v5_matches_v4_and_v3_cold_warm_mmap_threaded() {
    use ndss::index::ReadOptions;

    let root = std::env::temp_dir().join("ndss_def2_format_equiv");
    std::fs::remove_dir_all(&root).ok();

    for (shape, corpus) in corpus_shapes() {
        let queries = grid_queries(&corpus);
        let base = IndexConfig::new(6, 5, 0xF0F5);
        let mem = MemoryIndex::build(&corpus, base.clone()).unwrap();
        let mem_s = NearDupSearcher::new(&mem).unwrap();

        let configs = [
            ("v3", base.clone()),
            ("v4", base.clone().compressed(true)),
            ("v5", base.clone().bit_packed(true)),
        ];
        for (fmt, config) in configs {
            assert_eq!(config.format_name(), fmt);
            let dir = root.join(format!("{shape}_{fmt}"));
            let built = MemoryIndex::build(&corpus, config).unwrap();
            let warm = write_memory_index(&built, &dir).unwrap();
            let cold = DiskIndex::open_with_cache(&dir, CacheConfig::disabled()).unwrap();
            let mapped =
                DiskIndex::open_with_io(&dir, CacheConfig::disabled(), ReadOptions::with_mmap())
                    .unwrap();
            let warm_s = NearDupSearcher::new(&warm).unwrap();
            let cold_s = NearDupSearcher::new(&cold).unwrap();
            let mapped_s = NearDupSearcher::new(&mapped).unwrap();
            for (qi, query) in queries.iter().enumerate() {
                for &theta in &[0.5f64, 0.9] {
                    let want = mem_s.search(query, theta).unwrap().enumerate_all();
                    let ctx = format!("shape={shape} fmt={fmt} θ={theta} query#{qi}");
                    let cold_got = cold_s.search(query, theta).unwrap().enumerate_all();
                    let warm1 = warm_s.search(query, theta).unwrap().enumerate_all();
                    let warm2 = warm_s.search(query, theta).unwrap().enumerate_all();
                    let mmap_got = mapped_s.search(query, theta).unwrap().enumerate_all();
                    assert_eq!(cold_got, want, "cold read diverged: {ctx}");
                    assert_eq!(warm1, want, "cache-warming read diverged: {ctx}");
                    assert_eq!(warm2, want, "cache-hit read diverged: {ctx}");
                    assert_eq!(mmap_got, want, "mmap read diverged: {ctx}");
                }
            }
            // Batch execution over this format at every thread count.
            for &threads in &[1usize, 2, 4, 8] {
                let batch = BatchSearcher::new(&warm).unwrap().threads(threads);
                let outcomes = batch.search_all(&queries, 0.5).unwrap();
                for (qi, outcome) in outcomes.iter().enumerate() {
                    assert_eq!(
                        outcome.enumerate_all(),
                        mem_s.search(&queries[qi], 0.5).unwrap().enumerate_all(),
                        "batch diverged: shape={shape} fmt={fmt} threads={threads} query#{qi}"
                    );
                }
            }
        }
    }
    std::fs::remove_dir_all(&root).ok();
}

/// The disk index answers identically to the in-memory index it was written
/// from, with caches cold, warming, and warm — caching must never change
/// results, only IO counts.
#[test]
fn cached_and_cold_disk_reads_agree_with_memory() {
    let dir = std::env::temp_dir().join("ndss_def2_cache_equiv");
    std::fs::remove_dir_all(&dir).ok();

    let (_, corpus) = corpus_shapes().swap_remove(2); // tiny vocab: long lists
    let mem = MemoryIndex::build(&corpus, IndexConfig::new(6, 5, 0xD15C)).unwrap();
    let warm_index = write_memory_index(&mem, &dir).unwrap();
    let cold_index = DiskIndex::open_with_cache(&dir, CacheConfig::disabled()).unwrap();

    let mem_s = NearDupSearcher::new(&mem).unwrap();
    let warm_s = NearDupSearcher::new(&warm_index).unwrap();
    let cold_s = NearDupSearcher::new(&cold_index).unwrap();

    for query in grid_queries(&corpus) {
        for &theta in &[0.5f64, 0.9] {
            let want = mem_s.search(&query, theta).unwrap().enumerate_all();
            // First warm pass populates the cache, second is served from it.
            let warm1 = warm_s.search(&query, theta).unwrap().enumerate_all();
            let warm2 = warm_s.search(&query, theta).unwrap().enumerate_all();
            let cold = cold_s.search(&query, theta).unwrap().enumerate_all();
            assert_eq!(warm1, want, "cache-warming read diverged (θ={theta})");
            assert_eq!(warm2, want, "cache-hit read diverged (θ={theta})");
            assert_eq!(cold, want, "uncached read diverged (θ={theta})");
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}
