//! Property-based verification of the system's central guarantee
//! (Theorem 2): the indexed search solves the approximate problem
//! (Definition 2) **exactly** — sound and complete — and the compact-window
//! machinery underneath preserves its partition invariant on arbitrary
//! inputs.

use proptest::prelude::*;

use ndss::prelude::*;
use ndss::query::bruteforce::definition2_scan;
use ndss::query::{collision_count, interval_scan, Interval};
use ndss::windows::verify::check_partition_property;
use ndss::windows::{generate_cartesian, generate_recursive, CompactWindow};

/// Strategy: a small corpus of token arrays with a controllable amount of
/// token repetition (small vocab = many duplicate tokens = many hash ties).
fn corpus_strategy() -> impl Strategy<Value = Vec<Vec<u32>>> {
    proptest::collection::vec(proptest::collection::vec(0u32..40, 10..60), 1..6)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The indexed search equals the brute-force Definition 2 oracle for
    /// random corpora, queries, k, t, and θ.
    #[test]
    fn indexed_search_equals_oracle(
        texts in corpus_strategy(),
        query in proptest::collection::vec(0u32..40, 5..30),
        k in 1usize..10,
        t in 2usize..12,
        theta in 0.3f64..1.0,
    ) {
        let corpus = InMemoryCorpus::from_texts(texts);
        let config = IndexConfig::new(k, t, 0xABCD);
        let index = MemoryIndex::build(&corpus, config).unwrap();
        let searcher = NearDupSearcher::new(&index).unwrap();
        let hasher = index.config().hasher();

        let indexed = searcher.search(&query, theta).unwrap().enumerate_all();
        let oracle = definition2_scan(&corpus, &hasher, &query, theta, t).unwrap();
        prop_assert_eq!(indexed, oracle);
    }

    /// Prefix filtering never changes the result set.
    #[test]
    fn prefix_filter_is_transparent(
        texts in corpus_strategy(),
        query in proptest::collection::vec(0u32..40, 5..30),
        cutoff in 1u64..30,
        theta in 0.3f64..1.0,
    ) {
        let corpus = InMemoryCorpus::from_texts(texts);
        let index = MemoryIndex::build(&corpus, IndexConfig::new(6, 5, 0xBEEF)).unwrap();
        let plain = NearDupSearcher::new(&index).unwrap();
        let filtered =
            NearDupSearcher::with_prefix_filter(&index, PrefixFilter::MaxListLen(cutoff))
                .unwrap();
        let a = plain.search(&query, theta).unwrap().enumerate_all();
        let b = filtered.search(&query, theta).unwrap().enumerate_all();
        prop_assert_eq!(a, b);
    }

    /// Compact windows partition the ≥ t sequences of arbitrary hash arrays,
    /// and both generators agree.
    #[test]
    fn window_partition_property(
        hashes in proptest::collection::vec(0u64..50, 1..80),
        t in 1usize..15,
    ) {
        let mut cart = Vec::new();
        generate_cartesian(&hashes, t, &mut cart);
        check_partition_property(&hashes, t, &cart)
            .map_err(TestCaseError::fail)?;

        let mut rec = Vec::new();
        generate_recursive(&hashes, t, &mut rec);
        let mut a = cart.clone();
        let mut b = rec;
        a.sort_by_key(|hw| (hw.window.l, hw.window.c, hw.window.r));
        b.sort_by_key(|hw| (hw.window.l, hw.window.c, hw.window.r));
        prop_assert_eq!(a, b);
    }

    /// IntervalScan reports exactly the positions covered by ≥ α intervals.
    #[test]
    fn interval_scan_matches_bruteforce(
        raw in proptest::collection::vec((0u32..40, 0u32..15), 1..12),
        alpha in 1usize..6,
    ) {
        let intervals: Vec<Interval> = raw
            .iter()
            .enumerate()
            .map(|(id, &(lo, width))| Interval::new(id as u32, lo, lo + width))
            .collect();
        let hits = interval_scan(&intervals, alpha);
        let max = intervals.iter().map(|iv| iv.hi).max().unwrap();
        for pos in 0..=max {
            let expect: usize = intervals
                .iter()
                .filter(|iv| iv.lo <= pos && pos <= iv.hi)
                .count();
            let hit = hits.iter().find(|h| h.range_lo <= pos && pos <= h.range_hi);
            if expect >= alpha {
                let h = hit.ok_or_else(|| TestCaseError::fail(format!("pos {pos} missing")))?;
                prop_assert_eq!(h.active.len(), expect);
            } else {
                prop_assert!(hit.is_none(), "pos {} wrongly covered", pos);
            }
        }
    }

    /// CollisionCount rectangles are exactly the ≥ α collision sequences.
    #[test]
    fn collision_count_matches_bruteforce(
        raw in proptest::collection::vec((0u32..12, 0u32..6, 0u32..8), 1..8),
        alpha in 1usize..5,
    ) {
        let windows: Vec<CompactWindow> = raw
            .iter()
            .map(|&(l, dc, dr)| CompactWindow::new(l, l + dc, l + dc + dr))
            .collect();
        let rects = collision_count(&windows, alpha);
        let max = windows.iter().map(|w| w.r).max().unwrap();
        for i in 0..=max {
            for j in i..=max {
                let count = windows.iter().filter(|w| w.covers(i, j)).count();
                let in_rects: Vec<u32> = rects
                    .iter()
                    .filter(|r| r.contains(i, j))
                    .map(|r| r.collisions)
                    .collect();
                if count >= alpha {
                    prop_assert_eq!(
                        in_rects.len(), 1,
                        "seq ({},{}) must be in exactly one rectangle", i, j
                    );
                    prop_assert_eq!(in_rects[0] as usize, count);
                } else {
                    prop_assert!(in_rects.is_empty());
                }
            }
        }
    }

    /// Merged spans cover exactly the union of enumerated sequences.
    #[test]
    fn merged_spans_equal_enumeration_union(
        texts in corpus_strategy(),
        query in proptest::collection::vec(0u32..40, 8..30),
    ) {
        let corpus = InMemoryCorpus::from_texts(texts);
        let index = MemoryIndex::build(&corpus, IndexConfig::new(4, 5, 0xFEED)).unwrap();
        let searcher = NearDupSearcher::new(&index).unwrap();
        let outcome = searcher.search(&query, 0.5).unwrap();
        for m in &outcome.matches {
            let mut covered = std::collections::BTreeSet::new();
            for span in m.enumerate(outcome.t) {
                for pos in span.start..=span.end {
                    covered.insert(pos);
                }
            }
            let mut merged_cover = std::collections::BTreeSet::new();
            for span in m.merged_spans(outcome.t) {
                for pos in span.start..=span.end {
                    merged_cover.insert(pos);
                }
            }
            prop_assert_eq!(covered, merged_cover);
        }
    }
}
