//! End-to-end integration: synthetic corpus → index → search, across all
//! builder paths and filter policies, validated against planted ground
//! truth and the exact-Jaccard oracle.

use ndss::prelude::*;

fn temp_dir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("ndss_it_e2e").join(name);
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Every planted *exact* duplicate must be recovered at θ close to 1 when
/// querying with the copy: min-hash collisions are deterministic for
/// identical token sets, so recall on exact copies is 100%.
#[test]
fn exact_planted_duplicates_always_found() {
    let (corpus, planted) = SyntheticCorpusBuilder::new(101)
        .num_texts(120)
        .text_len(150, 300)
        .duplicates_per_text(1.0)
        .dup_len(50, 90)
        .mutation_rate(0.0)
        .build();
    assert!(planted.len() > 50, "expected many planted duplicates");
    let index =
        CorpusIndex::build_in_memory_parallel(&corpus, SearchParams::new(16, 25, 5)).unwrap();
    let searcher = index.searcher().unwrap();
    for p in &planted {
        let query = corpus.sequence_to_vec(p.dst).unwrap();
        let outcome = searcher.search(&query, 1.0).unwrap();
        assert!(
            outcome.matches.iter().any(|m| m.text == p.src.text),
            "planted source {:?} not found for copy {:?}",
            p.src,
            p.dst
        );
    }
}

/// Near-duplicates (5% mutation) must be found at θ = 0.7 with high
/// probability; we allow a small number of misses (min-hash is an
/// estimator) but require ≥ 90% recall over all planted pairs.
#[test]
fn near_duplicate_recall_is_high() {
    let (corpus, planted) = SyntheticCorpusBuilder::new(102)
        .num_texts(100)
        .text_len(150, 300)
        .duplicates_per_text(1.0)
        .dup_len(60, 100)
        .mutation_rate(0.05)
        .build();
    let index =
        CorpusIndex::build_in_memory_parallel(&corpus, SearchParams::new(32, 25, 6)).unwrap();
    let searcher = index.searcher().unwrap();
    let mut found = 0usize;
    for p in &planted {
        let query = corpus.sequence_to_vec(p.dst).unwrap();
        let outcome = searcher.search(&query, 0.7).unwrap();
        if outcome.matches.iter().any(|m| m.text == p.src.text) {
            found += 1;
        }
    }
    let recall = found as f64 / planted.len() as f64;
    assert!(
        recall >= 0.9,
        "recall {recall:.3} ({found}/{})",
        planted.len()
    );
}

/// The same queries through the in-memory index, the disk index, and the
/// externally built disk index give identical result sets, with and without
/// prefix filtering.
#[test]
fn all_paths_agree_on_results() {
    let (corpus, planted) = SyntheticCorpusBuilder::new(103)
        .num_texts(60)
        .text_len(120, 240)
        .vocab_size(600)
        .duplicates_per_text(1.0)
        .mutation_rate(0.04)
        .build();
    let params = SearchParams::new(16, 20, 11);
    let mem = CorpusIndex::build_in_memory(&corpus, params.clone()).unwrap();
    let d1 = temp_dir("disk");
    let disk = CorpusIndex::build_on_disk(&corpus, params.clone(), &d1).unwrap();
    let d2 = temp_dir("ext");
    let ext = CorpusIndex::build_external(&corpus, params, &d2, 1 << 16).unwrap();

    let mem_s = mem.searcher().unwrap();
    let disk_s = disk.searcher().unwrap();
    let ext_s = ext.searcher().unwrap();
    let disk_nf = NearDupSearcher::new(disk.index()).unwrap();

    for p in planted.iter().take(8) {
        let query = corpus.sequence_to_vec(p.dst).unwrap();
        for theta in [0.7, 0.9, 1.0] {
            let a = mem_s.search(&query, theta).unwrap().enumerate_all();
            let b = disk_s.search(&query, theta).unwrap().enumerate_all();
            let c = ext_s.search(&query, theta).unwrap().enumerate_all();
            let d = disk_nf.search(&query, theta).unwrap().enumerate_all();
            assert_eq!(a, b, "mem vs disk at theta {theta}");
            assert_eq!(a, c, "mem vs external at theta {theta}");
            assert_eq!(a, d, "filtered vs unfiltered at theta {theta}");
        }
    }
    std::fs::remove_dir_all(&d1).ok();
    std::fs::remove_dir_all(&d2).ok();
}

/// Verified search returns exactly the Definition-1 answer (true Jaccard ≥
/// θ) when k is large enough that no true near-duplicate is missed at the
/// collision stage (here: exact copies only, so collisions are certain).
#[test]
fn verified_search_equals_definition1_on_exact_copies() {
    let (corpus, planted) = SyntheticCorpusBuilder::new(104)
        .num_texts(30)
        .text_len(100, 160)
        .duplicates_per_text(1.0)
        .dup_len(40, 60)
        .mutation_rate(0.0)
        .build();
    let index = CorpusIndex::build_in_memory(&corpus, SearchParams::new(32, 30, 8)).unwrap();
    let p = &planted[0];
    let query = corpus.sequence_to_vec(p.dst).unwrap();

    let (verified, _) = index
        .search_verified(&query, 0.95, &corpus, 5_000_000)
        .unwrap();
    let oracle = ndss::query::bruteforce::definition1_scan(&corpus, &query, 0.95, 30).unwrap();
    // The verified result must be a subset of the oracle (everything it
    // returns is truly similar) and must contain the planted source span.
    for seq in &verified {
        assert!(oracle.contains(seq), "verified hit {seq:?} not in oracle");
    }
    assert!(
        verified.iter().any(|s| s.text == p.src.text),
        "planted source missing from verified results"
    );
}

/// The disk index reports IO, and prefix filtering shifts bytes: the
/// filtered searcher must read no more bytes than the unfiltered one on the
/// same query mix.
#[test]
fn prefix_filtering_reduces_io() {
    let (corpus, planted) = SyntheticCorpusBuilder::new(105)
        .num_texts(150)
        .text_len(150, 300)
        .vocab_size(300) // small vocab → heavy Zipf skew → long lists
        .duplicates_per_text(1.0)
        .mutation_rate(0.02)
        .build();
    let dir = temp_dir("io");
    let params = SearchParams::new(16, 20, 13).index_config(|c| c.zone_map(16, 64));
    let disk = CorpusIndex::build_on_disk(&corpus, params, &dir).unwrap();

    let queries: Vec<Vec<TokenId>> = planted
        .iter()
        .take(10)
        .map(|p| corpus.sequence_to_vec(p.dst).unwrap())
        .collect();

    let run = |searcher: &NearDupSearcher<'_, DiskIndex>| -> u64 {
        let mut bytes = 0;
        for q in &queries {
            let outcome = searcher.search(q, 0.8).unwrap();
            bytes += outcome.stats.io_bytes;
        }
        bytes
    };
    let unfiltered = NearDupSearcher::new(disk.index()).unwrap();
    let filtered =
        NearDupSearcher::with_prefix_filter(disk.index(), PrefixFilter::FrequentFraction(0.10))
            .unwrap();
    let bytes_unfiltered = run(&unfiltered);
    let bytes_filtered = run(&filtered);
    assert!(
        bytes_filtered <= bytes_unfiltered,
        "filtered read {bytes_filtered} B > unfiltered {bytes_unfiltered} B"
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// A compressed (v2) disk index answers every query identically to the
/// uncompressed one while occupying materially less disk.
#[test]
fn compressed_index_is_transparent_to_search() {
    let (corpus, planted) = SyntheticCorpusBuilder::new(107)
        .num_texts(80)
        .vocab_size(800)
        .duplicates_per_text(1.0)
        .mutation_rate(0.04)
        .build();
    let d1 = temp_dir("v1");
    let d2 = temp_dir("v2");
    let params = SearchParams::new(8, 20, 31);
    let plain = CorpusIndex::build_on_disk(&corpus, params.clone(), &d1).unwrap();
    let packed =
        CorpusIndex::build_on_disk(&corpus, params.index_config(|c| c.compressed(true)), &d2)
            .unwrap();
    assert!(packed.index().size_bytes().unwrap() < plain.index().size_bytes().unwrap());
    let s1 = plain.searcher().unwrap();
    let s2 = packed.searcher().unwrap();
    for p in planted.iter().take(10) {
        let query = corpus.sequence_to_vec(p.dst).unwrap();
        for theta in [0.7, 0.9, 1.0] {
            assert_eq!(
                s1.search(&query, theta).unwrap().enumerate_all(),
                s2.search(&query, theta).unwrap().enumerate_all(),
                "compressed index diverged at theta {theta}"
            );
        }
    }
    // Reopening a v2 directory also works (version sniffing).
    drop(packed);
    let reopened = CorpusIndex::open(&d2, PrefixFilter::FrequentFraction(0.1)).unwrap();
    let query = corpus.sequence_to_vec(planted[0].dst).unwrap();
    assert_eq!(
        s1.search(&query, 0.8).unwrap().enumerate_all(),
        reopened.search(&query, 0.8).unwrap().enumerate_all()
    );
    std::fs::remove_dir_all(&d1).ok();
    std::fs::remove_dir_all(&d2).ok();
}

/// Results never contain sequences shorter than t, and all reported
/// rectangles meet the collision threshold β.
#[test]
fn result_invariants_hold() {
    let (corpus, planted) = SyntheticCorpusBuilder::new(106)
        .num_texts(60)
        .duplicates_per_text(1.0)
        .mutation_rate(0.05)
        .build();
    let index = CorpusIndex::build_in_memory(&corpus, SearchParams::new(16, 25, 14)).unwrap();
    let searcher = index.searcher().unwrap();
    for p in planted.iter().take(10) {
        let query = corpus.sequence_to_vec(p.dst).unwrap();
        let outcome = searcher.search(&query, 0.75).unwrap();
        for m in &outcome.matches {
            for r in &m.rects {
                assert!(r.collisions as usize >= outcome.beta);
            }
            for span in m.enumerate(outcome.t) {
                assert!(span.len() >= outcome.t);
            }
        }
    }
}
