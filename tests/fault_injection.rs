//! Fault-injection sweeps over every on-disk format.
//!
//! For each artifact (fixed-width v3 index, compressed v4 index, bitpacked
//! v5 index, corpus v2) the harness applies hundreds of seed-deterministic
//! mutations — bit
//! flips, truncations, zeroed pages, adversarial header fields, trailing
//! garbage — and requires that every case either fails with a clean typed
//! error or reads back byte-identically to the pristine artifact. A panic,
//! an allocation larger than 64 MiB, or a silently different query result
//! fails the sweep with the offending seed in the message.
//!
//! Because the checksummed formats cover every byte (header CRC + one CRC
//! per section) and validate exact file length, an *effective* mutation can
//! never read back clean — the sweeps assert all of them are rejected.
//! Legacy (v1/v2) files carry no checksums, so their sweeps only demand
//! memory safety: no panics and no unbounded allocations; corrupt data may
//! surface as either an error or wrong bytes.

use std::alloc::{GlobalAlloc, Layout, System};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};

use ndss::index::codec::{CompressedFileReader, CompressedFileWriter};
use ndss::index::format::{IndexFileReader, IndexFileWriter};
use ndss::index::{IoStats, Posting};
use ndss::prelude::*;
use ndss::windows::CompactWindow;

use ndss_integration::mutate::mutate;

/// Tracks the largest single allocation requested anywhere in the process.
/// A corrupted header must never translate into an OOM-sized allocation;
/// 64 MiB is orders of magnitude above anything these small test artifacts
/// legitimately need.
struct PeakAlloc;

static LARGEST_ALLOC: AtomicUsize = AtomicUsize::new(0);
const ALLOC_CAP: usize = 64 << 20;

unsafe impl GlobalAlloc for PeakAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        LARGEST_ALLOC.fetch_max(layout.size(), Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOC: PeakAlloc = PeakAlloc;

fn assert_alloc_cap(context: &str) {
    let peak = LARGEST_ALLOC.load(Ordering::Relaxed);
    assert!(
        peak <= ALLOC_CAP,
        "{context}: corrupted input drove a {peak}-byte allocation (cap {ALLOC_CAP})"
    );
}

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("ndss_it_faults").join(name);
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

// ---------------------------------------------------------------------------
// Checksummed index formats: full open → verify → query pipeline.
// ---------------------------------------------------------------------------

/// Opens the index directory, streams every stored checksum, and runs the
/// query set; any corruption must surface as `Err` before results differ.
fn run_queries(dir: &Path, queries: &[Vec<TokenId>]) -> Result<Vec<SeqRef>, String> {
    let index = CorpusIndex::open(dir, PrefixFilter::Disabled).map_err(|e| e.to_string())?;
    index
        .index()
        .verify_integrity()
        .map_err(|e| e.to_string())?;
    let searcher = index.searcher().map_err(|e| e.to_string())?;
    let mut out = Vec::new();
    for query in queries {
        let outcome = searcher.search(query, 0.8).map_err(|e| e.to_string())?;
        out.extend(outcome.enumerate_all());
    }
    Ok(out)
}

/// Builds an index in the named on-disk format (`"v3"`, `"v4"`, `"v5"`)
/// and runs the mutation sweep against its `inv_0.ndsi`.
fn index_sweep(version: &str, seeds: u64) {
    let (compress, packed) = match version {
        "v3" => (false, false),
        "v4" => (true, false),
        "v5" => (false, true),
        other => panic!("unknown index format {other}"),
    };
    let dir = temp_dir(&format!("index_{version}"));
    let (corpus, planted) = SyntheticCorpusBuilder::new(41).num_texts(30).build();
    let params = SearchParams::new(2, 25, 5)
        .index_config(|c| c.compressed(compress).bit_packed(packed).zone_map(8, 16));
    CorpusIndex::build_on_disk(&corpus, params, &dir).unwrap();
    let queries: Vec<Vec<TokenId>> = planted
        .iter()
        .take(4)
        .map(|p| corpus.sequence_to_vec(p.dst).unwrap())
        .collect();
    assert!(
        !queries.is_empty(),
        "synthetic corpus planted no duplicates"
    );
    let baseline = run_queries(&dir, &queries).expect("pristine index must verify and search");
    assert!(!baseline.is_empty(), "queries must hit planted duplicates");

    let target = dir.join("inv_0.ndsi");
    let pristine = std::fs::read(&target).unwrap();
    let (mut applied, mut rejected) = (0u64, 0u64);
    for seed in 0..seeds {
        let (mutated, mutation) = mutate(&pristine, seed);
        if mutated == pristine {
            continue; // e.g. zeroed an already-zero page
        }
        applied += 1;
        std::fs::write(&target, &mutated).unwrap();
        match catch_unwind(AssertUnwindSafe(|| run_queries(&dir, &queries))) {
            Err(_) => panic!("{version} seed {seed}: {mutation:?} caused a panic"),
            Ok(Err(_)) => rejected += 1,
            Ok(Ok(results)) => assert_eq!(
                results, baseline,
                "{version} seed {seed}: {mutation:?} gave silently wrong results"
            ),
        }
    }
    // Every byte of a checksummed file is covered, so no effective mutation
    // may survive the open + verify pipeline.
    assert_eq!(
        rejected, applied,
        "{version}: all {applied} effective mutations must be rejected"
    );
    assert!(
        applied > seeds / 2,
        "{version}: mutation sweep mostly no-ops"
    );
    std::fs::write(&target, &pristine).unwrap();
    let restored = run_queries(&dir, &queries).expect("restoring pristine bytes must heal");
    assert_eq!(restored, baseline);
    assert_alloc_cap(version);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn fixed_width_index_survives_mutation_sweep() {
    index_sweep("v3", 220);
}

#[test]
fn compressed_index_survives_mutation_sweep() {
    index_sweep("v4", 220);
}

/// v5's every byte is covered by the header CRC, the per-section CRCs, and
/// the structural prefix-sum check over per-block bit widths — so the
/// sweep's truncations (which shear the skip table) and bit flips (which
/// corrupt per-block widths) must all reject cleanly.
#[test]
fn bitpacked_index_survives_mutation_sweep() {
    index_sweep("v5", 220);
}

// ---------------------------------------------------------------------------
// Checksummed corpus format.
// ---------------------------------------------------------------------------

fn corpus_reads(path: &Path) -> Result<(u64, Vec<Vec<TokenId>>), String> {
    let corpus = DiskCorpus::open(path).map_err(|e| e.to_string())?;
    corpus.verify().map_err(|e| e.to_string())?;
    let mut texts = Vec::new();
    for id in 0..corpus.num_texts() {
        texts.push(
            corpus
                .text_to_vec(id as TextId)
                .map_err(|e| e.to_string())?,
        );
    }
    Ok((corpus.total_tokens(), texts))
}

#[test]
fn corpus_survives_mutation_sweep() {
    let dir = temp_dir("corpus_v2");
    let path = dir.join("c.ndsc");
    let (corpus, _) = SyntheticCorpusBuilder::new(42).num_texts(25).build();
    ndss::corpus::disk::write_corpus(&corpus, &path).unwrap();
    let baseline = corpus_reads(&path).expect("pristine corpus must verify and read");

    let pristine = std::fs::read(&path).unwrap();
    let (mut applied, mut rejected) = (0u64, 0u64);
    for seed in 0..220 {
        let (mutated, mutation) = mutate(&pristine, seed);
        if mutated == pristine {
            continue;
        }
        applied += 1;
        std::fs::write(&path, &mutated).unwrap();
        match catch_unwind(AssertUnwindSafe(|| corpus_reads(&path))) {
            Err(_) => panic!("corpus seed {seed}: {mutation:?} caused a panic"),
            Ok(Err(_)) => rejected += 1,
            Ok(Ok(read)) => assert_eq!(
                read, baseline,
                "corpus seed {seed}: {mutation:?} gave silently wrong texts"
            ),
        }
    }
    assert_eq!(
        rejected, applied,
        "corpus v2: all {applied} effective mutations must be rejected"
    );
    std::fs::write(&path, &pristine).unwrap();
    assert_eq!(corpus_reads(&path).unwrap(), baseline);
    assert_alloc_cap("corpus v2");
    std::fs::remove_dir_all(&dir).ok();
}

// ---------------------------------------------------------------------------
// Legacy (checksum-less) formats: corruption may go undetected, but it must
// never panic or provoke an OOM-sized allocation.
// ---------------------------------------------------------------------------

/// A small but non-trivial posting-list fixture: strictly ascending hashes,
/// per-list postings sorted by `(text, l, c, r)`.
fn fixture_lists() -> Vec<(u64, Vec<Posting>)> {
    (0..40u64)
        .map(|h| {
            let postings = (0..1 + (h % 4) as u32)
                .map(|text| {
                    let l = (h % 5) as u32;
                    let c = l + text % 3;
                    Posting {
                        text,
                        window: CompactWindow::new(l, c, c + 2),
                    }
                })
                .collect();
            (h * 17 + 3, postings)
        })
        .collect()
}

fn legacy_sweep<F>(name: &str, pristine: &[u8], path: &Path, seeds: u64, read: F)
where
    F: Fn(&Path) -> Result<(), String>,
{
    for seed in 0..seeds {
        let (mutated, mutation) = mutate(pristine, seed);
        std::fs::write(path, &mutated).unwrap();
        if let Err(panic) = catch_unwind(AssertUnwindSafe(|| {
            // Errors and silently wrong bytes are both acceptable for
            // checksum-less files; only panics and huge allocations are not.
            let _ = read(path);
        })) {
            drop(panic);
            panic!("{name} seed {seed}: {mutation:?} caused a panic");
        }
    }
    assert_alloc_cap(name);
}

#[test]
fn legacy_v1_index_never_panics() {
    let dir = temp_dir("legacy_v1");
    let path = dir.join("inv_0.ndsi");
    let mut writer = IndexFileWriter::create_legacy(&path, 0, 8, 16).unwrap();
    for (hash, postings) in fixture_lists() {
        writer.write_list(hash, &postings).unwrap();
    }
    writer.finish().unwrap();
    let pristine = std::fs::read(&path).unwrap();
    legacy_sweep("legacy v1", &pristine, &path, 80, |p| {
        let reader = IndexFileReader::open(p).map_err(|e| e.to_string())?;
        let stats = IoStats::default();
        for entry in reader.dir().to_vec() {
            reader
                .read_postings(&entry, &stats)
                .map_err(|e| e.to_string())?;
        }
        Ok(())
    });
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn legacy_v2_index_never_panics() {
    let dir = temp_dir("legacy_v2");
    let path = dir.join("inv_0.ndsi");
    let mut writer = CompressedFileWriter::create_legacy(&path, 0, 8).unwrap();
    let lists = fixture_lists();
    for (hash, postings) in &lists {
        writer.write_list(*hash, postings).unwrap();
    }
    writer.finish().unwrap();
    let pristine = std::fs::read(&path).unwrap();
    let hashes: Vec<u64> = lists.iter().map(|(h, _)| *h).collect();
    legacy_sweep("legacy v2", &pristine, &path, 80, move |p| {
        let reader = CompressedFileReader::open(p).map_err(|e| e.to_string())?;
        let stats = IoStats::default();
        for &hash in &hashes {
            reader.read_list(hash, &stats).map_err(|e| e.to_string())?;
        }
        Ok(())
    });
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn legacy_v1_corpus_never_panics() {
    let dir = temp_dir("legacy_corpus");
    let path = dir.join("c.ndsc");
    let mut writer = DiskCorpusWriter::create_legacy(&path).unwrap();
    for text in 0..20u32 {
        let tokens: Vec<TokenId> = (0..50).map(|i| text * 100 + i).collect();
        writer.push_text(&tokens).unwrap();
    }
    writer.finish().unwrap();
    let pristine = std::fs::read(&path).unwrap();
    legacy_sweep("legacy corpus", &pristine, &path, 80, |p| {
        let corpus = DiskCorpus::open(p).map_err(|e| e.to_string())?;
        for id in 0..corpus.num_texts() {
            corpus
                .text_to_vec(id as TextId)
                .map_err(|e| e.to_string())?;
        }
        Ok(())
    });
    std::fs::remove_dir_all(&dir).ok();
}

// ---------------------------------------------------------------------------
// Sharded store: corruption of one shard or the manifest must reject
// cleanly without poisoning its siblings.
// ---------------------------------------------------------------------------

/// Opens the sharded store, validates it end to end, and runs the query
/// set through the scatter-gather path.
fn run_sharded_queries(root: &Path, queries: &[Vec<TokenId>]) -> Result<Vec<SeqRef>, String> {
    let store = ShardedStore::open(root).map_err(|e| e.to_string())?;
    store.verify().map_err(|e| e.to_string())?;
    let view = ShardedIndex::open(root).map_err(|e| e.to_string())?;
    let searcher = view.searcher().map_err(|e| e.to_string())?;
    let mut out = Vec::new();
    for query in queries {
        let outcome = searcher.search(query, 0.8).map_err(|e| e.to_string())?;
        out.extend(outcome.enumerate_all());
    }
    Ok(out)
}

/// Seeded mutations of one shard's serving postings file: every effective
/// mutation is rejected with a clean error (never a panic, never silently
/// wrong results), per-shard verification pinpoints the broken shard while
/// its siblings still verify, and restoring the pristine bytes heals the
/// store.
#[test]
fn sharded_store_rejects_single_shard_corruption() {
    let root = temp_dir("sharded_shard0001");
    let (corpus, planted) = SyntheticCorpusBuilder::new(43).num_texts(30).build();
    let config = IndexConfig::new(2, 25, 5).zone_map(8, 16);
    let store = build_sharded(&corpus, config, &root, 3, &ShardedBuildOptions::default()).unwrap();
    let queries: Vec<Vec<TokenId>> = planted
        .iter()
        .take(4)
        .map(|p| corpus.sequence_to_vec(p.dst).unwrap())
        .collect();
    let baseline =
        run_sharded_queries(&root, &queries).expect("pristine store must verify and search");
    assert!(!baseline.is_empty(), "queries must hit planted duplicates");

    let target = store.serving_dir(1).unwrap().join("inv_0.ndsi");
    let pristine = std::fs::read(&target).unwrap();
    let (mut applied, mut rejected) = (0u64, 0u64);
    for seed in 0..160 {
        let (mutated, mutation) = mutate(&pristine, seed);
        if mutated == pristine {
            continue;
        }
        applied += 1;
        std::fs::write(&target, &mutated).unwrap();
        match catch_unwind(AssertUnwindSafe(|| run_sharded_queries(&root, &queries))) {
            Err(_) => panic!("sharded seed {seed}: {mutation:?} caused a panic"),
            Ok(Err(_)) => rejected += 1,
            Ok(Ok(results)) => assert_eq!(
                results, baseline,
                "sharded seed {seed}: {mutation:?} gave silently wrong results"
            ),
        }
        // The fault stays confined: per-shard verification blames exactly
        // the mutated shard, and the siblings keep verifying clean.
        if seed % 20 == 0 {
            let verdicts: Vec<bool> = (0..3).map(|i| store.verify_shard(i).is_ok()).collect();
            assert!(
                verdicts[0],
                "sharded seed {seed}: corruption leaked into shard 0"
            );
            assert!(
                verdicts[2],
                "sharded seed {seed}: corruption leaked into shard 2"
            );
            assert!(
                !verdicts[1],
                "sharded seed {seed}: mutated shard verified clean"
            );
        }
    }
    assert_eq!(
        rejected, applied,
        "sharded: all {applied} effective mutations must be rejected"
    );
    std::fs::write(&target, &pristine).unwrap();
    let restored =
        run_sharded_queries(&root, &queries).expect("restoring pristine bytes must heal");
    assert_eq!(restored, baseline);
    assert_alloc_cap("sharded shard file");
    std::fs::remove_dir_all(&root).ok();
}

/// Seeded mutations of the store manifest itself: the manifest is
/// CRC-checksummed and structurally validated, so an effective mutation can
/// only survive the open when it is *formatting-only* — the JSON parses to
/// the exact pristine content (the CRC covers the canonical
/// re-serialization, e.g. a bit flip turning `: 16` into `:016`). Every
/// content-changing mutation must fail the open: the store can never come
/// up on a torn or tampered shard map.
#[test]
fn sharded_store_rejects_manifest_corruption() {
    let root = temp_dir("sharded_manifest");
    let (corpus, planted) = SyntheticCorpusBuilder::new(44).num_texts(24).build();
    let config = IndexConfig::new(2, 25, 5);
    build_sharded(&corpus, config, &root, 3, &ShardedBuildOptions::default()).unwrap();
    let queries: Vec<Vec<TokenId>> = planted
        .iter()
        .take(3)
        .map(|p| corpus.sequence_to_vec(p.dst).unwrap())
        .collect();
    let baseline =
        run_sharded_queries(&root, &queries).expect("pristine store must verify and search");

    let target = root.join("MANIFEST");
    let pristine = std::fs::read(&target).unwrap();
    let reference = ShardedStore::open(&root).unwrap().manifest().clone();
    let (mut applied, mut rejected) = (0u64, 0u64);
    for seed in 0..160 {
        let (mutated, mutation) = mutate(&pristine, seed);
        if mutated == pristine {
            continue;
        }
        applied += 1;
        std::fs::write(&target, &mutated).unwrap();
        match catch_unwind(AssertUnwindSafe(|| run_sharded_queries(&root, &queries))) {
            Err(_) => panic!("manifest seed {seed}: {mutation:?} caused a panic"),
            Ok(Err(_)) => rejected += 1,
            Ok(Ok(results)) => {
                assert_eq!(
                    results, baseline,
                    "manifest seed {seed}: {mutation:?} gave silently wrong results"
                );
                // A survivor must be formatting-only: the parsed manifest
                // is the pristine one, field for field.
                let reloaded = ShardedStore::open(&root).unwrap();
                assert_eq!(
                    *reloaded.manifest(),
                    reference,
                    "manifest seed {seed}: {mutation:?} survived with different content"
                );
            }
        }
    }
    assert!(
        rejected >= applied.saturating_sub(applied / 20),
        "manifest: only {rejected} of {applied} effective mutations rejected —          more than formatting-only survivors"
    );
    std::fs::write(&target, &pristine).unwrap();
    assert_eq!(run_sharded_queries(&root, &queries).unwrap(), baseline);
    assert_alloc_cap("sharded manifest");
    std::fs::remove_dir_all(&root).ok();
}

// ---------------------------------------------------------------------------
// Ingest WAL: prefix-or-reject under mutation.
// ---------------------------------------------------------------------------

use ndss::index::{IngestIndex, IngestOptions};

/// Opens (recovering) the memtable and returns every in-memory text, in
/// global id order. Recovery truncates torn tails, so this both parses and
/// *repairs* — each seed rewrites the file first.
fn wal_recovered_texts(root: &Path) -> Result<Vec<Vec<TokenId>>, String> {
    let opts = IngestOptions {
        fsync_every: 1,
        ..IngestOptions::default()
    };
    let ingest = IngestIndex::open(root, None, opts).map_err(|e| e.to_string())?;
    Ok(ingest
        .segments()
        .flat_map(|s| s.texts().iter().cloned())
        .collect())
}

/// The WAL's contract under arbitrary corruption differs from the sealed
/// formats: a damaged *tail* is expected (that is what a torn write looks
/// like) and recovery must truncate to the longest valid prefix — but it
/// must never invent, reorder, or resurrect records, and never accept a
/// record after a bad frame. So every mutation seed must yield either a
/// clean typed error or a strict *prefix* of the pristine text sequence;
/// wrong content anywhere is a sweep failure, as is a panic or an
/// OOM-sized allocation from an adversarial length field.
#[test]
fn ingest_wal_survives_mutation_sweep() {
    let root = temp_dir("ingest_wal");
    let (corpus, _) = SyntheticCorpusBuilder::new(45)
        .num_texts(10)
        .text_len(40, 80)
        .vocab_size(300)
        .build();
    let texts: Vec<Vec<TokenId>> = (0..corpus.num_texts() as TextId)
        .map(|i| corpus.text_to_vec(i).unwrap())
        .collect();
    {
        let opts = IngestOptions {
            fsync_every: 1,
            ..IngestOptions::default()
        };
        let mut ingest = IngestIndex::open(&root, Some(IndexConfig::new(2, 10, 3)), opts).unwrap();
        for t in &texts {
            ingest.append(t).unwrap();
        }
    }
    let baseline = wal_recovered_texts(&root).expect("pristine WAL must replay");
    assert_eq!(baseline, texts);

    let target = root.join("memtable").join("wal").join("wal-000001.log");
    let pristine = std::fs::read(&target).unwrap();
    let (mut applied, mut rejected, mut truncated, mut intact) = (0u64, 0u64, 0u64, 0u64);
    for seed in 0..260 {
        let (mutated, mutation) = mutate(&pristine, seed);
        if mutated == pristine {
            continue;
        }
        applied += 1;
        std::fs::write(&target, &mutated).unwrap();
        match catch_unwind(AssertUnwindSafe(|| wal_recovered_texts(&root))) {
            Err(_) => panic!("wal seed {seed}: {mutation:?} caused a panic"),
            Ok(Err(_)) => rejected += 1,
            Ok(Ok(recovered)) => {
                assert!(
                    recovered.len() <= baseline.len()
                        && recovered.as_slice() == &baseline[..recovered.len()],
                    "wal seed {seed}: {mutation:?} recovered non-prefix content"
                );
                if recovered.len() < baseline.len() {
                    truncated += 1;
                } else {
                    intact += 1; // e.g. trailing garbage beyond the valid frames
                }
            }
        }
    }
    assert_eq!(rejected + truncated + intact, applied);
    assert!(
        truncated > 0,
        "sweep never exercised torn-tail truncation ({applied} applied)"
    );
    assert!(applied > 130, "wal mutation sweep mostly no-ops");

    std::fs::write(&target, &pristine).unwrap();
    assert_eq!(
        wal_recovered_texts(&root).unwrap(),
        baseline,
        "restoring pristine bytes must heal"
    );
    assert_alloc_cap("ingest wal");
    std::fs::remove_dir_all(&root).ok();
}

/// The memtable manifest is CRC-checksummed with the same idiom as the
/// store manifests: corruption must never bring up a memtable with
/// different settings — every content-changing mutation fails the open,
/// and (per the GC contract) even a corrupt manifest keeps protecting its
/// WAL files from collection.
#[test]
fn memtable_manifest_rejects_corruption() {
    let root = temp_dir("ingest_manifest");
    let opts = IngestOptions {
        fsync_every: 1,
        ..IngestOptions::default()
    };
    {
        let mut ingest =
            IngestIndex::open(&root, Some(IndexConfig::new(2, 10, 3)), opts.clone()).unwrap();
        for t in [vec![1u32; 30], vec![2u32; 30]] {
            ingest.append(&t).unwrap();
        }
    }
    let target = root.join("memtable").join("MEMTABLE");
    let pristine = std::fs::read(&target).unwrap();
    let (mut applied, mut rejected) = (0u64, 0u64);
    for seed in 0..160 {
        let (mutated, mutation) = mutate(&pristine, seed);
        if mutated == pristine {
            continue;
        }
        applied += 1;
        std::fs::write(&target, &mutated).unwrap();
        match catch_unwind(AssertUnwindSafe(|| wal_recovered_texts(&root))) {
            Err(_) => panic!("memtable manifest seed {seed}: {mutation:?} caused a panic"),
            Ok(Err(_)) => rejected += 1,
            Ok(Ok(recovered)) => assert_eq!(
                recovered.len(),
                2,
                "memtable manifest seed {seed}: {mutation:?} changed the recovered set"
            ),
        }
        // Whatever the mutation did, the WAL file itself must survive a GC
        // pass — a corrupt manifest *protects* its WAL (satellite rule).
        GenerationStore::open(&root).unwrap();
        assert!(
            root.join("memtable")
                .join("wal")
                .join("wal-000001.log")
                .is_file(),
            "memtable manifest seed {seed}: {mutation:?} let GC collect a live WAL"
        );
    }
    assert!(
        rejected >= applied.saturating_sub(applied / 20),
        "memtable manifest: only {rejected} of {applied} effective mutations rejected"
    );
    std::fs::write(&target, &pristine).unwrap();
    assert_eq!(wal_recovered_texts(&root).unwrap().len(), 2);
    assert_alloc_cap("memtable manifest");
    std::fs::remove_dir_all(&root).ok();
}
