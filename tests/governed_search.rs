//! Resource-governed query execution, end to end against disk indexes:
//! deterministic fault injection absorbed by the retrying IO layer with
//! bit-identical results, sound partial outcomes under budgets, batch
//! failure isolation, and load shedding with counter accounting.

use ndss::index::CacheConfig;
use ndss::prelude::*;

fn temp_dir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("ndss_it_governed").join(name);
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn workload(seed: u64) -> (InMemoryCorpus, Vec<Vec<TokenId>>) {
    let (corpus, planted) = SyntheticCorpusBuilder::new(seed)
        .num_texts(120)
        .text_len(150, 300)
        .duplicates_per_text(1.0)
        .dup_len(50, 90)
        .mutation_rate(0.03)
        .build();
    let queries: Vec<Vec<TokenId>> = planted
        .iter()
        .take(16)
        .map(|p| corpus.sequence_to_vec(p.dst).unwrap())
        .collect();
    assert!(queries.len() >= 12, "expected a non-trivial query set");
    (corpus, queries)
}

fn build(corpus: &InMemoryCorpus, dir: &std::path::Path, compress: bool) {
    // Tiny zone thresholds so long-list probes (and their reads) engage.
    let config = IndexConfig::new(16, 25, 5)
        .zone_map(16, 64)
        .compressed(compress);
    ndss::index::build_and_write(corpus, config, dir, true).unwrap();
}

/// Under a seeded fault injector the retry layer absorbs every transient
/// error and queries return results bit-identical to a fault-free run —
/// for both the fixed-width (v3) and compressed (v4) formats — while the
/// `io.retries` counter proves retries really happened.
#[test]
fn faulty_reads_yield_bit_identical_results() {
    let (corpus, queries) = workload(9001);
    for (compress, sub) in [(false, "v3"), (true, "v4")] {
        let dir = temp_dir(&format!("flaky_{sub}"));
        build(&corpus, &dir, compress);

        let clean = DiskIndex::open_with_cache(&dir, CacheConfig::disabled()).unwrap();
        let baseline = BatchSearcher::new(&clean)
            .unwrap()
            .threads(4)
            .search_all(&queries, 0.8)
            .unwrap();

        let retries = Registry::global().counter("io.retries", "");
        for seed in [1u64, 7, 0xDEAD_BEEF] {
            let faults = FaultConfig::new(seed).fault_every(3);
            let stats = faults.stats();
            let flaky = DiskIndex::open_with_io(
                &dir,
                CacheConfig::disabled(),
                ReadOptions::with_faults(faults),
            )
            .unwrap();
            let retries_before = retries.get();
            let outcomes = BatchSearcher::new(&flaky)
                .unwrap()
                .threads(4)
                .search_all(&queries, 0.8)
                .unwrap();
            assert!(
                stats.injected() > 0,
                "seed {seed}: injector never fired ({sub})"
            );
            assert!(
                retries.get() > retries_before,
                "seed {seed}: io.retries did not rise ({sub})"
            );
            for (i, (got, want)) in outcomes.iter().zip(baseline.iter()).enumerate() {
                assert_eq!(
                    got.enumerate_all(),
                    want.enumerate_all(),
                    "seed {seed}: query {i} diverged under faults ({sub})"
                );
                assert_eq!(got.stats.io_bytes, want.stats.io_bytes);
            }
        }
    }
}

/// The same seed injects the same fault sequence: two serial passes over
/// the same query stream tally identical injected-fault counts.
#[test]
fn fault_injection_is_deterministic_across_runs() {
    let (corpus, queries) = workload(9002);
    let dir = temp_dir("deterministic");
    build(&corpus, &dir, false);

    let run = |seed: u64| {
        let faults = FaultConfig::new(seed).fault_every(4);
        let stats = faults.stats();
        let index = DiskIndex::open_with_io(
            &dir,
            CacheConfig::disabled(),
            ReadOptions::with_faults(faults),
        )
        .unwrap();
        let searcher = NearDupSearcher::new(&index).unwrap();
        let keys: Vec<_> = queries
            .iter()
            .map(|q| searcher.search(q, 0.8).unwrap().enumerate_all())
            .collect();
        (keys, stats.injected())
    };
    let (results_a, faults_a) = run(42);
    let (results_b, faults_b) = run(42);
    assert_eq!(results_a, results_b);
    assert_eq!(faults_a, faults_b, "same seed must inject the same faults");
    assert!(faults_a > 0);
}

/// A byte range that never stops failing exhausts the retry budget: the
/// error surfaces (here at open, which reads the directory) instead of
/// retrying forever, and `io.retry_exhausted` records it.
#[test]
fn permanently_failing_range_exhausts_retries() {
    let (corpus, _) = workload(9003);
    let dir = temp_dir("exhaust");
    build(&corpus, &dir, false);

    let exhausted = Registry::global().counter("io.retry_exhausted", "");
    let before = exhausted.get();
    let faults = FaultConfig::new(3).fault_every(0).hard_range(0, u64::MAX);
    let result = DiskIndex::open_with_io(
        &dir,
        CacheConfig::disabled(),
        ReadOptions::with_faults(faults),
    );
    assert!(result.is_err(), "an always-failing file must not open");
    assert!(
        exhausted.get() > before,
        "io.retry_exhausted did not record the failure"
    );
}

/// Isolate mode confines a poisoned query to its own slot: exactly one
/// `Err`, every other query's results bit-identical to an all-good batch.
/// FailFast on the same input aborts the whole batch.
#[test]
fn isolate_confines_poison_fail_fast_aborts() {
    let (corpus, queries) = workload(9004);
    let dir = temp_dir("isolate");
    build(&corpus, &dir, false);
    let index = DiskIndex::open(&dir).unwrap();

    let baseline = BatchSearcher::new(&index)
        .unwrap()
        .threads(4)
        .search_all(&queries, 0.8)
        .unwrap();

    let mut poisoned = queries.clone();
    poisoned[5] = Vec::new(); // empty query: always an error

    let results = BatchSearcher::new(&index)
        .unwrap()
        .threads(4)
        .failure_policy(FailurePolicy::Isolate)
        .search_all_governed(&poisoned, 0.8);
    assert_eq!(results.len(), poisoned.len());
    let errors: Vec<usize> = results
        .iter()
        .enumerate()
        .filter(|(_, r)| r.is_err())
        .map(|(i, _)| i)
        .collect();
    assert_eq!(errors, vec![5], "exactly the poisoned slot must fail");
    for (i, result) in results.iter().enumerate() {
        if i == 5 {
            continue;
        }
        assert_eq!(
            result.as_ref().unwrap().enumerate_all(),
            baseline[i].enumerate_all(),
            "query {i} perturbed by the poisoned neighbor"
        );
    }

    let fail_fast = BatchSearcher::new(&index)
        .unwrap()
        .threads(4)
        .search_all(&poisoned, 0.8);
    assert!(fail_fast.is_err(), "fail-fast must surface the poison");
}

/// Tiny candidate budgets stop queries early with a sound partial outcome:
/// a prefix of the full result set, flagged incomplete. Sweeping the cap
/// upward reaches the complete result.
#[test]
fn partial_outcomes_are_sound_prefixes() {
    let (corpus, queries) = workload(9005);
    let dir = temp_dir("partial");
    build(&corpus, &dir, false);
    let index = DiskIndex::open(&dir).unwrap();
    let searcher = NearDupSearcher::new(&index).unwrap();

    let mut partials = 0usize;
    for query in &queries {
        let full = searcher.search(query, 0.8).unwrap();
        assert!(full.complete);
        for cap in 0..=3u64 {
            let budget = QueryBudget::unlimited().max_candidates(cap);
            match searcher.search_governed(query, 0.8, &budget) {
                Ok(outcome) => {
                    assert!(outcome.complete);
                    assert_eq!(outcome.enumerate_all(), full.enumerate_all());
                }
                Err(QueryError::BudgetExceeded { resource, partial }) => {
                    partials += 1;
                    assert_eq!(resource, Resource::Candidates);
                    assert!(!partial.complete, "partial outcomes must say so");
                    // Texts are processed in ascending id order and a match
                    // is appended only once fully verified, so the partial
                    // set is a prefix of the full one.
                    assert!(partial.matches.len() <= full.matches.len());
                    assert_eq!(
                        full.matches[..partial.matches.len()],
                        partial.matches[..],
                        "partial result is not a sound prefix"
                    );
                }
                Err(e) => panic!("unexpected error under candidate cap: {e}"),
            }
        }
    }
    assert!(partials > 0, "candidate caps this tiny must trip sometimes");
}

/// A zero deadline trips before any index IO; the partial outcome is empty
/// but well-formed.
#[test]
fn zero_deadline_returns_empty_partial() {
    let (corpus, queries) = workload(9006);
    let dir = temp_dir("deadline");
    build(&corpus, &dir, false);
    let index = DiskIndex::open(&dir).unwrap();
    let searcher = NearDupSearcher::new(&index).unwrap();

    let budget = QueryBudget::unlimited().time_limit(std::time::Duration::ZERO);
    match searcher.search_governed(&queries[0], 0.8, &budget) {
        Err(QueryError::BudgetExceeded { resource, partial }) => {
            assert_eq!(resource, Resource::Deadline);
            assert!(!partial.complete);
            assert!(partial.matches.is_empty());
        }
        other => panic!("expected a deadline trip, got {other:?}"),
    }
}

/// Admission control sheds the tail beyond the cap and an expired batch
/// deadline sheds everything, both tallied in the `query.shed` counter;
/// admitted queries stay exact.
#[test]
fn load_shedding_is_counted_and_admitted_queries_stay_exact() {
    let (corpus, queries) = workload(9007);
    let dir = temp_dir("shed");
    build(&corpus, &dir, false);
    let index = DiskIndex::open(&dir).unwrap();

    let baseline = BatchSearcher::new(&index)
        .unwrap()
        .threads(4)
        .search_all(&queries, 0.8)
        .unwrap();

    let shed_counter = Registry::global().counter("query.shed", "");
    let before = shed_counter.get();
    let cap = 5usize;
    let results = BatchSearcher::new(&index)
        .unwrap()
        .threads(4)
        .failure_policy(FailurePolicy::Isolate)
        .admission_cap(cap)
        .search_all_governed(&queries, 0.8);
    for (i, result) in results.iter().enumerate() {
        if i < cap {
            assert_eq!(
                result.as_ref().unwrap().enumerate_all(),
                baseline[i].enumerate_all(),
                "admitted query {i} must stay exact"
            );
        } else {
            // Pinned shape: an admission shed carries the real cap, never a
            // fabricated one, and is attributed to the cap — not a deadline.
            assert!(
                matches!(result, Err(QueryError::Overloaded { position, reason })
                    if *position == i && *reason == (ShedReason::AdmissionCap { cap })),
                "query {i} past the cap must be shed with the admission-cap reason"
            );
        }
    }
    assert!(
        shed_counter.get() >= before + (queries.len() - cap) as u64,
        "query.shed must count every shed query"
    );

    // An already-expired batch deadline sheds the entire batch.
    let results = BatchSearcher::new(&index)
        .unwrap()
        .threads(4)
        .failure_policy(FailurePolicy::Isolate)
        .batch_deadline(std::time::Duration::ZERO)
        .search_all_governed(&queries, 0.8);
    // Pinned shape: a deadline shed is attributed to the batch deadline —
    // it must NOT masquerade as an admission-cap shed (the old behavior
    // fabricated `cap = queries.len()`).
    assert!(
        results.iter().all(|r| matches!(
            r,
            Err(QueryError::Overloaded {
                reason: ShedReason::BatchDeadline,
                ..
            })
        )),
        "an expired batch deadline must shed everything with the deadline reason"
    );
}

/// Budgets compose with fault injection: a governed batch over a flaky
/// index still produces sound outcomes — completed queries exact, partial
/// ones prefixes — because retries happen below the budget checkpoints.
#[test]
fn budgets_and_faults_compose() {
    let (corpus, queries) = workload(9008);
    let dir = temp_dir("compose");
    build(&corpus, &dir, true);

    let clean = DiskIndex::open_with_cache(&dir, CacheConfig::disabled()).unwrap();
    let serial = NearDupSearcher::new(&clean).unwrap();
    let full: Vec<_> = queries
        .iter()
        .map(|q| serial.search(q, 0.8).unwrap())
        .collect();

    let faults = FaultConfig::new(77).fault_every(3);
    let flaky = DiskIndex::open_with_io(
        &dir,
        CacheConfig::disabled(),
        ReadOptions::with_faults(faults),
    )
    .unwrap();
    let results = BatchSearcher::new(&flaky)
        .unwrap()
        .threads(4)
        .failure_policy(FailurePolicy::Isolate)
        .budget(QueryBudget::unlimited().max_candidates(2))
        .search_all_governed(&queries, 0.8);
    for (i, result) in results.iter().enumerate() {
        match result {
            Ok(outcome) => {
                assert_eq!(outcome.enumerate_all(), full[i].enumerate_all());
            }
            Err(QueryError::BudgetExceeded { partial, .. }) => {
                assert!(!partial.complete);
                assert_eq!(
                    full[i].matches[..partial.matches.len()],
                    partial.matches[..]
                );
            }
            Err(e) => panic!("query {i}: unexpected error {e}"),
        }
    }
}
