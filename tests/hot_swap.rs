//! Generational index lifecycle: publish / rollback semantics, `CURRENT`
//! pointer atomicity under a concurrent reader, and hot swap under live
//! batch queries.
//!
//! The load-bearing invariants:
//!
//! * `CURRENT` is only ever observed naming a complete, verified
//!   generation — never torn, never an unverified build — because the
//!   pointer is re-pointed with an atomic rename after `verify_integrity`.
//! * A `ServingIndex::reload` concurrent with batch queries is invisible
//!   to each batch: every batch's results are bit-identical to a cold open
//!   of *one* generation (the one current when the batch started), never a
//!   mix of two.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use ndss::index::build_and_write;
use ndss::prelude::*;

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("ndss_it_hotswap").join(name);
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn config() -> IndexConfig {
    IndexConfig::new(8, 20, 13)
}

/// Builds a generation from `corpus` in a fresh `gen-NNNN/` and returns its
/// name (unpublished).
fn build_generation(store: &GenerationStore, corpus: &InMemoryCorpus) -> String {
    let dir = store.allocate().unwrap();
    build_and_write(corpus, config(), &dir, true).unwrap();
    dir.file_name().unwrap().to_string_lossy().into_owned()
}

fn corpus_a() -> (InMemoryCorpus, Vec<Vec<u32>>) {
    let (corpus, planted) = SyntheticCorpusBuilder::new(31)
        .num_texts(20)
        .duplicates_per_text(1.0)
        .mutation_rate(0.0)
        .build();
    let queries: Vec<Vec<u32>> = planted
        .iter()
        .take(5)
        .map(|p| corpus.sequence_to_vec(p.dst).unwrap())
        .collect();
    assert!(!queries.is_empty());
    (corpus, queries)
}

/// Corpus A plus one extra text repeating query 0 — so at least one query
/// has strictly more matches under generation B than under A.
fn corpus_b(a: &InMemoryCorpus, queries: &[Vec<u32>]) -> InMemoryCorpus {
    let mut texts: Vec<Vec<u32>> = (0..a.num_texts() as u32)
        .map(|i| a.text(i).to_vec())
        .collect();
    texts.push(queries[0].clone());
    InMemoryCorpus::from_texts(texts)
}

/// Cold-open reference: batch results against one index directory.
fn cold_results(dir: &Path, queries: &[Vec<u32>]) -> Vec<Vec<SeqRef>> {
    let index = DiskIndex::open(dir).unwrap();
    let batch = BatchSearcher::new(&index).unwrap().threads(2);
    batch
        .search_all(queries, 0.8)
        .unwrap()
        .into_iter()
        .map(|o| o.enumerate_all())
        .collect()
}

#[test]
fn publish_rollback_lifecycle() {
    let root = temp_dir("lifecycle");
    let store = GenerationStore::open(&root).unwrap();
    let (a, _) = corpus_a();

    let g0 = build_generation(&store, &a);
    assert!(store.current().unwrap().is_none(), "nothing published yet");
    store.publish(&g0, 1).unwrap();
    assert_eq!(store.current().unwrap().as_deref(), Some(g0.as_str()));
    assert_eq!(resolve_index_dir(&root), root.join(&g0));

    let g1 = build_generation(&store, &a);
    store.publish(&g1, 1).unwrap();
    assert_eq!(store.current().unwrap().as_deref(), Some(g1.as_str()));
    assert!(
        root.join(&g0).is_dir(),
        "previous generation kept for rollback"
    );

    // A third publish with keep = 1 prunes the oldest retired generation.
    let g2 = build_generation(&store, &a);
    store.publish(&g2, 1).unwrap();
    assert!(!root.join(&g0).exists(), "beyond-keep generation pruned");
    assert!(root.join(&g1).is_dir());

    // Rollback with no target: newest complete generation below current.
    assert_eq!(store.rollback(None).unwrap(), g1);
    assert_eq!(store.current().unwrap().as_deref(), Some(g1.as_str()));
    // Explicit rollback (forward here) re-verifies and re-points.
    assert_eq!(store.rollback(Some(&g2)).unwrap(), g2);
    assert_eq!(store.current().unwrap().as_deref(), Some(g2.as_str()));

    // A corrupt generation can be neither published nor rolled back to.
    let victim = std::fs::read_dir(root.join(&g1))
        .unwrap()
        .flatten()
        .map(|e| e.path())
        .find(|p| p.extension().is_some_and(|e| e == "ndsi"))
        .unwrap();
    let mut bytes = std::fs::read(&victim).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x40;
    std::fs::write(&victim, &bytes).unwrap();
    assert!(store.publish(&g1, 1).is_err());
    assert!(store.rollback(Some(&g1)).is_err());
    assert_eq!(
        store.current().unwrap().as_deref(),
        Some(g2.as_str()),
        "failed publish/rollback must leave CURRENT untouched"
    );
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn current_pointer_is_never_torn_under_concurrent_reads() {
    let root = temp_dir("torn");
    let store = GenerationStore::open(&root).unwrap();
    let (a, _) = corpus_a();
    let g0 = build_generation(&store, &a);
    let g1 = build_generation(&store, &a);
    store.publish(&g0, 2).unwrap();

    let done = Arc::new(AtomicBool::new(false));
    let reader = {
        let done = done.clone();
        let current = root.join("CURRENT");
        let valid = [g0.clone(), g1.clone()];
        std::thread::spawn(move || {
            let mut reads = 0u64;
            while !done.load(Ordering::Relaxed) {
                let text = std::fs::read_to_string(&current)
                    .expect("CURRENT must exist once first published");
                let name = text.trim();
                assert!(
                    valid.iter().any(|v| v == name),
                    "torn or invalid CURRENT contents: {text:?}"
                );
                reads += 1;
            }
            reads
        })
    };

    // Flip the pointer repeatedly; every flip re-verifies the target, so
    // the reader is racing genuine publishes, not bare renames.
    for i in 0..20 {
        let target = if i % 2 == 0 { &g1 } else { &g0 };
        store.publish(target, 2).unwrap();
    }
    done.store(true, Ordering::Relaxed);
    let reads = reader.join().unwrap();
    assert!(reads > 0, "reader never observed the pointer");
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn reload_under_live_batch_queries_is_bit_identical_to_cold_open() {
    let root = temp_dir("reload");
    let store = GenerationStore::open(&root).unwrap();
    let (a, queries) = corpus_a();
    let b = corpus_b(&a, &queries);

    let g0 = build_generation(&store, &a);
    store.publish(&g0, 1).unwrap();
    let ref_a = cold_results(&root.join(&g0), &queries);

    let serving = Arc::new(ServingIndex::open(&root).unwrap());
    assert_eq!(serving.generation(), Some(0));

    // Workers hammer the serving index across the swap; every batch result
    // must equal a cold open of exactly one generation.
    let done = Arc::new(AtomicBool::new(false));
    let workers: Vec<_> = (0..2)
        .map(|_| {
            let serving = serving.clone();
            let queries = queries.clone();
            let done = done.clone();
            std::thread::spawn(move || {
                let searcher = ServingSearcher::new(serving).threads(2);
                let mut batches = Vec::new();
                while !done.load(Ordering::Relaxed) {
                    let outcome: Vec<Vec<SeqRef>> = searcher
                        .search_all(&queries, 0.8)
                        .unwrap()
                        .into_iter()
                        .map(|o| o.enumerate_all())
                        .collect();
                    batches.push(outcome);
                }
                batches
            })
        })
        .collect();

    // Build, publish, and hot-swap to generation 1 while queries fly.
    let g1 = build_generation(&store, &b);
    store.publish(&g1, 1).unwrap();
    let ref_b = cold_results(&resolve_index_dir(&root), &queries);
    assert_ne!(
        ref_a, ref_b,
        "generations must be distinguishable by results"
    );
    assert!(serving.reload().unwrap(), "pointer moved, reload must swap");
    assert_eq!(serving.generation(), Some(1));
    assert!(!serving.reload().unwrap(), "no-op reload must not swap");

    // Let the workers observe the new generation, then stop them.
    let searcher = ServingSearcher::new(serving.clone());
    let after: Vec<Vec<SeqRef>> = searcher
        .search_all(&queries, 0.8)
        .unwrap()
        .into_iter()
        .map(|o| o.enumerate_all())
        .collect();
    assert_eq!(
        after, ref_b,
        "post-swap queries must serve the new generation"
    );
    done.store(true, Ordering::Relaxed);

    let mut total = 0usize;
    for worker in workers {
        for batch in worker.join().unwrap() {
            assert!(
                batch == ref_a || batch == ref_b,
                "a batch mixed results from two generations"
            );
            total += 1;
        }
    }
    assert!(total > 0, "workers never completed a batch");
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn serving_index_on_plain_directory() {
    let dir = temp_dir("plain");
    let (a, queries) = corpus_a();
    build_and_write(&a, config(), &dir, true).unwrap();
    let serving = Arc::new(ServingIndex::open(&dir).unwrap());
    assert_eq!(serving.generation(), None);
    assert!(!serving.reload().unwrap(), "plain directory never swaps");
    let searcher = ServingSearcher::new(serving);
    let outcome = searcher.search(&queries[0], 0.8).unwrap();
    assert!(!outcome.matches.is_empty());
    std::fs::remove_dir_all(&dir).ok();
}

/// Regression for the reload race: reload A resolves `CURRENT` (gen 1),
/// then — before A takes the write lock — reload B publishes *and* swaps in
/// a newer gen 2. A's open is now stale; completing its swap would regress
/// serving from gen 2 back to gen 1. The fixed `reload()` re-resolves
/// `CURRENT` under the write lock and abandons the stale open. (On the old
/// code this test fails: A overwrites gen 2 with gen 1.)
#[test]
fn racing_reload_never_swaps_in_a_stale_older_generation() {
    let root = temp_dir("race");
    let store = GenerationStore::open(&root).unwrap();
    let (a, queries) = corpus_a();
    let b = corpus_b(&a, &queries);

    let g0 = build_generation(&store, &a);
    store.publish(&g0, 3).unwrap();
    let serving = Arc::new(ServingIndex::open(&root).unwrap());
    assert_eq!(serving.generation(), Some(0));

    // Stage the next pointer move: CURRENT → gen 1 (same corpus as gen 0).
    let g1 = build_generation(&store, &a);
    store.publish(&g1, 3).unwrap();

    // Reload A resolves and opens gen 1; inside its race window, reload B
    // publishes gen 2 (corpus B, distinguishable by results) and swaps it in.
    let serving_b = serving.clone();
    let store_b = GenerationStore::open(&root).unwrap();
    let swapped_a = serving
        .reload_with_race_window(move || {
            let g2 = {
                let dir = store_b.allocate().unwrap();
                build_and_write(&b, config(), &dir, true).unwrap();
                dir.file_name().unwrap().to_string_lossy().into_owned()
            };
            store_b.publish(&g2, 3).unwrap();
            assert!(serving_b.reload().unwrap(), "reload B must swap to gen 2");
            assert_eq!(serving_b.generation(), Some(2));
        })
        .unwrap();

    // Whatever A reports, serving must still be on gen 2 afterwards — the
    // stale gen-1 open must never overwrite the newer generation.
    assert_eq!(
        serving.generation(),
        Some(2),
        "stale reload regressed serving to an older generation"
    );
    let ref_g2 = cold_results(&resolve_index_dir(&root), &queries);
    let searcher = ServingSearcher::new(serving.clone());
    let live: Vec<Vec<SeqRef>> = searcher
        .search_all(&queries, 0.8)
        .unwrap()
        .into_iter()
        .map(|o| o.enumerate_all())
        .collect();
    assert_eq!(live, ref_g2, "post-race queries must serve gen 2");
    // A must not claim a swap it did not perform.
    assert!(!swapped_a, "stale reload must not report a swap");
    std::fs::remove_dir_all(&root).ok();
}

/// A deliberate rollback is not a race: after `CURRENT` is re-pointed at an
/// older generation, `reload()` must follow it backwards.
#[test]
fn reload_follows_a_deliberate_rollback_to_an_older_generation() {
    let root = temp_dir("rollback_reload");
    let store = GenerationStore::open(&root).unwrap();
    let (a, queries) = corpus_a();
    let b = corpus_b(&a, &queries);

    let g0 = build_generation(&store, &a);
    store.publish(&g0, 3).unwrap();
    let ref_g0 = cold_results(&resolve_index_dir(&root), &queries);
    let g1 = build_generation(&store, &b);
    store.publish(&g1, 3).unwrap();

    let serving = Arc::new(ServingIndex::open(&root).unwrap());
    assert_eq!(serving.generation(), Some(1));

    assert_eq!(store.rollback(Some(&g0)).unwrap(), g0);
    assert!(serving.reload().unwrap(), "rollback must reload");
    assert_eq!(serving.generation(), Some(0));
    let searcher = ServingSearcher::new(serving);
    let live: Vec<Vec<SeqRef>> = searcher
        .search_all(&queries, 0.8)
        .unwrap()
        .into_iter()
        .map(|o| o.enumerate_all())
        .collect();
    assert_eq!(live, ref_g0, "rolled-back serving must answer from gen 0");
    std::fs::remove_dir_all(&root).ok();
}

// ---------------------------------------------------------------------------
// Sharded store: per-shard publish under live readers.
// ---------------------------------------------------------------------------

/// Corpus A with text 15 (second shard of two) replaced by query 0's
/// tokens: shard 0's slice is untouched, shard 1's answers change.
fn corpus_b_shard1(a: &InMemoryCorpus, queries: &[Vec<u32>]) -> InMemoryCorpus {
    let mut texts: Vec<Vec<u32>> = (0..a.num_texts() as u32)
        .map(|i| a.text(i).to_vec())
        .collect();
    texts[15] = queries[0].clone();
    InMemoryCorpus::from_texts(texts)
}

/// Cold-open reference over a sharded store's *current* manifest view.
fn sharded_cold_results(root: &Path, queries: &[Vec<u32>]) -> Vec<Vec<SeqRef>> {
    let view = ShardedIndex::open(root).unwrap();
    let searcher = view.searcher().unwrap().threads(2);
    searcher
        .search_all(queries, 0.8)
        .unwrap()
        .into_iter()
        .map(|o| o.enumerate_all())
        .collect()
}

/// Republishing one shard under live readers never yields a torn
/// cross-shard view: every pinned (snapshot, generation) pair answers
/// bit-identically to a cold open of exactly that manifest generation —
/// old shard-1 results never mix with new ones, and the generation a
/// reader reports always matches the results it got.
#[test]
fn per_shard_publish_is_atomic_under_concurrent_readers() {
    let root = temp_dir("sharded_swap");
    let (a, queries) = corpus_a();
    let b = corpus_b_shard1(&a, &queries);

    build_sharded(&a, config(), &root, 2, &ShardedBuildOptions::default()).unwrap();
    let ref_v1 = sharded_cold_results(&root, &queries);

    let serving = Arc::new(ServingIndex::open(&root).unwrap());
    assert_eq!(serving.generation(), Some(1), "publish_all bumps once");

    // Readers pin a (snapshot, generation) pair per batch and record both;
    // the pair is taken under one lock, so it can never be torn.
    let done = Arc::new(AtomicBool::new(false));
    let readers: Vec<_> = (0..2)
        .map(|_| {
            let serving = serving.clone();
            let queries = queries.clone();
            let done = done.clone();
            std::thread::spawn(move || {
                let mut observed: Vec<(u64, Vec<Vec<SeqRef>>)> = Vec::new();
                while !done.load(Ordering::Relaxed) {
                    let (snapshot, generation) = serving.pinned();
                    let searcher = snapshot.searcher().unwrap().threads(2);
                    let results: Vec<Vec<SeqRef>> = searcher
                        .search_all(&queries, 0.8)
                        .unwrap()
                        .into_iter()
                        .map(|o| o.enumerate_all())
                        .collect();
                    observed.push((generation.expect("sharded stores always have one"), results));
                }
                observed
            })
        })
        .collect();

    // Rebuild shard 1 only (from corpus B's slice of its text range) and
    // publish it — one manifest bump — then hot-reload under live traffic.
    let store = ShardedStore::open(&root).unwrap();
    let spec = store.manifest().shards[1].clone();
    let shard_store = store.shard_store(1).unwrap();
    let gen_dir = shard_store.allocate().unwrap();
    let slice = CorpusSlice::new(&b, spec.first_text, spec.num_texts as usize);
    build_and_write(&slice, config(), &gen_dir, true).unwrap();
    let new_gen = gen_dir.file_name().unwrap().to_string_lossy().into_owned();
    let mut store = store;
    store.publish_shard(1, &new_gen, 2).unwrap();
    assert_eq!(store.manifest().generation, 2);

    assert!(
        serving.reload().unwrap(),
        "manifest moved, reload must swap"
    );
    assert_eq!(serving.generation(), Some(2));
    let ref_v2 = sharded_cold_results(&root, &queries);
    assert_ne!(ref_v1, ref_v2, "shard-1 rebuild must change some answer");

    // Give the readers a chance to observe the new view, then stop them.
    std::thread::sleep(std::time::Duration::from_millis(50));
    done.store(true, Ordering::Relaxed);
    let mut batches = 0usize;
    for reader in readers {
        for (generation, results) in reader.join().unwrap() {
            match generation {
                1 => assert_eq!(results, ref_v1, "gen-1 reader saw torn results"),
                2 => assert_eq!(results, ref_v2, "gen-2 reader saw torn results"),
                other => panic!("reader pinned unexpected manifest generation {other}"),
            }
            batches += 1;
        }
    }
    assert!(batches > 0, "readers never completed a batch");

    // Per-shard gauges track each shard's own serving generation.
    let reg = ndss::obs::Registry::global();
    assert_eq!(
        reg.gauge_with_labels(
            "index.shard.generation",
            "generation number each shard of the serving view is on",
            &[("shard", "0")],
        )
        .get(),
        0,
        "shard 0 still serves its original generation"
    );
    assert_eq!(
        reg.gauge_with_labels(
            "index.shard.generation",
            "generation number each shard of the serving view is on",
            &[("shard", "1")],
        )
        .get(),
        1,
        "shard 1 now serves its rebuilt generation"
    );
    std::fs::remove_dir_all(&root).ok();
}

/// Rolling one shard back is the same atomic story in reverse: the
/// manifest bump moves readers from the all-new view to the view with
/// shard 1 rolled back, never through a mix.
#[test]
fn per_shard_rollback_restores_the_previous_view() {
    let root = temp_dir("sharded_rollback");
    let (a, queries) = corpus_a();
    let b = corpus_b_shard1(&a, &queries);

    build_sharded(&a, config(), &root, 2, &ShardedBuildOptions::default()).unwrap();
    let ref_v1 = sharded_cold_results(&root, &queries);

    let mut store = ShardedStore::open(&root).unwrap();
    let spec = store.manifest().shards[1].clone();
    let shard_store = store.shard_store(1).unwrap();
    let gen_dir = shard_store.allocate().unwrap();
    build_and_write(
        &CorpusSlice::new(&b, spec.first_text, spec.num_texts as usize),
        config(),
        &gen_dir,
        true,
    )
    .unwrap();
    let new_gen = gen_dir.file_name().unwrap().to_string_lossy().into_owned();
    store.publish_shard(1, &new_gen, 2).unwrap();
    let ref_v2 = sharded_cold_results(&root, &queries);
    assert_ne!(ref_v1, ref_v2);

    let serving = ServingIndex::open(&root).unwrap();
    assert_eq!(serving.generation(), Some(2));

    let rolled = store.rollback_shard(1, None).unwrap();
    assert_eq!(rolled, spec.serving.unwrap());
    assert_eq!(store.manifest().generation, 3);
    assert!(serving.reload().unwrap());
    assert_eq!(serving.generation(), Some(3));

    // The rolled-back view answers exactly like the original one.
    let searcher = ServingSearcher::new(Arc::new(serving));
    let live: Vec<Vec<SeqRef>> = searcher
        .search_all(&queries, 0.8)
        .unwrap()
        .into_iter()
        .map(|o| o.enumerate_all())
        .collect();
    assert_eq!(live, ref_v1, "rollback must restore the original answers");
    std::fs::remove_dir_all(&root).ok();
}
