//! Differential: overlay queries over {published generations + memtable
//! segments} must be **identical** to a cold full rebuild of the same
//! texts — the CI-gated exactness contract of the ingest path.
//!
//! The grid covers every on-disk format (v3 fixed-width, v4 compressed, v5
//! block-bitpacked) × query concurrency 1/2/4/8 threads. The store is
//! arranged so matches span all three text populations at once: published
//! (sealed and compacted to disk), frozen (rotated, awaiting compaction),
//! and active (still absorbing appends) — and the query set includes spans
//! copied from each population plus planted near-duplicates, so a lane
//! silently dropped or double-counted cannot go unnoticed.

use std::path::PathBuf;

use ndss::index::{IngestIndex, IngestOptions};
use ndss::prelude::*;

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("ndss_it_overlay").join(name);
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn config(version: &str) -> IndexConfig {
    let (compress, packed) = match version {
        "v3" => (false, false),
        "v4" => (true, false),
        "v5" => (false, true),
        other => panic!("unknown index format {other}"),
    };
    IndexConfig::new(4, 15, 9)
        .compressed(compress)
        .bit_packed(packed)
}

fn overlay_grid(version: &str) {
    let (corpus, planted) = SyntheticCorpusBuilder::new(97)
        .num_texts(30)
        .text_len(60, 120)
        .vocab_size(500)
        .build();
    let texts: Vec<Vec<TokenId>> = (0..corpus.num_texts() as TextId)
        .map(|i| corpus.text_to_vec(i).unwrap())
        .collect();

    // Arrange the store: texts [0, 12) published, [12, 22) frozen,
    // [22, 30) active.
    let root = temp_dir(&format!("grid_{version}"));
    let opts = IngestOptions {
        fsync_every: 1,
        ..IngestOptions::default()
    };
    let mut ingest = IngestIndex::open(&root, Some(config(version)), opts).unwrap();
    for t in &texts[..12] {
        ingest.append(t).unwrap();
    }
    ingest.seal_all().unwrap();
    for t in &texts[12..22] {
        ingest.append(t).unwrap();
    }
    ingest.rotate().unwrap();
    for t in &texts[22..] {
        ingest.append(t).unwrap();
    }
    ingest.sync().unwrap();
    assert_eq!(ingest.covered(), 12);
    assert_eq!(ingest.frozen_segments(), 1);
    assert_eq!(ingest.pending_texts(), 18);

    // The cold full rebuild the overlay must be indistinguishable from.
    let full =
        MemoryIndex::build(&InMemoryCorpus::from_texts(texts.clone()), config(version)).unwrap();
    let reference = NearDupSearcher::new(&full).unwrap();

    // Queries drawn from every population, plus the planted duplicates
    // (whose sources land across the published/frozen/active boundaries).
    let mut queries: Vec<Vec<TokenId>> = vec![
        texts[3][10..50].to_vec(),
        texts[15][5..45].to_vec(),
        texts[25][20..60].to_vec(),
        texts[29][..40.min(texts[29].len())].to_vec(),
    ];
    queries.extend(
        planted
            .iter()
            .take(6)
            .map(|p| corpus.sequence_to_vec(p.dst).unwrap()),
    );

    let disk = ShardedIndex::open(&root).unwrap();
    assert_eq!(disk.num_texts(), 12, "only the sealed prefix is on disk");

    for threads in [1usize, 2, 4, 8] {
        // Each worker builds its own per-request overlay view (as the
        // daemon does) over the shared disk view and segments, and runs
        // the full query set — concurrency must not perturb a bit.
        std::thread::scope(|scope| {
            for worker in 0..threads {
                let (disk, ingest, reference, queries) = (&disk, &ingest, &reference, &queries);
                scope.spawn(move || {
                    for (qi, query) in queries.iter().enumerate() {
                        let searcher = disk.searcher().unwrap().threads(threads);
                        let cfg = disk.config();
                        let mut overlay = OverlaySearcher::new(
                            Some(searcher),
                            disk.num_texts() as u64,
                            cfg.k,
                            cfg.t as u32,
                        );
                        for segment in ingest.segments() {
                            overlay.push_segment(segment).unwrap();
                        }
                        assert_eq!(overlay.num_segments(), 2);
                        for theta in [0.7f64, 0.9] {
                            let label = format!(
                                "{version} threads {threads} worker {worker} query {qi} θ {theta}"
                            );
                            let got = overlay.search(query, theta).unwrap();
                            let want = reference.search(query, theta).unwrap();
                            assert!(got.complete, "{label}: flagged incomplete");
                            assert_eq!(got.beta, want.beta, "{label}: β differs");
                            assert_eq!(got.t, want.t, "{label}: t differs");
                            assert_eq!(got.matches, want.matches, "{label}: matches differ");
                        }
                    }
                });
            }
        });
    }

    // Compact everything and re-check with a refreshed disk view: the
    // overlay must collapse to the pure disk path with identical results.
    ingest.seal_all().unwrap();
    let disk = ShardedIndex::open(&root).unwrap();
    assert_eq!(disk.num_texts(), texts.len());
    for (qi, query) in queries.iter().enumerate() {
        let searcher = disk.searcher().unwrap();
        let cfg = disk.config();
        let mut overlay =
            OverlaySearcher::new(Some(searcher), disk.num_texts() as u64, cfg.k, cfg.t as u32);
        for segment in ingest.segments() {
            overlay.push_segment(segment).unwrap();
        }
        assert_eq!(overlay.num_segments(), 0, "everything is published");
        let got = overlay.search(query, 0.8).unwrap();
        let want = reference.search(query, 0.8).unwrap();
        assert_eq!(got.matches, want.matches, "{version} post-seal query {qi}");
    }
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn overlay_equals_full_rebuild_fixed_width() {
    overlay_grid("v3");
}

#[test]
fn overlay_equals_full_rebuild_compressed() {
    overlay_grid("v4");
}

#[test]
fn overlay_equals_full_rebuild_bitpacked() {
    overlay_grid("v5");
}

/// The publish-races-pin window, deterministically: pin the disk view,
/// compact (publish + trim) *while the old view is still pinned*, and
/// query through an overlay that still holds the now-published segment.
/// The per-segment rule must overlay it against the *stale* snapshot
/// (base ≥ covered) and skip it against a *fresh* one — identical results
/// from both sides of the swap.
#[test]
fn overlay_is_exact_across_a_concurrent_publish() {
    let root = temp_dir("publish_race");
    let (corpus, _) = SyntheticCorpusBuilder::new(98)
        .num_texts(20)
        .text_len(60, 120)
        .vocab_size(500)
        .build();
    let texts: Vec<Vec<TokenId>> = (0..corpus.num_texts() as TextId)
        .map(|i| corpus.text_to_vec(i).unwrap())
        .collect();
    let opts = IngestOptions {
        fsync_every: 1,
        ..IngestOptions::default()
    };
    let cfg = IndexConfig::new(4, 15, 9).bit_packed(true);
    let mut ingest = IngestIndex::open(&root, Some(cfg.clone()), opts).unwrap();
    for t in &texts[..10] {
        ingest.append(t).unwrap();
    }
    ingest.seal_all().unwrap();
    for t in &texts[10..] {
        ingest.append(t).unwrap();
    }
    ingest.rotate().unwrap();

    // Pin the 10-text view, then publish the frozen segment behind it.
    let stale = ShardedIndex::open(&root).unwrap();
    assert_eq!(stale.num_texts(), 10);
    // Snapshot the frozen segment's texts *by value*: compaction will drop
    // the in-memory segment, but a pinned request in the daemon holds the
    // lock for its whole search — here we model the before/after states.
    let full = MemoryIndex::build(&InMemoryCorpus::from_texts(texts.clone()), cfg.clone()).unwrap();
    let reference = NearDupSearcher::new(&full).unwrap();
    let query = texts[14][10..60].to_vec();
    let want = reference.search(&query, 0.8).unwrap();

    // Before the swap: stale snapshot + the frozen segment overlays.
    {
        let searcher = stale.searcher().unwrap();
        let mut overlay = OverlaySearcher::new(Some(searcher), 10, cfg.k, cfg.t as u32);
        for segment in ingest.segments() {
            overlay.push_segment(segment).unwrap();
        }
        assert_eq!(overlay.num_segments(), 1);
        let got = overlay.search(&query, 0.8).unwrap();
        assert_eq!(got.matches, want.matches, "stale view + overlay");
    }

    // Publish it. The *fresh* view covers everything; re-running with the
    // fresh snapshot and the (now empty) segment set matches too.
    ingest.seal_all().unwrap();
    let fresh = ShardedIndex::open(&root).unwrap();
    assert_eq!(fresh.num_texts(), 20);
    {
        let searcher = fresh.searcher().unwrap();
        let mut overlay = OverlaySearcher::new(Some(searcher), 20, cfg.k, cfg.t as u32);
        for segment in ingest.segments() {
            overlay.push_segment(segment).unwrap();
        }
        assert_eq!(overlay.num_segments(), 0);
        let got = overlay.search(&query, 0.8).unwrap();
        assert_eq!(got.matches, want.matches, "fresh view, segment skipped");
    }
    std::fs::remove_dir_all(&root).ok();
}
