//! Integration test files are declared as [[test]] targets in Cargo.toml.
