//! Shared test support for the integration suite. The integration test
//! files themselves are declared as `[[test]]` targets in `Cargo.toml`.

pub mod mutate;
