//! Integration of the §5 pipeline: train LM on the indexed corpus →
//! generate → slice windows → query → report ratios. Checks the qualitative
//! shapes the paper reports (monotonicity in θ, window width, model size).

use ndss::prelude::*;

fn setup() -> (InMemoryCorpus, MemoryIndex) {
    // A corpus with heavy internal duplication, so that n-gram generations
    // echo recognizable training spans.
    let (corpus, _) = SyntheticCorpusBuilder::new(301)
        .num_texts(60)
        .text_len(250, 400)
        .vocab_size(400)
        .duplicates_per_text(2.0)
        .dup_len(80, 150)
        .mutation_rate(0.0)
        .build();
    let index = MemoryIndex::build_parallel(&corpus, IndexConfig::new(32, 25, 9)).unwrap();
    (corpus, index)
}

#[test]
fn memorized_fraction_grows_as_threshold_drops() {
    let (corpus, index) = setup();
    let searcher = NearDupSearcher::new(&index).unwrap();
    let model = NGramModel::train(&corpus, 5).unwrap();
    let config = MemorizationConfig::new(8, 160).window(32).seed(1);
    let reports = evaluate_memorization(&model, &searcher, &config, &[1.0, 0.9, 0.8, 0.7]).unwrap();
    for pair in reports.windows(2) {
        assert!(
            pair[1].memorized >= pair[0].memorized,
            "θ={} memorized {} < θ={} memorized {}",
            pair[1].theta,
            pair[1].memorized,
            pair[0].theta,
            pair[0].memorized
        );
    }
    // On this heavily duplicated corpus with a strong model, something must
    // be memorized at θ = 0.7.
    assert!(reports.last().unwrap().memorized > 0);
}

#[test]
fn larger_models_memorize_at_least_as_much() {
    let (corpus, index) = setup();
    let searcher = NearDupSearcher::new(&index).unwrap();
    let config = MemorizationConfig::new(6, 160).window(32).seed(2);
    let mut prev_ratio = -1.0f64;
    // Orders 2 → 4 → 6 play the roles of small/medium/large checkpoints.
    for order in [2usize, 4, 6] {
        let model = NGramModel::train(&corpus, order).unwrap();
        let r = evaluate_memorization(&model, &searcher, &config, &[0.8]).unwrap()[0].ratio();
        assert!(
            r + 1e-9 >= prev_ratio,
            "order {order} ratio {r} dropped below {prev_ratio}"
        );
        prev_ratio = r;
    }
}

#[test]
fn shorter_windows_memorize_more() {
    let (corpus, index) = setup();
    let searcher = NearDupSearcher::new(&index).unwrap();
    let model = NGramModel::train(&corpus, 5).unwrap();
    let mut ratios = Vec::new();
    for x in [32usize, 64, 128] {
        let config = MemorizationConfig::new(6, 256).window(x).seed(3);
        let r = evaluate_memorization(&model, &searcher, &config, &[0.8]).unwrap()[0];
        ratios.push((x, r.ratio()));
    }
    // The paper's Figure 4(b): smaller sliding windows usually entail a
    // greater memorized percentage. Require the x=32 ratio to be ≥ x=128.
    assert!(
        ratios[0].1 >= ratios[2].1,
        "window 32 ratio {} < window 128 ratio {}",
        ratios[0].1,
        ratios[2].1
    );
}

#[test]
fn generation_strategies_all_flow_through_pipeline() {
    let (corpus, index) = setup();
    let searcher = NearDupSearcher::new(&index).unwrap();
    let model = NGramModel::train(&corpus, 3).unwrap();
    for strategy in [
        GenerationStrategy::Greedy,
        GenerationStrategy::Random,
        GenerationStrategy::TopK(50),
        GenerationStrategy::TopP(0.9),
    ] {
        let config = MemorizationConfig::new(2, 96)
            .window(32)
            .strategy(strategy)
            .seed(4);
        let reports = evaluate_memorization(&model, &searcher, &config, &[0.8]).unwrap();
        assert_eq!(reports[0].queries, 2 * 3);
    }
}

#[test]
fn greedy_generation_from_training_prefix_is_memorized() {
    // The strongest memorization case: greedy decoding with a high-order
    // model deterministically replays training sequences. Query windows cut
    // from such a generation must be found at θ = 1.0... unless generation
    // diverges at an unseen context; so we assert on θ = 0.8 which tolerates
    // small divergences.
    let (corpus, index) = setup();
    let searcher = NearDupSearcher::new(&index).unwrap();
    let model = NGramModel::train(&corpus, 6).unwrap();
    let config = MemorizationConfig::new(4, 128)
        .window(32)
        .strategy(GenerationStrategy::Greedy)
        .seed(5);
    let reports = evaluate_memorization(&model, &searcher, &config, &[0.8]).unwrap();
    assert!(
        reports[0].ratio() > 0.5,
        "greedy order-6 generations should be mostly memorized, got {}",
        reports[0].ratio()
    );
}
