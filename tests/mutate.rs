//! Deterministic fault injection for on-disk artifacts.
//!
//! [`mutate`] derives one corruption from a `(pristine, seed)` pair — the
//! same inputs always produce the same mutated bytes, so a sweep over seeds
//! is reproducible: a seed that exposes a panic or a silently-wrong read
//! keeps exposing it until the underlying bug is fixed.
//!
//! The mutation mix models the faults a storage layer actually sees:
//! single-bit flips (media decay), truncation (crash mid-write), zeroed
//! pages (lost writes on page-granular media), targeted header-field
//! overwrites (the adversarial case for size/offset validation), and
//! trailing garbage (partial overwrite by a larger stale file).

/// Splitmix64: tiny, seedable, and good enough to spread mutations across
/// the whole file.
pub struct Rng {
    state: u64,
}

impl Rng {
    pub fn new(seed: u64) -> Self {
        Self {
            state: seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1),
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform-ish value in `[0, n)`. Modulo bias is irrelevant here.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        self.next_u64() % n
    }
}

/// What [`mutate`] did, for diagnostics when a sweep case fails.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mutation {
    /// One bit flipped anywhere in the file.
    BitFlip { offset: usize, bit: u8 },
    /// File cut to a strictly shorter length (possibly zero).
    Truncate { new_len: usize },
    /// Up to one 4 KiB page overwritten with zeros.
    ZeroPage { offset: usize, len: usize },
    /// An aligned 4- or 8-byte field in the header region overwritten with
    /// an adversarial value (0, 1, 2, a size-like number, or all-ones).
    HeaderField {
        offset: usize,
        width: usize,
        value: u64,
    },
    /// Garbage bytes appended past the true end of the file.
    Extend { extra: usize },
}

const PAGE: usize = 4096;
/// Header fields live in the first 80 bytes of every ndss format.
const HEADER_REGION: usize = 80;

/// Applies one seed-determined mutation to a copy of `pristine`.
///
/// The result may equal the input (zeroing an already-zero page, writing a
/// header value that was already there); callers that require an effective
/// mutation should compare and skip. `pristine` must be at least 8 bytes —
/// every real artifact starts with magic + version.
pub fn mutate(pristine: &[u8], seed: u64) -> (Vec<u8>, Mutation) {
    assert!(pristine.len() >= 8, "artifact too small to mutate");
    let mut rng = Rng::new(seed);
    let mut bytes = pristine.to_vec();
    let len = bytes.len();
    // Weighted kind choice: bit flips dominate (they probe every byte's
    // checksum coverage), the structured faults split the rest.
    let mutation = match rng.below(16) {
        0..=6 => {
            let offset = rng.below(len as u64) as usize;
            let bit = rng.below(8) as u8;
            bytes[offset] ^= 1 << bit;
            Mutation::BitFlip { offset, bit }
        }
        7..=9 => {
            let new_len = rng.below(len as u64) as usize;
            bytes.truncate(new_len);
            Mutation::Truncate { new_len }
        }
        10..=12 => {
            let offset = rng.below(len as u64) as usize;
            let end = (offset + PAGE).min(len);
            bytes[offset..end].fill(0);
            Mutation::ZeroPage {
                offset,
                len: end - offset,
            }
        }
        13..=14 => {
            // Aligned field in the header region: the values a validator
            // must survive — zeros, tiny counts, version confusion (2), a
            // plausible-but-wrong size, and overflow bait.
            let region = HEADER_REGION.min(len);
            let width = if rng.below(2) == 0 { 4 } else { 8 };
            let slots = (region / width).max(1) as u64;
            let offset = rng.below(slots) as usize * width;
            let value = match rng.below(7) {
                0 => 0,
                1 => 1,
                2 => 2,
                3 => len as u64,
                4 => (len as u64).wrapping_mul(1 << 20),
                5 => u32::MAX as u64,
                _ => u64::MAX,
            };
            let end = (offset + width).min(len);
            bytes[offset..end].copy_from_slice(&value.to_le_bytes()[..end - offset]);
            Mutation::HeaderField {
                offset,
                width,
                value,
            }
        }
        _ => {
            let extra = 1 + rng.below(64) as usize;
            for _ in 0..extra {
                bytes.push(rng.next_u64() as u8);
            }
            Mutation::Extend { extra }
        }
    };
    (bytes, mutation)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn is_deterministic() {
        let data: Vec<u8> = (0..500u32).map(|i| (i * 7) as u8).collect();
        for seed in 0..64 {
            assert_eq!(mutate(&data, seed), mutate(&data, seed));
        }
    }

    #[test]
    fn covers_every_kind() {
        let data = vec![0xABu8; 1000];
        let mut seen = [false; 5];
        for seed in 0..256 {
            let (_, m) = mutate(&data, seed);
            let idx = match m {
                Mutation::BitFlip { .. } => 0,
                Mutation::Truncate { .. } => 1,
                Mutation::ZeroPage { .. } => 2,
                Mutation::HeaderField { .. } => 3,
                Mutation::Extend { .. } => 4,
            };
            seen[idx] = true;
        }
        assert_eq!(seen, [true; 5], "some mutation kind never fired");
    }

    #[test]
    fn length_changes_match_reported_mutation() {
        let data = vec![1u8; 300];
        for seed in 0..256 {
            let (out, m) = mutate(&data, seed);
            match m {
                Mutation::Truncate { new_len } => assert_eq!(out.len(), new_len),
                Mutation::Extend { extra } => assert_eq!(out.len(), data.len() + extra),
                _ => assert_eq!(out.len(), data.len()),
            }
        }
    }
}
