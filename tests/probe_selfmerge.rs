// Probe: does a crash between publish and trim leave compact_gen pointing
// at the CURRENT generation, causing a subsequent in-place self-merge?
use std::path::{Path, PathBuf};
use std::sync::Arc;

use ndss::corpus::{CorpusSource, SyntheticCorpusBuilder};
use ndss::index::{IngestIndex, IngestOptions, KillPoints, GenerationStore, IndexError};
use ndss::IndexConfig;

fn texts() -> Vec<Vec<u32>> {
    let (corpus, _) = SyntheticCorpusBuilder::new(93)
        .num_texts(18)
        .text_len(40, 90)
        .vocab_size(400)
        .build();
    (0..corpus.num_texts() as u32)
        .map(|i| corpus.text_to_vec(i).unwrap())
        .collect()
}

fn config() -> IndexConfig { IndexConfig::new(3, 20, 11).bit_packed(true) }

fn opts(kill: Option<Arc<KillPoints>>) -> IngestOptions {
    IngestOptions { flush_bytes: 2_000, fsync_every: 1, keep: 1, kill }
}

fn drive(root: &Path, kill: Option<Arc<KillPoints>>) -> Result<(), IndexError> {
    let texts = texts();
    let mut ing = IngestIndex::open(root, Some(config()), opts(kill))?;
    let mut next = ing.next_text_id();
    while (next as usize) < texts.len() {
        ing.append(&texts[next as usize])?;
        next += 1;
    }
    ing.seal_all()?;
    Ok(())
}

fn read_manifest(root: &Path) -> String {
    std::fs::read_to_string(root.join("memtable").join("MEMTABLE")).unwrap_or_default()
}

fn current(root: &Path) -> String {
    std::fs::read_to_string(root.join("CURRENT")).unwrap_or_default().trim().to_string()
}

#[test]
fn probe() {
    let count = KillPoints::count_only();
    let base = std::env::temp_dir().join("ndss_probe");
    std::fs::remove_dir_all(&base).ok();
    let croot = base.join("count");
    std::fs::create_dir_all(&croot).unwrap();
    drive(&croot, Some(count.clone())).unwrap();
    let checkpoints = count.checkpoints_seen();
    eprintln!("checkpoints = {checkpoints}");

    for n in 0..checkpoints {
        let root = base.join(format!("sweep"));
        std::fs::remove_dir_all(&root).ok();
        std::fs::create_dir_all(&root).unwrap();
        let r = drive(&root, Some(KillPoints::at_checkpoint(n)));
        assert!(r.is_err());
        let cur_before = current(&root);
        // recover
        let frozen = {
            let ing = IngestIndex::open(&root, None, opts(None)).unwrap();
            ing.frozen_segments()
        };
        let man = read_manifest(&root);
        let cur = current(&root);
        // extract compact_gen from manifest json crudely
        let cg = man.split("\"compact_gen\"").nth(1)
            .and_then(|s| s.split('"').nth(1)).unwrap_or("").to_string();
        if !cg.is_empty() && cg == cur && frozen > 0 {
            eprintln!("checkpoint {n}: STALE compact_gen={cg} == CURRENT={cur}, frozen={frozen} (was CURRENT before recovery: {cur_before})");
            // inode of an inv file in CURRENT before resume
            let inv = root.join(&cur).join("inv_0.ndsi");
            use std::os::unix::fs::MetadataExt;
            let ino_before = std::fs::metadata(&inv).map(|m| m.ino()).unwrap_or(0);
            let meta_before = std::fs::read_to_string(root.join(&cur).join("meta.json")).unwrap_or_default();
            drive(&root, None).unwrap();
            let cur_after = current(&root);
            let ino_after = std::fs::metadata(root.join(&cur).join("inv_0.ndsi")).map(|m| m.ino()).unwrap_or(0);
            let meta_after = std::fs::read_to_string(root.join(&cur).join("meta.json")).unwrap_or_default();
            eprintln!("  resume: CURRENT now {cur_after}; gen {cg} inv_0 inode {ino_before} -> {ino_after}; meta changed: {}",
                meta_before != meta_after);
        }
    }
}
