//! Live-loopback integration tests for the `ndss-serve` daemon.
//!
//! Each test binds a real `TcpListener` on `127.0.0.1:0`, drives it with
//! the vendored blocking clients, and checks the serving invariants:
//!
//! * both protocols (HTTP/1.1 JSON and NDSB binary framing) answer on the
//!   same port, and their results agree with a cold open of the served
//!   generation;
//! * clients querying *concurrently with* `POST /reload` always see
//!   results bit-identical to a cold open of one generation — never a
//!   blend of two;
//! * `GET /metrics` passes the repo's Prometheus exposition validator;
//! * graceful drain answers every in-flight request — zero dropped
//!   queries — and then `run()` returns.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use ndss::index::{build_and_write, CacheConfig};
use ndss::prelude::*;
use ndss::serve::client::{FrameClient, HttpClient};
use ndss::serve::frame::SearchRequest;
use ndss::serve::{RunningServer, ServeConfig, Server};

const THETA: f64 = 0.8;
const TIMEOUT: Duration = Duration::from_secs(30);

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("ndss_it_serve").join(name);
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn config() -> IndexConfig {
    IndexConfig::new(8, 20, 13)
}

fn build_generation(store: &GenerationStore, corpus: &InMemoryCorpus) -> String {
    let dir = store.allocate().unwrap();
    build_and_write(corpus, config(), &dir, true).unwrap();
    dir.file_name().unwrap().to_string_lossy().into_owned()
}

fn corpus_a() -> (InMemoryCorpus, Vec<Vec<u32>>) {
    let (corpus, planted) = SyntheticCorpusBuilder::new(31)
        .num_texts(20)
        .duplicates_per_text(1.0)
        .mutation_rate(0.0)
        .build();
    let queries: Vec<Vec<u32>> = planted
        .iter()
        .take(4)
        .map(|p| corpus.sequence_to_vec(p.dst).unwrap())
        .collect();
    assert!(!queries.is_empty());
    (corpus, queries)
}

/// Corpus A plus one extra text repeating query 0, so generation B answers
/// query 0 with strictly more matches than generation A.
fn corpus_b(a: &InMemoryCorpus, queries: &[Vec<u32>]) -> InMemoryCorpus {
    let mut texts: Vec<Vec<u32>> = (0..a.num_texts() as u32)
        .map(|i| a.text(i).to_vec())
        .collect();
    texts.push(queries[0].clone());
    InMemoryCorpus::from_texts(texts)
}

/// The canonical fingerprint of one ranked match list:
/// `(text, collisions, spans)` per match, in rank order.
type Fingerprint = Vec<(u32, u32, Vec<(u32, u32)>)>;

/// Cold-open reference through the same searcher configuration the server
/// uses.
fn cold_fingerprint(dir: &Path, query: &[u32]) -> Fingerprint {
    let index = DiskIndex::open(dir).unwrap();
    let searcher = NearDupSearcher::with_prefix_filter(&index, PrefixFilter::Adaptive).unwrap();
    let outcome = searcher.search(query, THETA).unwrap();
    searcher
        .rank(&outcome, usize::MAX)
        .into_iter()
        .map(|m| {
            (
                m.text,
                m.collisions,
                m.spans.iter().map(|s| (s.start, s.end)).collect(),
            )
        })
        .collect()
}

/// Fingerprint from a `POST /search` JSON body.
fn json_fingerprint(body: &str) -> (bool, u64, Fingerprint) {
    let doc = ndss::json::Json::parse(body).unwrap();
    let complete = matches!(doc.get("complete"), Some(ndss::json::Json::Bool(true)));
    let generation = doc.get("generation").and_then(|v| v.as_u64()).unwrap();
    let matches = doc
        .get("matches")
        .and_then(|v| v.as_array())
        .unwrap()
        .iter()
        .map(|m| {
            let spans = m
                .get("spans")
                .and_then(|v| v.as_array())
                .unwrap()
                .iter()
                .map(|s| {
                    let pair = s.as_array().unwrap();
                    (
                        pair[0].as_u64().unwrap() as u32,
                        pair[1].as_u64().unwrap() as u32,
                    )
                })
                .collect();
            (
                m.get("text").and_then(|v| v.as_u64()).unwrap() as u32,
                m.get("collisions").and_then(|v| v.as_u64()).unwrap() as u32,
                spans,
            )
        })
        .collect();
    (complete, generation, matches)
}

fn search_body(query: &[u32]) -> String {
    let tokens: Vec<String> = query.iter().map(|t| t.to_string()).collect();
    format!("{{\"query\":[{}],\"theta\":{THETA}}}", tokens.join(","))
}

fn start_server(store: &Path) -> RunningServer {
    let serving = ServingIndex::open_with_cache(store, CacheConfig::default()).unwrap();
    let server = Server::bind(
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 16,
            admission_cap: 8,
            ..ServeConfig::default()
        },
        serving,
    )
    .unwrap();
    server.spawn()
}

#[test]
fn both_protocols_agree_with_a_cold_open() {
    let root = temp_dir("protocols");
    let store = GenerationStore::open(&root).unwrap();
    let (corpus, queries) = corpus_a();
    let name = build_generation(&store, &corpus);
    store.publish(&name, 1).unwrap();
    let gen_dir = root.join(&name);

    let server = start_server(&root);
    let addr = server.handle().addr();

    let mut http = HttpClient::connect(addr, TIMEOUT).unwrap();
    let health = http.request("GET", "/healthz", b"").unwrap();
    assert_eq!(health.status, 200, "healthz: {}", health.text());

    let mut frames = FrameClient::connect(addr, TIMEOUT).unwrap();
    assert_eq!(frames.ping().unwrap(), 0);

    for query in &queries {
        let cold = cold_fingerprint(&gen_dir, query);

        let reply = http
            .request("POST", "/search", search_body(query).as_bytes())
            .unwrap();
        assert_eq!(reply.status, 200, "search: {}", reply.text());
        let (complete, generation, live) = json_fingerprint(&reply.text());
        assert!(complete);
        assert_eq!(generation, 0);
        assert_eq!(live, cold, "HTTP results differ from a cold open");

        let wire = frames
            .search(&SearchRequest {
                theta: THETA,
                deadline_ms: 0,
                top: 0,
                query: query.clone(),
            })
            .unwrap()
            .expect("binary search should succeed");
        assert!(wire.complete);
        let framed: Fingerprint = wire
            .matches
            .into_iter()
            .map(|m| (m.text, m.collisions, m.spans))
            .collect();
        assert_eq!(framed, cold, "binary results differ from a cold open");
    }

    // The exposition the daemon serves must parse under the repo's own
    // validator.
    let metrics = http.request("GET", "/metrics", b"").unwrap();
    assert_eq!(metrics.status, 200);
    ndss::obs::validate_prometheus_text(&metrics.text())
        .unwrap_or_else(|e| panic!("invalid exposition: {e}"));

    let report = server.shutdown_and_join().unwrap();
    assert!(report.http_requests >= 2 + queries.len() as u64);
    assert!(report.frame_requests > queries.len() as u64);
}

#[test]
fn concurrent_clients_during_reload_see_one_generation_at_a_time() {
    let root = temp_dir("reload_race");
    let store = GenerationStore::open(&root).unwrap();
    let (corpus, queries) = corpus_a();
    let gen_a = build_generation(&store, &corpus);
    store.publish(&gen_a, 2).unwrap();
    let cold_a = cold_fingerprint(&root.join(&gen_a), &queries[0]);

    let updated = corpus_b(&corpus, &queries);
    let server = start_server(&root);
    let addr = server.handle().addr();

    // Hammer query 0 from several clients while the reload happens.
    let stop = Arc::new(AtomicBool::new(false));
    let saw_new = Arc::new(AtomicU64::new(0));
    let query = queries[0].clone();
    let body = search_body(&query);
    let clients: Vec<_> = (0..3)
        .map(|_| {
            let stop = stop.clone();
            let saw_new = saw_new.clone();
            let body = body.clone();
            let cold_a = cold_a.clone();
            std::thread::spawn(move || {
                let mut http = HttpClient::connect(addr, TIMEOUT).unwrap();
                let mut checked = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let reply = http.request("POST", "/search", body.as_bytes()).unwrap();
                    assert_eq!(reply.status, 200, "search: {}", reply.text());
                    let (complete, generation, live) = json_fingerprint(&reply.text());
                    assert!(complete);
                    // Every response must be bit-identical to a cold open
                    // of the generation it claims to come from.
                    match generation {
                        0 => assert_eq!(live, cold_a, "gen-0 response differs from cold open"),
                        1 => {
                            // cold_b is only computable after the build
                            // lands; record the fingerprint and verify on
                            // the main thread afterwards.
                            saw_new.fetch_add(1, Ordering::Relaxed);
                        }
                        other => panic!("response from unexpected generation {other}"),
                    }
                    checked += 1;
                }
                checked
            })
        })
        .collect();

    // Publish generation B and hot-swap it in under live traffic.
    let gen_b = build_generation(&store, &updated);
    store.publish(&gen_b, 2).unwrap();
    let mut http = HttpClient::connect(addr, TIMEOUT).unwrap();
    let reload = http.request("POST", "/reload", b"").unwrap();
    assert_eq!(reload.status, 200);
    assert!(
        reload.text().contains("\"reloaded\":true"),
        "{}",
        reload.text()
    );

    // Let the clients observe the new generation, then stop them.
    let cold_b = cold_fingerprint(&root.join(&gen_b), &query);
    assert_ne!(cold_a, cold_b, "corpus B must change query 0's answer");
    std::thread::sleep(Duration::from_millis(100));
    stop.store(true, Ordering::Relaxed);
    let total: u64 = clients.into_iter().map(|c| c.join().unwrap()).sum();
    assert!(total > 0);

    // Post-reload, the served answer is bit-identical to a cold open of B.
    let reply = http.request("POST", "/search", body.as_bytes()).unwrap();
    let (complete, generation, live) = json_fingerprint(&reply.text());
    assert!(complete);
    assert_eq!(generation, 1);
    assert_eq!(
        live, cold_b,
        "post-reload response differs from cold open of B"
    );

    server.shutdown_and_join().unwrap();
}

#[test]
fn drain_answers_every_in_flight_query() {
    let root = temp_dir("drain");
    let store = GenerationStore::open(&root).unwrap();
    let (corpus, queries) = corpus_a();
    let name = build_generation(&store, &corpus);
    store.publish(&name, 1).unwrap();

    let server = start_server(&root);
    let addr = server.handle().addr();
    let handle = server.handle();

    // Clients keep issuing queries; drain fires while they are in flight.
    // Every request that gets written must be answered (ConnectionReset /
    // UnexpectedEof before a response counts as a dropped query).
    let clients: Vec<_> = queries
        .iter()
        .cloned()
        .map(|query| {
            std::thread::spawn(move || {
                let mut http = HttpClient::connect(addr, TIMEOUT).unwrap();
                let body = search_body(&query);
                let mut answered = 0u64;
                loop {
                    match http.request("POST", "/search", body.as_bytes()) {
                        Ok(reply) => {
                            assert_eq!(reply.status, 200, "search: {}", reply.text());
                            answered += 1;
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => {
                            // Clean close *between* requests: the write of
                            // the next request raced the drain close. The
                            // previous response was still delivered whole.
                            break;
                        }
                        Err(e)
                            if e.kind() == std::io::ErrorKind::ConnectionReset
                                || e.kind() == std::io::ErrorKind::BrokenPipe =>
                        {
                            break;
                        }
                        Err(e) => panic!("client io error during drain: {e}"),
                    }
                }
                answered
            })
        })
        .collect();

    // Let traffic build up, then drain.
    std::thread::sleep(Duration::from_millis(150));
    handle.shutdown();
    let answered: u64 = clients.into_iter().map(|c| c.join().unwrap()).sum();
    assert!(answered > 0, "no queries completed before the drain");

    let report = server.shutdown_and_join().unwrap();
    // Every request the server counted was answered: the handler count in
    // the report equals successful client-side responses plus the reload-
    // free admin traffic (none here).
    assert!(report.http_requests >= answered);
}

// ---------------------------------------------------------------------------
// Sharded store behind the daemon: concurrent per-shard reload.
// ---------------------------------------------------------------------------

/// Cold fingerprint over a sharded store's current manifest view, through
/// the same searcher configuration the server uses.
fn sharded_cold_fingerprint(root: &Path, query: &[u32]) -> Fingerprint {
    let view = ShardedIndex::open(root).unwrap();
    let searcher = view
        .searcher_with_filter(PrefixFilter::Adaptive)
        .unwrap()
        .threads(2);
    let outcome = searcher.search(query, THETA).unwrap();
    searcher
        .rank(&outcome, usize::MAX)
        .into_iter()
        .map(|m| {
            (
                m.text,
                m.collisions,
                m.spans.iter().map(|s| (s.start, s.end)).collect(),
            )
        })
        .collect()
}

/// Republishing one shard and hot-reloading under live clients never
/// yields a torn cross-shard view: every `/search` response reports
/// exactly one manifest generation, and its results are bit-identical to
/// a cold open of that generation's view — even while `POST /reload`
/// races the per-shard publish.
#[test]
fn sharded_reload_of_one_shard_is_atomic_to_clients() {
    let root = temp_dir("sharded_reload");
    let (corpus, queries) = corpus_a();
    build_sharded(&corpus, config(), &root, 2, &ShardedBuildOptions::default()).unwrap();
    let query = queries[0].clone();
    let cold_v1 = sharded_cold_fingerprint(&root, &query);

    // Shard 1's replacement slice: text 15 now repeats query 0.
    let mut texts: Vec<Vec<u32>> = (0..corpus.num_texts() as u32)
        .map(|i| corpus.text(i).to_vec())
        .collect();
    texts[15] = query.clone();
    let updated = InMemoryCorpus::from_texts(texts);

    let server = start_server(&root);
    let addr = server.handle().addr();

    let mut http = HttpClient::connect(addr, TIMEOUT).unwrap();
    let health = http.request("GET", "/healthz", b"").unwrap();
    assert_eq!(health.status, 200);
    assert!(
        health.text().contains("\"generation\":1"),
        "publish_all bumps the manifest once: {}",
        health.text()
    );

    // Clients hammer query 0 while the publish + reloads happen.
    let stop = Arc::new(AtomicBool::new(false));
    let saw_new = Arc::new(AtomicU64::new(0));
    let body = search_body(&query);
    let clients: Vec<_> = (0..3)
        .map(|_| {
            let stop = stop.clone();
            let saw_new = saw_new.clone();
            let body = body.clone();
            let cold_v1 = cold_v1.clone();
            std::thread::spawn(move || {
                let mut http = HttpClient::connect(addr, TIMEOUT).unwrap();
                let mut checked = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let reply = http.request("POST", "/search", body.as_bytes()).unwrap();
                    assert_eq!(reply.status, 200, "search: {}", reply.text());
                    let (complete, generation, live) = json_fingerprint(&reply.text());
                    assert!(complete);
                    match generation {
                        1 => assert_eq!(live, cold_v1, "gen-1 response differs from cold open"),
                        2 => {
                            saw_new.fetch_add(1, Ordering::Relaxed);
                        }
                        other => panic!("response from unexpected manifest generation {other}"),
                    }
                    checked += 1;
                }
                checked
            })
        })
        .collect();

    // Rebuild and publish shard 1 only (one manifest bump), then fire
    // several concurrent reloads — only the manifest flip may be visible.
    {
        let mut store = ShardedStore::open(&root).unwrap();
        let spec = store.manifest().shards[1].clone();
        let shard_store = store.shard_store(1).unwrap();
        let gen_dir = shard_store.allocate().unwrap();
        let slice = CorpusSlice::new(&updated, spec.first_text, spec.num_texts as usize);
        ndss::index::build_and_write(&slice, config(), &gen_dir, true).unwrap();
        let new_gen = gen_dir.file_name().unwrap().to_string_lossy().into_owned();
        store.publish_shard(1, &new_gen, 2).unwrap();
        assert_eq!(store.manifest().generation, 2);
    }
    let reloaders: Vec<_> = (0..3)
        .map(|_| {
            std::thread::spawn(move || {
                let mut http = HttpClient::connect(addr, TIMEOUT).unwrap();
                let reply = http.request("POST", "/reload", b"").unwrap();
                assert_eq!(reply.status, 200, "reload: {}", reply.text());
                reply.text().contains("\"reloaded\":true")
            })
        })
        .collect();
    let swaps = reloaders
        .into_iter()
        .map(|r| r.join().unwrap())
        .filter(|&swapped| swapped)
        .count();
    assert!(swaps >= 1, "at least one racing reload must swap");

    // Let the clients observe the new view, then stop them.
    std::thread::sleep(Duration::from_millis(100));
    stop.store(true, Ordering::Relaxed);
    let total: u64 = clients.into_iter().map(|c| c.join().unwrap()).sum();
    assert!(total > 0);

    // Post-reload, the served answer matches a cold open of the new view
    // and reports the new manifest generation.
    let cold_v2 = sharded_cold_fingerprint(&root, &query);
    assert_ne!(cold_v1, cold_v2, "shard-1 rebuild must change query 0");
    let reply = http.request("POST", "/search", body.as_bytes()).unwrap();
    let (complete, generation, live) = json_fingerprint(&reply.text());
    assert!(complete);
    assert_eq!(generation, 2);
    assert_eq!(live, cold_v2, "post-reload response differs from cold open");

    server.shutdown_and_join().unwrap();
}

// ---------------------------------------------------------------------------
// Drain interaction with the fault-isolation layer.
// ---------------------------------------------------------------------------

/// Graceful drain stays prompt while a shard is quarantined and the
/// health prober is active. The prober sleeps in short slices and
/// re-checks the drain flag between them, so shutdown must never wait
/// anywhere near a full probe interval — this test gives the prober a
/// deliberately huge interval (60 s) and requires the whole drain to
/// finish in a small fraction of it.
///
/// Drain is requested through [`ServerHandle::shutdown`], the same flag
/// the SIGTERM hook sets; a raw `kill(SIGTERM)` is off-limits in-process
/// because the signal latch is process-global and would poison every
/// other test in this binary.
#[test]
fn drain_is_prompt_while_a_shard_is_quarantined() {
    use ndss::index::{ChaosMode, ChaosPlan};
    use ndss::query::{BreakerConfig, FaultKind, ServingOptions};

    let root = temp_dir("drain_quarantined");
    let (corpus, queries) = corpus_a();
    build_sharded(&corpus, config(), &root, 2, &ShardedBuildOptions::default()).unwrap();

    let plan = ChaosPlan::targeting("shard-0001");
    let serving = ServingIndex::open_with_options(
        &root,
        ServingOptions {
            cache: CacheConfig::disabled(),
            io: ndss::index::ReadOptions {
                chaos: Some(plan.clone()),
                ..Default::default()
            },
            breaker: BreakerConfig {
                failure_threshold: 1,
                backoff: Duration::from_secs(60),
                max_backoff: Duration::from_secs(60),
            },
        },
    )
    .unwrap();
    let server = Server::bind(
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 8,
            admission_cap: 8,
            probe_interval: Some(Duration::from_secs(60)),
            ..ServeConfig::default()
        },
        serving,
    )
    .unwrap()
    .spawn();
    let addr = server.handle().addr();
    let handle = server.handle();

    // Trip shard 1's breaker: one denied read quarantines it (threshold
    // 1), and the 60 s backoff keeps it quarantined through the drain.
    // The query is a prefix of a text shard 1 owns (texts 10–19), so the
    // scatter must read that shard's postings and hit the armed tap; the
    // denial classifies as a permanent fault and trips immediately.
    plan.arm(ChaosMode::Deny);
    let mut http = HttpClient::connect(addr, TIMEOUT).unwrap();
    let shard1_query: Vec<u32> = corpus.text(15)[..40].to_vec();
    let body = search_body(&shard1_query);
    let reply = http.request("POST", "/search", body.as_bytes()).unwrap();
    assert_eq!(reply.status, 200, "degraded search: {}", reply.text());
    assert!(
        reply.text().contains("degraded_shards"),
        "expected a degraded response: {}",
        reply.text()
    );
    assert!(reply.text().contains(FaultKind::Permanent.label()));
    let _ = &queries; // healthy-path queries are exercised elsewhere

    // Drain with the shard still quarantined and the prober mid-sleep of
    // its 60 s interval. The whole shutdown must take a small fraction of
    // that interval.
    let started = std::time::Instant::now();
    handle.shutdown();
    let report = server.shutdown_and_join().unwrap();
    let took = started.elapsed();
    assert!(report.http_requests >= 1);
    assert!(
        took < Duration::from_secs(5),
        "drain blocked on the prober: took {took:?} against a 60 s probe interval"
    );
}
