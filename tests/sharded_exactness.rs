//! Scatter-gather over a sharded store must be indistinguishable from one
//! index over the whole corpus — bit for bit, across every combination of
//! shard count, on-disk format, and query-time thread count.
//!
//! The exactness argument: shards partition the corpus by contiguous
//! text-id range, each shard indexes its slice with shard-local ids, and
//! the merger adds `first_text` back and concatenates in shard order —
//! which *is* ascending global text order. Definition-2 rectangles for a
//! text depend only on the query and that text's own sequences, so no
//! cross-shard information is lost. These tests pin that argument against
//! the single-index oracle, plus the governed-search contract (sound
//! text-order prefixes) and batch/sequential equivalence on top of it.

use ndss::index::build_and_write;
use ndss::prelude::*;

const THETA: f64 = 0.8;
const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];
const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];
const FORMATS: [(bool, bool, &str); 3] = [
    (false, false, "v3"),
    (true, false, "v4"),
    (false, true, "v5"),
];

fn temp_dir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("ndss_it_sharded").join(name);
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn config(compress: bool, packed: bool) -> IndexConfig {
    IndexConfig::new(8, 20, 13)
        .zone_map(16, 64)
        .compressed(compress)
        .bit_packed(packed)
}

/// A corpus small enough for an 8-shard split to stay meaningful, with
/// planted near-duplicates crossing every future shard boundary (sources
/// and destinations land in arbitrary texts).
fn workload() -> (InMemoryCorpus, Vec<Vec<TokenId>>) {
    let (corpus, planted) = SyntheticCorpusBuilder::new(7101)
        .num_texts(64)
        .text_len(100, 220)
        .duplicates_per_text(1.0)
        .dup_len(40, 80)
        .mutation_rate(0.03)
        .build();
    let queries: Vec<Vec<TokenId>> = planted
        .iter()
        .take(10)
        .map(|p| corpus.sequence_to_vec(p.dst).unwrap())
        .collect();
    assert!(queries.len() >= 8, "expected a non-trivial query set");
    (corpus, queries)
}

fn build_store(
    corpus: &InMemoryCorpus,
    shards: usize,
    compress: bool,
    packed: bool,
    tag: &str,
) -> std::path::PathBuf {
    let root = temp_dir(tag);
    let opts = ShardedBuildOptions {
        threads: 2,
        ..ShardedBuildOptions::default()
    };
    build_sharded(corpus, config(compress, packed), &root, shards, &opts).unwrap();
    root
}

/// The full grid: shard count × on-disk format × query thread count, every
/// cell bit-identical to the single-index oracle, and every store passing
/// its own end-to-end verification.
#[test]
fn sharded_results_match_single_index_oracle_across_grid() {
    let (corpus, queries) = workload();

    for (compress, packed, format) in FORMATS {
        // Oracle: one index over the whole corpus, same format.
        let oracle_dir = temp_dir(&format!("oracle_{format}"));
        build_and_write(&corpus, config(compress, packed), &oracle_dir, true).unwrap();
        let oracle_index = DiskIndex::open(&oracle_dir).unwrap();
        let oracle = NearDupSearcher::new(&oracle_index).unwrap();
        let expected: Vec<SearchOutcome> = queries
            .iter()
            .map(|q| oracle.search(q, THETA).unwrap())
            .collect();

        for shards in SHARD_COUNTS {
            let root = build_store(
                &corpus,
                shards,
                compress,
                packed,
                &format!("grid_{format}_s{shards}"),
            );
            // The store itself must verify end to end: manifest, per-shard
            // serving generations, and per-shard text-range coverage.
            let store = ShardedStore::open(&root).unwrap();
            store.verify().unwrap();
            assert_eq!(store.num_shards(), shards);
            assert_eq!(store.manifest().num_texts(), corpus.num_texts() as u64);

            let view = ShardedIndex::open(&root).unwrap();
            assert_eq!(view.num_shards(), shards);
            assert_eq!(view.num_texts(), corpus.num_texts());
            assert_eq!(view.config().format_name(), format);

            for threads in THREAD_COUNTS {
                let searcher = view.searcher().unwrap().threads(threads);
                for (i, (query, want)) in queries.iter().zip(&expected).enumerate() {
                    let got = searcher.search(query, THETA).unwrap();
                    assert_eq!(
                        got.matches, want.matches,
                        "query {i} diverged ({format}, {shards} shards, {threads} threads)"
                    );
                    assert_eq!(got.beta, want.beta);
                    assert_eq!(got.t, want.t);
                    assert!(got.complete);
                }
            }
            std::fs::remove_dir_all(&root).ok();
        }
        std::fs::remove_dir_all(&oracle_dir).ok();
    }
}

/// Budget trips compose soundly across shards: the merged partial is a
/// text-order prefix of the full (oracle) result, flagged incomplete, no
/// matter which shard tripped. Sweeping the cap upward reaches the
/// complete result.
#[test]
fn governed_partials_are_sound_prefixes_of_the_oracle() {
    let (corpus, queries) = workload();
    let oracle_dir = temp_dir("gov_oracle");
    build_and_write(&corpus, config(false, false), &oracle_dir, true).unwrap();
    let oracle_index = DiskIndex::open(&oracle_dir).unwrap();
    let oracle = NearDupSearcher::new(&oracle_index).unwrap();

    let mut partials = 0usize;
    for shards in [2usize, 4, 8] {
        let root = build_store(&corpus, shards, false, false, &format!("gov_s{shards}"));
        let view = ShardedIndex::open(&root).unwrap();
        let searcher = view.searcher().unwrap().threads(shards);
        for query in &queries {
            let full = oracle.search(query, THETA).unwrap();
            // Caps are apportioned per shard, so sweep global caps around
            // the shard count to make individual shards trip.
            for cap in 0..=(3 * shards as u64) {
                let budget = QueryBudget::unlimited().max_candidates(cap);
                match searcher.search_governed(query, THETA, &budget) {
                    Ok(outcome) => {
                        assert!(outcome.complete);
                        assert_eq!(outcome.matches, full.matches);
                    }
                    Err(QueryError::BudgetExceeded { resource, partial }) => {
                        partials += 1;
                        assert_eq!(resource, Resource::Candidates);
                        assert!(!partial.complete, "partial outcomes must say so");
                        assert!(partial.matches.len() <= full.matches.len());
                        assert_eq!(
                            full.matches[..partial.matches.len()],
                            partial.matches[..],
                            "sharded partial is not a text-order prefix of the oracle \
                             ({shards} shards, cap {cap})"
                        );
                    }
                    Err(e) => panic!("unexpected error under candidate cap: {e}"),
                }
            }
        }
        std::fs::remove_dir_all(&root).ok();
    }
    assert!(partials > 0, "candidate caps this tiny must trip sometimes");
    std::fs::remove_dir_all(&oracle_dir).ok();
}

/// Batch search over a sharded view answers every slot bit-identically to
/// running the same queries one at a time — at every thread count.
#[test]
fn batch_equals_sequential_over_shards() {
    let (corpus, queries) = workload();
    let root = build_store(&corpus, 4, false, true, "batch_s4");
    let view = ShardedIndex::open(&root).unwrap();

    let sequential: Vec<SearchOutcome> = {
        let searcher = view.searcher().unwrap().threads(1);
        queries
            .iter()
            .map(|q| searcher.search(q, THETA).unwrap())
            .collect()
    };
    for threads in THREAD_COUNTS {
        let searcher = view.searcher().unwrap().threads(threads);
        let batch = searcher.search_all(&queries, THETA).unwrap();
        assert_eq!(batch.len(), sequential.len());
        for (i, (got, want)) in batch.iter().zip(&sequential).enumerate() {
            assert_eq!(
                got.matches, want.matches,
                "batch slot {i} diverged from sequential at {threads} threads"
            );
        }
        // Governed batch: per-slot results, same equivalence when nothing
        // trips.
        let governed = searcher.search_all_governed(&queries, THETA, &QueryBudget::unlimited());
        for (i, (got, want)) in governed.iter().zip(&sequential).enumerate() {
            let got = got.as_ref().unwrap_or_else(|e| {
                panic!("governed batch slot {i} failed under an unlimited budget: {e}")
            });
            assert_eq!(got.matches, want.matches);
        }
    }
    std::fs::remove_dir_all(&root).ok();
}

/// The single-shard special case really is special-case-free: a 1-shard
/// store, a plain index directory, and an unsharded generation store all
/// open into the same view type and answer identically.
#[test]
fn one_shard_store_equals_plain_directory() {
    let (corpus, queries) = workload();
    let root = build_store(&corpus, 1, false, false, "single_s1");
    let plain_dir = temp_dir("single_plain");
    build_and_write(&corpus, config(false, false), &plain_dir, true).unwrap();

    let sharded_view = ShardedIndex::open(&root).unwrap();
    let plain_view = ShardedIndex::open(&plain_dir).unwrap();
    assert_eq!(sharded_view.num_shards(), 1);
    assert_eq!(plain_view.num_shards(), 1);
    assert!(sharded_view.manifest_generation().is_some());
    assert!(plain_view.manifest_generation().is_none());

    let a = sharded_view.searcher().unwrap().threads(2);
    let b = plain_view.searcher().unwrap().threads(2);
    for query in &queries {
        let got = a.search(query, THETA).unwrap();
        let want = b.search(query, THETA).unwrap();
        assert_eq!(got.matches, want.matches);
        assert_eq!(
            a.rank(&got, 5)
                .iter()
                .map(|m| (m.text, m.collisions))
                .collect::<Vec<_>>(),
            b.rank(&want, 5)
                .iter()
                .map(|m| (m.text, m.collisions))
                .collect::<Vec<_>>()
        );
    }
    std::fs::remove_dir_all(&root).ok();
    std::fs::remove_dir_all(&plain_dir).ok();
}
