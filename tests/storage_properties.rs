//! Property tests of the storage layer: the compressed codec, zone/block
//! probes, and index merging, over arbitrary inputs.

use proptest::prelude::*;

use ndss::index::codec::{decode_block, encode_block, read_varint, write_varint};
use ndss::index::{inv_file_path, merge_indexes, IndexAccess, Posting};
use ndss::prelude::*;
use ndss::windows::CompactWindow;

/// Strategy: a sorted, valid posting list (texts ascending, l ≤ c ≤ r).
fn posting_list() -> impl Strategy<Value = Vec<Posting>> {
    proptest::collection::vec((0u32..50, 0u32..100, 0u32..20, 0u32..30), 1..120).prop_map(|raw| {
        let mut list: Vec<Posting> = raw
            .into_iter()
            .map(|(text, l, dc, dr)| Posting {
                text,
                window: CompactWindow::new(l, l + dc, l + dc + dr),
            })
            .collect();
        list.sort_unstable();
        list
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn varint_roundtrips(v in proptest::num::u64::ANY) {
        let mut buf = Vec::new();
        write_varint(v, &mut buf);
        let (back, used) = read_varint(&buf).unwrap();
        prop_assert_eq!(back, v);
        prop_assert_eq!(used, buf.len());
    }

    #[test]
    fn codec_roundtrips_arbitrary_sorted_lists(list in posting_list()) {
        let mut encoded = Vec::new();
        encode_block(&list, &mut encoded);
        let mut decoded = Vec::new();
        let used = decode_block(&encoded, list.len(), &mut decoded).unwrap();
        prop_assert_eq!(used, encoded.len());
        prop_assert_eq!(decoded, list);
    }

    #[test]
    fn merge_equals_direct_build_for_random_splits(
        seed in 0u64..1000,
        cut_fraction in 0.1f64..0.9,
    ) {
        let (corpus, _) = SyntheticCorpusBuilder::new(seed)
            .num_texts(24)
            .text_len(40, 90)
            .vocab_size(200)
            .build();
        let all: Vec<Vec<u32>> = (0..corpus.num_texts() as u32)
            .map(|i| corpus.text(i).to_vec())
            .collect();
        let cut = ((all.len() as f64 * cut_fraction) as usize).clamp(1, all.len() - 1);
        let a = InMemoryCorpus::from_texts(all[..cut].to_vec());
        let b = InMemoryCorpus::from_texts(all[cut..].to_vec());

        let config = IndexConfig::new(2, 10, 99);
        let base = std::env::temp_dir()
            .join("ndss_prop_merge")
            .join(format!("{seed}_{cut}"));
        std::fs::remove_dir_all(&base).ok();
        for sub in ["a", "b", "m", "full"] {
            std::fs::create_dir_all(base.join(sub)).unwrap();
        }
        ndss::index::build_and_write(&a, config.clone(), &base.join("a"), false).unwrap();
        ndss::index::build_and_write(&b, config.clone(), &base.join("b"), false).unwrap();
        merge_indexes(&[&base.join("a"), &base.join("b")], &base.join("m")).unwrap();
        ndss::index::build_and_write(&corpus, config, &base.join("full"), false).unwrap();
        for func in 0..2 {
            prop_assert_eq!(
                std::fs::read(inv_file_path(&base.join("m"), func)).unwrap(),
                std::fs::read(inv_file_path(&base.join("full"), func)).unwrap()
            );
        }
        std::fs::remove_dir_all(&base).ok();
    }

    #[test]
    fn per_text_probes_match_full_list_filter(
        seed in 0u64..500,
        probe_text in 0u32..40,
    ) {
        let (corpus, _) = SyntheticCorpusBuilder::new(seed)
            .num_texts(40)
            .text_len(60, 150)
            .vocab_size(100) // long lists with many texts per list
            .build();
        let base = std::env::temp_dir()
            .join("ndss_prop_probe")
            .join(format!("{seed}"));
        for (compress, sub) in [(false, "v1"), (true, "v2")] {
            let dir = base.join(sub);
            std::fs::remove_dir_all(&dir).ok();
            std::fs::create_dir_all(&dir).unwrap();
            let config = IndexConfig::new(1, 8, 3).zone_map(4, 8).compressed(compress);
            let disk = ndss::index::build_and_write(&corpus, config, &dir, false).unwrap();
            // Probe the longest list.
            let hist = disk.list_length_histogram(0).unwrap();
            let longest = hist.last().unwrap().0;
            // Find its hash by scanning memory build.
            let mem = MemoryIndex::build(
                &corpus,
                IndexConfig::new(1, 8, 3),
            )
            .unwrap();
            let (hash, full) = mem
                .sorted_lists(0)
                .into_iter()
                .find(|(_, v)| v.len() as u64 == longest)
                .unwrap();
            let expect: Vec<Posting> = full
                .iter()
                .filter(|p| p.text == probe_text)
                .copied()
                .collect();
            let got = disk.read_postings_for_text(0, hash, probe_text).unwrap();
            prop_assert_eq!(got, expect);
        }
        std::fs::remove_dir_all(&base).ok();
    }
}
