//! Integration of the tokenizer with the corpus and search layers: raw text
//! in, tokenized corpus indexed, matches decoded back to text.

use ndss::corpus::types::CorpusSource;
use ndss::prelude::*;
use proptest::prelude::*;

/// A small "natural-language-like" raw-text corpus built from pseudo-words,
/// with the last text plagiarizing a sentence from the first.
fn raw_corpus() -> Vec<String> {
    let mut texts: Vec<String> = Vec::new();
    for t in 0..12u32 {
        let words: Vec<String> = (0..120)
            .map(|i| PseudoWords::word((t * 7919 + i * 104729) % 900))
            .collect();
        texts.push(words.join(" "));
    }
    // Plagiarize: copy a long middle chunk of text 0 into a fresh text.
    let source = texts[0].clone();
    let chunk: String = source
        .split(' ')
        .skip(20)
        .take(60)
        .collect::<Vec<_>>()
        .join(" ");
    texts.push(format!(
        "{} {} {}",
        PseudoWords::render(&[1, 2, 3]),
        chunk,
        PseudoWords::render(&[4, 5, 6])
    ));
    texts
}

#[test]
fn tokenize_index_search_decode() {
    let raw = raw_corpus();
    let tokenizer = BpeTrainer::new(600).train(raw.iter().map(String::as_str));

    // Tokenize into a corpus.
    let mut corpus = InMemoryCorpus::new();
    for text in &raw {
        corpus.push_text(&tokenizer.encode(text));
    }

    // Index and query with the plagiarized chunk.
    let index = CorpusIndex::build_in_memory(&corpus, SearchParams::new(16, 20, 42)).unwrap();
    let chunk: String = raw[0]
        .split(' ')
        .skip(20)
        .take(60)
        .collect::<Vec<_>>()
        .join(" ");
    let query = tokenizer.encode(&chunk);
    assert!(query.len() >= 20, "query must exceed the length threshold");
    let outcome = index.search(&query, 0.8).unwrap();

    // Both the original (text 0) and the plagiarizing text (last) match.
    let matched: Vec<TextId> = outcome.matches.iter().map(|m| m.text).collect();
    assert!(matched.contains(&0), "original text not found: {matched:?}");
    assert!(
        matched.contains(&(raw.len() as u32 - 1)),
        "plagiarizing text not found: {matched:?}"
    );

    // Decode a merged matched span from text 0 and check it shares words
    // with the chunk.
    let m0 = outcome.matches.iter().find(|m| m.text == 0).unwrap();
    let span = m0.merged_spans(outcome.t)[0];
    let tokens = corpus.sequence_to_vec(SeqRef { text: 0, span }).unwrap();
    let decoded = tokenizer.decode(&tokens);
    let chunk_words: std::collections::HashSet<&str> = chunk.split(' ').collect();
    let shared = decoded
        .split(' ')
        .filter(|w| chunk_words.contains(w))
        .count();
    assert!(
        shared >= 20,
        "decoded match shares only {shared} words with the query chunk"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// BPE round-trips arbitrary ASCII-ish strings after training on an
    /// unrelated corpus.
    #[test]
    fn bpe_roundtrip_arbitrary_text(text in "[ -~]{0,200}") {
        let raw = raw_corpus();
        let tokenizer = BpeTrainer::new(400).train(raw.iter().map(String::as_str));
        prop_assert_eq!(tokenizer.decode(&tokenizer.encode(&text)), text);
    }

    /// Disk corpus round-trips arbitrary token arrays.
    #[test]
    fn disk_corpus_roundtrip(texts in proptest::collection::vec(
        proptest::collection::vec(proptest::num::u32::ANY, 0..50), 1..8)
    ) {
        let dir = std::env::temp_dir().join("ndss_it_roundtrip");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("c{}.ndsc", std::process::id()));
        let mem = InMemoryCorpus::from_texts(texts.clone());
        let disk = ndss::corpus::disk::write_corpus(&mem, &path).unwrap();
        prop_assert_eq!(disk.num_texts(), texts.len());
        for (i, t) in texts.iter().enumerate() {
            prop_assert_eq!(&disk.text_to_vec(i as u32).unwrap(), t);
        }
        std::fs::remove_file(&path).ok();
    }
}
