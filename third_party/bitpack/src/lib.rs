//! Block bitpacking for 128-integer blocks, no registry deps.
//!
//! The layout follows the `BitPacker4x` idiom: a block of 128 `u32` values
//! is split across 4 interleaved lanes (value `i` lives in lane `i % 4` at
//! position `i / 4`), each lane is packed LSB-first at a common bit width
//! `b`, and the lanes' 32-bit little-endian words are interleaved in groups
//! of four. A block therefore always packs to exactly `16·b` bytes
//! (`128·b` bits), byte-aligned for every width `b ∈ 0..=32`.
//!
//! The interleave is what makes SIMD unpacking natural: one 16-byte group
//! holds word `k` of all four lanes, so a 128-bit register can shift/mask
//! four values at once (SSE2), and a 256-bit register two groups at once
//! with AVX2's per-lane variable shifts. All kernels produce bit-identical
//! output; [`unpack`] picks the fastest one the CPU supports at runtime
//! (detection is done once and cached).

#[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
use std::sync::atomic::{AtomicU8, Ordering};

/// Number of values in a packed block.
pub const BLOCK_LEN: usize = 128;

const LANES: usize = 4;
const POSITIONS: usize = BLOCK_LEN / LANES; // 32 positions per lane
const GROUP_BYTES: usize = LANES * 4; // one 32-bit word per lane

/// Packed size in bytes of one block at bit width `bits` (always `16·bits`).
#[inline]
pub const fn packed_len(bits: u8) -> usize {
    bits as usize * (BLOCK_LEN / 8)
}

/// Smallest bit width that can represent every value in `values`.
#[inline]
pub fn num_bits(values: &[u32]) -> u8 {
    let all = values.iter().fold(0u32, |acc, &v| acc | v);
    (32 - all.leading_zeros()) as u8
}

#[inline]
fn width_mask(bits: u8) -> u32 {
    if bits >= 32 {
        u32::MAX
    } else {
        (1u32 << bits) - 1
    }
}

/// Packs `values` at width `bits` into `out` (`out.len()` must be exactly
/// [`packed_len`]`(bits)`). Values must fit in `bits` bits; the caller
/// normally derives `bits` with [`num_bits`].
///
/// Packing is scalar only — it runs once at index-build time, while
/// unpacking runs on every query.
pub fn pack(values: &[u32; BLOCK_LEN], bits: u8, out: &mut [u8]) {
    assert!(bits <= 32, "bit width {bits} out of range");
    assert_eq!(out.len(), packed_len(bits), "packed output length mismatch");
    if bits == 0 {
        return;
    }
    let b = bits as usize;
    let mut words = [0u32; LANES * POSITIONS];
    for (i, &raw) in values.iter().enumerate() {
        let v = raw;
        debug_assert!(
            bits == 32 || v >> bits == 0,
            "value {v} does not fit in {bits} bits"
        );
        let lane = i & (LANES - 1);
        let bitpos = (i >> 2) * b;
        let w0 = bitpos >> 5;
        let sh = bitpos & 31;
        words[LANES * w0 + lane] |= v.wrapping_shl(sh as u32);
        if sh + b > 32 {
            words[LANES * (w0 + 1) + lane] |= v >> (32 - sh);
        }
    }
    for (k, w) in words[..b * LANES].iter().enumerate() {
        out[k * 4..k * 4 + 4].copy_from_slice(&w.to_le_bytes());
    }
}

#[inline]
fn read_word(packed: &[u8], idx: usize) -> u32 {
    u32::from_le_bytes(packed[idx * 4..idx * 4 + 4].try_into().unwrap())
}

/// Reference kernel: portable scalar unpack. Always available.
pub fn unpack_scalar(packed: &[u8], bits: u8, out: &mut [u32; BLOCK_LEN]) {
    check_unpack_args(packed, bits);
    if bits == 0 {
        out.fill(0);
        return;
    }
    if bits == 32 {
        for (i, v) in out.iter_mut().enumerate() {
            *v = read_word(packed, i);
        }
        return;
    }
    let b = bits as usize;
    let mask = width_mask(bits) as u64;
    for (i, v) in out.iter_mut().enumerate() {
        let lane = i & (LANES - 1);
        let bitpos = (i >> 2) * b;
        let w0 = bitpos >> 5;
        let sh = bitpos & 31;
        let lo = read_word(packed, LANES * w0 + lane) as u64;
        let hi = if sh + b > 32 {
            read_word(packed, LANES * (w0 + 1) + lane) as u64
        } else {
            0
        };
        *v = (((lo | (hi << 32)) >> sh) & mask) as u32;
    }
}

#[inline]
fn check_unpack_args(packed: &[u8], bits: u8) {
    assert!(bits <= 32, "bit width {bits} out of range");
    assert_eq!(
        packed.len(),
        packed_len(bits),
        "packed input length mismatch for width {bits}"
    );
}

#[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
mod x86 {
    #[cfg(target_arch = "x86")]
    use std::arch::x86::*;
    #[cfg(target_arch = "x86_64")]
    use std::arch::x86_64::*;

    use super::{check_unpack_args, width_mask, BLOCK_LEN, GROUP_BYTES, LANES, POSITIONS};

    /// SSE2 kernel: one 16-byte group (four lanes' word `k`) per step; all
    /// four lanes of a position share the same shift, so a uniform-count
    /// shift extracts four values at once.
    ///
    /// # Safety
    /// Caller must ensure the CPU supports SSE2.
    #[target_feature(enable = "sse2")]
    pub unsafe fn unpack_sse2(packed: &[u8], bits: u8, out: &mut [u32; BLOCK_LEN]) {
        check_unpack_args(packed, bits);
        if bits == 0 {
            out.fill(0);
            return;
        }
        let b = bits as usize;
        let last_group = b - 1;
        let mask = _mm_set1_epi32(width_mask(bits) as i32);
        let base = packed.as_ptr();
        for pos in 0..POSITIONS {
            let bitpos = pos * b;
            let w0 = bitpos >> 5;
            let sh = (bitpos & 31) as i32;
            // Clamp the carry group: when the value does not cross a word
            // boundary the left shift below is ≥ 32 and contributes nothing
            // (x86 vector shifts with count ≥ 32 yield 0), so any in-bounds
            // load is fine.
            let hi_group = if w0 + 1 > last_group {
                last_group
            } else {
                w0 + 1
            };
            let lo = _mm_loadu_si128(base.add(GROUP_BYTES * w0) as *const __m128i);
            let hi = _mm_loadu_si128(base.add(GROUP_BYTES * hi_group) as *const __m128i);
            let lo_sh = _mm_srl_epi32(lo, _mm_cvtsi32_si128(sh));
            let hi_sh = _mm_sll_epi32(hi, _mm_cvtsi32_si128(32 - sh));
            let v = _mm_and_si128(_mm_or_si128(lo_sh, hi_sh), mask);
            _mm_storeu_si128(out.as_mut_ptr().add(LANES * pos) as *mut __m128i, v);
        }
    }

    /// AVX2 kernel: two groups (eight values) per step. The two positions
    /// in a 256-bit register carry different bit offsets, which AVX2's
    /// per-element variable shifts (`vpsrlvd`/`vpsllvd`) handle directly.
    ///
    /// # Safety
    /// Caller must ensure the CPU supports AVX2.
    #[target_feature(enable = "avx2")]
    pub unsafe fn unpack_avx2(packed: &[u8], bits: u8, out: &mut [u32; BLOCK_LEN]) {
        check_unpack_args(packed, bits);
        if bits == 0 {
            out.fill(0);
            return;
        }
        let b = bits as usize;
        let last_group = b - 1;
        let mask = _mm256_set1_epi32(width_mask(bits) as i32);
        let thirty_two = _mm256_set1_epi32(32);
        let base = packed.as_ptr();
        let mut pos = 0;
        while pos < POSITIONS {
            let bp_a = pos * b;
            let bp_b = (pos + 1) * b;
            let (w0a, sha) = (bp_a >> 5, (bp_a & 31) as i32);
            let (w0b, shb) = (bp_b >> 5, (bp_b & 31) as i32);
            let hia = if w0a + 1 > last_group {
                last_group
            } else {
                w0a + 1
            };
            let hib = if w0b + 1 > last_group {
                last_group
            } else {
                w0b + 1
            };
            let lo = _mm256_inserti128_si256::<1>(
                _mm256_castsi128_si256(_mm_loadu_si128(
                    base.add(GROUP_BYTES * w0a) as *const __m128i
                )),
                _mm_loadu_si128(base.add(GROUP_BYTES * w0b) as *const __m128i),
            );
            let hi = _mm256_inserti128_si256::<1>(
                _mm256_castsi128_si256(_mm_loadu_si128(
                    base.add(GROUP_BYTES * hia) as *const __m128i
                )),
                _mm_loadu_si128(base.add(GROUP_BYTES * hib) as *const __m128i),
            );
            let shv = _mm256_setr_epi32(sha, sha, sha, sha, shb, shb, shb, shb);
            let inv = _mm256_sub_epi32(thirty_two, shv);
            let v = _mm256_and_si256(
                _mm256_or_si256(_mm256_srlv_epi32(lo, shv), _mm256_sllv_epi32(hi, inv)),
                mask,
            );
            _mm256_storeu_si256(out.as_mut_ptr().add(LANES * pos) as *mut __m256i, v);
            pos += 2;
        }
    }
}

/// Which unpack kernel a call used or should use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kernel {
    /// Portable scalar loop.
    Scalar,
    /// 128-bit SSE2 shift/mask kernel (x86 / x86_64).
    Sse2,
    /// 256-bit AVX2 variable-shift kernel (x86 / x86_64).
    Avx2,
}

#[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
fn detect_kernel() -> Kernel {
    // 0 = undetected, 1 = scalar, 2 = sse2, 3 = avx2.
    static DETECTED: AtomicU8 = AtomicU8::new(0);
    match DETECTED.load(Ordering::Relaxed) {
        1 => Kernel::Scalar,
        2 => Kernel::Sse2,
        3 => Kernel::Avx2,
        _ => {
            let k = if std::arch::is_x86_feature_detected!("avx2") {
                Kernel::Avx2
            } else if std::arch::is_x86_feature_detected!("sse2") {
                Kernel::Sse2
            } else {
                Kernel::Scalar
            };
            DETECTED.store(
                match k {
                    Kernel::Scalar => 1,
                    Kernel::Sse2 => 2,
                    Kernel::Avx2 => 3,
                },
                Ordering::Relaxed,
            );
            k
        }
    }
}

#[cfg(not(any(target_arch = "x86", target_arch = "x86_64")))]
fn detect_kernel() -> Kernel {
    Kernel::Scalar
}

/// The kernel [`unpack`] will dispatch to on this CPU.
pub fn active_kernel() -> Kernel {
    detect_kernel()
}

/// Every kernel this CPU can run (always includes [`Kernel::Scalar`]).
pub fn available_kernels() -> Vec<Kernel> {
    let mut kernels = vec![Kernel::Scalar];
    #[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
    {
        if std::arch::is_x86_feature_detected!("sse2") {
            kernels.push(Kernel::Sse2);
        }
        if std::arch::is_x86_feature_detected!("avx2") {
            kernels.push(Kernel::Avx2);
        }
    }
    kernels
}

/// Unpacks one block with an explicit kernel. Panics if the kernel is not
/// supported on this CPU (use [`available_kernels`] to enumerate).
pub fn unpack_with(kernel: Kernel, packed: &[u8], bits: u8, out: &mut [u32; BLOCK_LEN]) {
    match kernel {
        Kernel::Scalar => unpack_scalar(packed, bits, out),
        #[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
        Kernel::Sse2 => {
            assert!(
                std::arch::is_x86_feature_detected!("sse2"),
                "SSE2 not available on this CPU"
            );
            // SAFETY: feature checked just above.
            unsafe { x86::unpack_sse2(packed, bits, out) }
        }
        #[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
        Kernel::Avx2 => {
            assert!(
                std::arch::is_x86_feature_detected!("avx2"),
                "AVX2 not available on this CPU"
            );
            // SAFETY: feature checked just above.
            unsafe { x86::unpack_avx2(packed, bits, out) }
        }
        #[cfg(not(any(target_arch = "x86", target_arch = "x86_64")))]
        _ => unpack_scalar(packed, bits, out),
    }
}

/// Unpacks one block using the fastest kernel this CPU supports.
///
/// `packed.len()` must be exactly [`packed_len`]`(bits)` and `bits ≤ 32`;
/// both are asserted, so corrupt on-disk widths must be validated by the
/// caller *before* reaching this point.
#[inline]
pub fn unpack(packed: &[u8], bits: u8, out: &mut [u32; BLOCK_LEN]) {
    unpack_with(detect_kernel(), packed, bits, out)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Splitmix64, for seed-deterministic random blocks.
    struct Rng(u64);

    impl Rng {
        fn next(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    fn random_block(seed: u64, bits: u8) -> [u32; BLOCK_LEN] {
        let mut rng = Rng(seed);
        let mask = width_mask(bits);
        std::array::from_fn(|_| rng.next() as u32 & mask)
    }

    #[test]
    fn packed_len_is_sixteen_times_bits() {
        for bits in 0..=32u8 {
            assert_eq!(packed_len(bits), 16 * bits as usize);
        }
    }

    #[test]
    fn num_bits_matches_widest_value() {
        assert_eq!(num_bits(&[0, 0, 0]), 0);
        assert_eq!(num_bits(&[1]), 1);
        assert_eq!(num_bits(&[255, 3]), 8);
        assert_eq!(num_bits(&[256]), 9);
        assert_eq!(num_bits(&[u32::MAX]), 32);
    }

    #[test]
    fn scalar_roundtrip_every_width() {
        for bits in 0..=32u8 {
            let values = random_block(1000 + bits as u64, bits);
            let mut packed = vec![0u8; packed_len(bits)];
            pack(&values, bits, &mut packed);
            let mut out = [0u32; BLOCK_LEN];
            unpack_scalar(&packed, bits, &mut out);
            assert_eq!(out, values, "width {bits}");
        }
    }

    #[test]
    fn all_kernels_agree_on_random_blocks_at_every_width() {
        let kernels = available_kernels();
        for bits in 0..=32u8 {
            for seed in 0..8u64 {
                let values = random_block(seed * 131 + bits as u64, bits);
                let mut packed = vec![0u8; packed_len(bits)];
                pack(&values, bits, &mut packed);
                for &k in &kernels {
                    let mut out = [0u32; BLOCK_LEN];
                    unpack_with(k, &packed, bits, &mut out);
                    assert_eq!(out, values, "kernel {k:?} width {bits} seed {seed}");
                }
            }
        }
    }

    #[test]
    fn extreme_blocks_roundtrip() {
        for bits in 1..=32u8 {
            let mask = width_mask(bits);
            for values in [[0u32; BLOCK_LEN], [mask; BLOCK_LEN]] {
                let mut packed = vec![0u8; packed_len(bits)];
                pack(&values, bits, &mut packed);
                for &k in &available_kernels() {
                    let mut out = [0u32; BLOCK_LEN];
                    unpack_with(k, &packed, bits, &mut out);
                    assert_eq!(out, values, "kernel {k:?} width {bits}");
                }
            }
        }
    }

    #[test]
    fn dispatch_unpack_matches_scalar() {
        for bits in [0u8, 1, 5, 13, 17, 31, 32] {
            let values = random_block(7 + bits as u64, bits);
            let mut packed = vec![0u8; packed_len(bits)];
            pack(&values, bits, &mut packed);
            let mut via_dispatch = [0u32; BLOCK_LEN];
            unpack(&packed, bits, &mut via_dispatch);
            assert_eq!(via_dispatch, values);
        }
        // The detected kernel must be one the CPU actually supports.
        assert!(available_kernels().contains(&active_kernel()));
    }

    #[test]
    #[should_panic(expected = "packed input length mismatch")]
    fn unpack_rejects_wrong_length() {
        let mut out = [0u32; BLOCK_LEN];
        unpack_scalar(&[0u8; 15], 1, &mut out);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn unpack_rejects_oversized_width() {
        let mut out = [0u32; BLOCK_LEN];
        unpack_scalar(&[0u8; 16], 33, &mut out);
    }
}
