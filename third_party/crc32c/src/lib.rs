//! CRC-32C (Castagnoli) — software implementation, no registry deps.
//!
//! Work-alike of the `crc32c` crate surface this workspace uses: the
//! one-shot [`crc32c`] function, the streaming [`crc32c_append`], and the
//! incremental [`Crc32c`] hasher. The polynomial (0x1EDC6F41, reflected
//! 0x82F63B78) is the one hardware CRC instructions implement, so artifacts
//! checksummed here stay verifiable by any standard CRC-32C tool.
//!
//! The implementation is slicing-by-8 over tables built at first use: ~1–2
//! GB/s in software, which is far faster than the disk reads it guards.

use std::sync::OnceLock;

const POLY: u32 = 0x82F63B78; // reflected Castagnoli polynomial

/// 8 tables × 256 entries for slicing-by-8.
fn tables() -> &'static [[u32; 256]; 8] {
    static TABLES: OnceLock<[[u32; 256]; 8]> = OnceLock::new();
    TABLES.get_or_init(|| {
        let mut t = [[0u32; 256]; 8];
        for i in 0..256u32 {
            let mut crc = i;
            for _ in 0..8 {
                crc = if crc & 1 != 0 {
                    (crc >> 1) ^ POLY
                } else {
                    crc >> 1
                };
            }
            t[0][i as usize] = crc;
        }
        for i in 0..256 {
            let mut crc = t[0][i];
            for slice in 1..8 {
                crc = t[0][(crc & 0xFF) as usize] ^ (crc >> 8);
                t[slice][i] = crc;
            }
        }
        t
    })
}

/// Appends `data` to a running CRC-32C. `crc` is the value returned by a
/// previous call (or 0 to start).
pub fn crc32c_append(crc: u32, data: &[u8]) -> u32 {
    let t = tables();
    let mut crc = !crc;
    let mut chunks = data.chunks_exact(8);
    for chunk in &mut chunks {
        let low = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]) ^ crc;
        let high = u32::from_le_bytes([chunk[4], chunk[5], chunk[6], chunk[7]]);
        crc = t[7][(low & 0xFF) as usize]
            ^ t[6][((low >> 8) & 0xFF) as usize]
            ^ t[5][((low >> 16) & 0xFF) as usize]
            ^ t[4][(low >> 24) as usize]
            ^ t[3][(high & 0xFF) as usize]
            ^ t[2][((high >> 8) & 0xFF) as usize]
            ^ t[1][((high >> 16) & 0xFF) as usize]
            ^ t[0][(high >> 24) as usize];
    }
    for &b in chunks.remainder() {
        crc = t[0][((crc ^ b as u32) & 0xFF) as usize] ^ (crc >> 8);
    }
    !crc
}

/// One-shot CRC-32C of `data`.
pub fn crc32c(data: &[u8]) -> u32 {
    crc32c_append(0, data)
}

/// Incremental CRC-32C hasher for streaming writers.
#[derive(Debug, Clone, Copy, Default)]
pub struct Crc32c {
    crc: u32,
}

impl Crc32c {
    /// Starts a fresh checksum.
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds `data` into the checksum.
    pub fn update(&mut self, data: &[u8]) {
        self.crc = crc32c_append(self.crc, data);
    }

    /// The checksum of everything updated so far.
    pub fn finalize(&self) -> u32 {
        self.crc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Bit-at-a-time reference, independent of the table construction.
    fn reference(data: &[u8]) -> u32 {
        let mut crc = !0u32;
        for &b in data {
            crc ^= b as u32;
            for _ in 0..8 {
                crc = if crc & 1 != 0 {
                    (crc >> 1) ^ POLY
                } else {
                    crc >> 1
                };
            }
        }
        !crc
    }

    #[test]
    fn known_vectors() {
        // RFC 3720 / standard CRC-32C test vectors.
        assert_eq!(crc32c(b""), 0);
        assert_eq!(crc32c(b"123456789"), 0xE306_9283);
        assert_eq!(crc32c(&[0u8; 32]), 0x8A91_36AA);
        assert_eq!(crc32c(&[0xFFu8; 32]), 0x62A8_AB43);
    }

    #[test]
    fn sliced_tables_match_bitwise_reference() {
        let data: Vec<u8> = (0..4096u32)
            .map(|i| (i.wrapping_mul(2654435761) >> 13) as u8)
            .collect();
        for len in [0, 1, 7, 8, 9, 63, 64, 65, 1000, 4096] {
            assert_eq!(crc32c(&data[..len]), reference(&data[..len]), "len {len}");
        }
    }

    #[test]
    fn append_equals_oneshot_at_every_split() {
        let data: Vec<u8> = (0..253u32).map(|i| (i * 7 + 3) as u8).collect();
        let whole = crc32c(&data);
        for cut in 0..=data.len() {
            let partial = crc32c(&data[..cut]);
            assert_eq!(crc32c_append(partial, &data[cut..]), whole, "cut {cut}");
        }
    }

    #[test]
    fn incremental_hasher_matches() {
        let data: Vec<u8> = (0..1000u32).map(|i| (i % 251) as u8).collect();
        let mut h = Crc32c::new();
        for chunk in data.chunks(17) {
            h.update(chunk);
        }
        assert_eq!(h.finalize(), crc32c(&data));
    }

    #[test]
    fn detects_single_bit_flips() {
        let mut data = b"near-duplicate sequence search".to_vec();
        let clean = crc32c(&data);
        for byte in 0..data.len() {
            for bit in 0..8 {
                data[byte] ^= 1 << bit;
                assert_ne!(crc32c(&data), clean, "missed flip at {byte}:{bit}");
                data[byte] ^= 1 << bit;
            }
        }
    }
}
