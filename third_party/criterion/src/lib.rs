//! Offline work-alike of the `criterion` surface this workspace uses.
//!
//! The build environment cannot reach crates.io, so the real criterion is
//! unavailable. This crate keeps the bench files source-compatible —
//! `criterion_group!`/`criterion_main!`, `Criterion`, benchmark groups,
//! `BenchmarkId`, `Throughput`, and `Bencher::iter` — and implements a
//! simple but honest measurement loop: per benchmark it warms up for the
//! configured warm-up time, then runs timed batches until the measurement
//! time elapses (at least `sample_size` batches), and reports min / mean /
//! max per-iteration wall time plus derived throughput.
//!
//! A filter argument (as passed by `cargo bench -- <filter>`) restricts
//! which benchmark ids run; `--list` prints ids without running.

use std::fmt;
use std::time::{Duration, Instant};

/// Top-level benchmark driver and its configuration.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    filter: Option<String>,
    list_only: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 100,
            measurement_time: Duration::from_secs(5),
            warm_up_time: Duration::from_secs(3),
            filter: None,
            list_only: false,
        }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample size must be at least 2");
        self.sample_size = n;
        self
    }

    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.measurement_time = t;
        self
    }

    pub fn warm_up_time(mut self, t: Duration) -> Self {
        self.warm_up_time = t;
        self
    }

    /// Applies `cargo bench` CLI arguments (a positional name filter and
    /// `--list`); unknown flags are ignored so harness options stay inert.
    pub fn configure_from_args(mut self) -> Self {
        let mut args = std::env::args().skip(1).peekable();
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--list" => self.list_only = true,
                "--bench" | "--test" => {}
                // `--profile-time <secs>` takes a value; skipping a missing
                // value is harmless at the end.
                "--profile-time" => {
                    args.next();
                }
                flag if flag.starts_with('-') => {}
                name if self.filter.is_none() => self.filter = Some(name.to_string()),
                _ => {}
            }
        }
        self
    }

    fn should_run(&self, id: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| id.contains(f))
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }

    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run_one(id.to_string(), None, f);
        self
    }

    fn run_one<F>(&self, id: String, throughput: Option<Throughput>, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        if !self.should_run(&id) {
            return;
        }
        if self.list_only {
            println!("{id}: benchmark");
            return;
        }
        let mut bencher = Bencher {
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            warm_up_time: self.warm_up_time,
            samples: Vec::new(),
        };
        f(&mut bencher);
        bencher.report(&id, throughput);
    }
}

/// A named group of related benchmarks sharing a throughput setting.
pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn throughput(&mut self, throughput: Throughput) {
        self.throughput = Some(throughput);
    }

    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = format!("{}/{}", self.name, id.into_benchmark_id());
        self.criterion.run_one(id, self.throughput, f);
        self
    }

    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = format!("{}/{}", self.name, id.into_benchmark_id());
        self.criterion.run_one(id, self.throughput, |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

/// A benchmark id: either a plain string or `BenchmarkId::new(name, param)`.
pub trait IntoBenchmarkId {
    fn into_benchmark_id(self) -> String;
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> String {
        self
    }
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> String {
        self.0
    }
}

#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId(format!("{}/{}", function_name.into(), parameter))
    }
}

/// Work-per-iteration declaration, folded into the report as a rate.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// Passed to the measured closure; `iter` runs the timing loop.
pub struct Bencher {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    samples: Vec<Duration>,
}

impl Bencher {
    pub fn iter<O, F>(&mut self, mut routine: F)
    where
        F: FnMut() -> O,
    {
        // Warm-up: run untimed and estimate per-iteration cost.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up_time || warm_iters == 0 {
            std::hint::black_box(routine());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed() / warm_iters.max(1) as u32;

        // Size batches so one batch is roughly a sample_size-th of the
        // measurement window, with at least one iteration per batch.
        let batch = (self.measurement_time.as_nanos()
            / (self.sample_size as u128 * per_iter.as_nanos().max(1)))
        .clamp(1, u32::MAX as u128) as u64;

        self.samples.clear();
        let measure_start = Instant::now();
        loop {
            let batch_start = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(routine());
            }
            self.samples.push(batch_start.elapsed() / batch as u32);
            if measure_start.elapsed() >= self.measurement_time
                && self.samples.len() >= self.sample_size.min(10)
            {
                break;
            }
        }
    }

    fn report(&self, id: &str, throughput: Option<Throughput>) {
        if self.samples.is_empty() {
            println!("{id:<50} (no samples — closure never called iter)");
            return;
        }
        let min = self.samples.iter().min().unwrap();
        let max = self.samples.iter().max().unwrap();
        let mean = self.samples.iter().sum::<Duration>() / self.samples.len() as u32;
        let rate = match throughput {
            Some(Throughput::Elements(n)) => {
                format!(
                    "  {:>14}/s",
                    human_rate(n as f64 / mean.as_secs_f64(), "elem")
                )
            }
            Some(Throughput::Bytes(n)) => {
                format!("  {:>14}/s", human_rate(n as f64 / mean.as_secs_f64(), "B"))
            }
            None => String::new(),
        };
        println!(
            "{id:<50} time: [{} {} {}]{rate}",
            human_time(*min),
            human_time(mean),
            human_time(*max),
        );
    }
}

fn human_time(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.2} s", nanos as f64 / 1e9)
    }
}

fn human_rate(per_sec: f64, unit: &str) -> String {
    if per_sec >= 1e9 {
        format!("{:.2} G{unit}", per_sec / 1e9)
    } else if per_sec >= 1e6 {
        format!("{:.2} M{unit}", per_sec / 1e6)
    } else if per_sec >= 1e3 {
        format!("{:.2} K{unit}", per_sec / 1e3)
    } else {
        format!("{per_sec:.1} {unit}")
    }
}

/// Re-export so `criterion::black_box` keeps working if a bench imports it.
pub use std::hint::black_box;

#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = ($config).configure_from_args();
            $(
                $target(&mut criterion);
            )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $(
                $group();
            )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast_criterion() -> Criterion {
        Criterion::default()
            .sample_size(2)
            .measurement_time(Duration::from_millis(5))
            .warm_up_time(Duration::from_millis(1))
    }

    #[test]
    fn bench_function_runs_the_routine() {
        let mut c = fast_criterion();
        let mut calls = 0u64;
        c.bench_function("smoke", |b| b.iter(|| calls += 1));
        assert!(calls > 0);
    }

    #[test]
    fn groups_compose_ids_and_respect_filters() {
        let mut c = fast_criterion();
        c.filter = Some("nomatch".into());
        let mut calls = 0u64;
        {
            let mut g = c.benchmark_group("grp");
            g.throughput(Throughput::Elements(10));
            g.bench_with_input(BenchmarkId::new("f", 3), &3u32, |b, &x| {
                b.iter(|| calls += x as u64)
            });
            g.finish();
        }
        assert_eq!(calls, 0, "filtered-out benchmark must not run");
    }

    #[test]
    fn benchmark_id_formats_like_criterion() {
        assert_eq!(
            BenchmarkId::new("theta", "0.8").into_benchmark_id(),
            "theta/0.8"
        );
    }
}
