//! Offline work-alike of the `proptest` surface this workspace uses.
//!
//! The build environment has no network access to crates.io, so the real
//! proptest cannot be vendored. This crate re-implements the small slice of
//! its API that the integration tests rely on — `proptest!`, `prop_assert*`,
//! `Strategy`/`prop_map`, `collection::vec`, integer/float range strategies,
//! `num::*::ANY`, and simple `[class]{m,n}` string patterns — with a
//! deterministic per-test RNG instead of shrinking: a failing case panics
//! with the full input set so it can be replayed as a unit test.

use std::fmt;
use std::ops::Range;

/// Deterministic per-test RNG (SplitMix64 seeded from the test name).
#[derive(Debug, Clone)]
pub struct TestRng(u64);

impl TestRng {
    pub fn deterministic(name: &str) -> Self {
        let mut h: u64 = 0xcbf29ce484222325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        TestRng(h)
    }

    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, n)`; `n` must be non-zero.
    pub fn below(&mut self, n: u64) -> u64 {
        // Multiply-shift keeps the bias negligible for the small ranges
        // property tests use (no range here approaches 2^64).
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A value generator. Unlike real proptest there is no shrinking tree;
/// `generate` produces one value per case.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! int_range_strategy {
    ($($ty:ty),+) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;

            fn generate(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "empty strategy range");
                let width = (self.end - self.start) as u64;
                self.start + rng.below(width) as $ty
            }
        }
    )+};
}

int_range_strategy!(u8, u16, u32, usize, i64);

impl Strategy for Range<u64> {
    type Value = u64;

    fn generate(&self, rng: &mut TestRng) -> u64 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + rng.below(self.end - self.start)
    }
}

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + (self.end - self.start) * rng.unit_f64()
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident),+))+) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )+};
}

tuple_strategy! {
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
}

/// String-pattern strategy: a `&str` used as a strategy is parsed as a tiny
/// regex of literal chars and `[a-z...]` classes, each with an optional
/// `{m,n}` / `{n}` / `?` / `*` / `+` quantifier. This covers patterns like
/// `"[ -~]{0,200}"`; anything fancier panics loudly.
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let items = parse_pattern(self);
        let mut out = String::new();
        for (chars, lo, hi) in &items {
            let n = lo + rng.below((hi - lo + 1) as u64) as usize;
            for _ in 0..n {
                out.push(chars[rng.below(chars.len() as u64) as usize]);
            }
        }
        out
    }
}

type PatternItem = (Vec<char>, usize, usize);

fn parse_pattern(pattern: &str) -> Vec<PatternItem> {
    let mut items: Vec<PatternItem> = Vec::new();
    let mut chars = pattern.chars().peekable();
    while let Some(c) = chars.next() {
        let alternatives: Vec<char> = match c {
            '[' => {
                let mut set = Vec::new();
                let mut prev: Option<char> = None;
                loop {
                    match chars.next() {
                        None => panic!("unterminated character class in pattern {pattern:?}"),
                        Some(']') => break,
                        Some('-') if prev.is_some() && chars.peek() != Some(&']') => {
                            let hi = chars.next().unwrap();
                            let lo = prev.take().unwrap();
                            set.pop();
                            for v in lo as u32..=hi as u32 {
                                set.push(char::from_u32(v).unwrap());
                            }
                        }
                        Some('\\') => {
                            let c = chars.next().expect("trailing escape");
                            set.push(c);
                            prev = Some(c);
                        }
                        Some(c) => {
                            set.push(c);
                            prev = Some(c);
                        }
                    }
                }
                set
            }
            '\\' => vec![chars.next().expect("trailing escape")],
            '{' | '}' | '?' | '*' | '+' => {
                panic!("unsupported pattern construct '{c}' in {pattern:?}")
            }
            c => vec![c],
        };
        let (lo, hi) = match chars.peek() {
            Some('{') => {
                chars.next();
                let spec: String = chars.by_ref().take_while(|&c| c != '}').collect();
                match spec.split_once(',') {
                    Some((lo, hi)) => (
                        lo.trim().parse().expect("bad quantifier"),
                        hi.trim().parse().expect("bad quantifier"),
                    ),
                    None => {
                        let n = spec.trim().parse().expect("bad quantifier");
                        (n, n)
                    }
                }
            }
            Some('?') => {
                chars.next();
                (0, 1)
            }
            Some('*') => {
                chars.next();
                (0, 8)
            }
            Some('+') => {
                chars.next();
                (1, 8)
            }
            _ => (1, 1),
        };
        assert!(!alternatives.is_empty(), "empty character class");
        items.push((alternatives, lo, hi));
    }
    items
}

/// Collection strategies.
pub mod collection {
    use super::{Range, Strategy, TestRng};

    pub struct VecStrategy<S> {
        elem: S,
        size: Range<usize>,
    }

    /// A `Vec` whose length is drawn from `size` (half-open, like proptest's
    /// `1..120`) and whose elements come from `elem`.
    pub fn vec<S: Strategy>(elem: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty size range");
        VecStrategy { elem, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len =
                self.size.start + rng.below((self.size.end - self.size.start) as u64) as usize;
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

/// Full-domain numeric strategies (`proptest::num::u64::ANY` etc.).
pub mod num {
    macro_rules! any_mod {
        ($($mod_name:ident => $ty:ty),+) => {$(
            pub mod $mod_name {
                pub struct Any;
                pub const ANY: Any = Any;

                impl crate::Strategy for Any {
                    type Value = $ty;

                    fn generate(&self, rng: &mut crate::TestRng) -> $ty {
                        rng.next_u64() as $ty
                    }
                }
            }
        )+};
    }

    any_mod!(u32 => u32, u64 => u64);
}

/// Per-`proptest!` block configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A failed property case. `prop_assert*` and explicit `TestCaseError::fail`
/// produce this; the `proptest!` harness panics with it plus the inputs.
#[derive(Debug, Clone)]
pub struct TestCaseError(String);

impl TestCaseError {
    pub fn fail(reason: impl Into<String>) -> Self {
        TestCaseError(reason.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for TestCaseError {}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            __l,
            __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "{}\n  left: {:?}\n right: {:?}",
            ::std::format!($($fmt)+),
            __l,
            __r
        );
    }};
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($config:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
    )+) => {$(
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $config;
            let mut __rng = $crate::TestRng::deterministic(stringify!($name));
            for __case in 0..__config.cases {
                $(
                    let $arg = $crate::Strategy::generate(&($strategy), &mut __rng);
                )+
                let __inputs = {
                    let mut __s = ::std::string::String::new();
                    $(
                        __s.push_str(&::std::format!(
                            "\n  {} = {:?}",
                            stringify!($arg),
                            &$arg
                        ));
                    )+
                    __s
                };
                #[allow(clippy::redundant_closure_call)]
                let __result: ::core::result::Result<(), $crate::TestCaseError> = (move || {
                    $body
                    ::core::result::Result::Ok(())
                })();
                if let ::core::result::Result::Err(__err) = __result {
                    ::core::panic!(
                        "property {} failed on case {}/{}: {}\ninputs:{}",
                        stringify!($name),
                        __case + 1,
                        __config.cases,
                        __err,
                        __inputs
                    );
                }
            }
        }
    )+};
}

/// Everything the test files import with `use proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, proptest, ProptestConfig, Strategy, TestCaseError,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn rng_is_deterministic_per_name() {
        let mut a = crate::TestRng::deterministic("x");
        let mut b = crate::TestRng::deterministic("x");
        let mut c = crate::TestRng::deterministic("y");
        let (va, vb, vc) = (a.next_u64(), b.next_u64(), c.next_u64());
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::TestRng::deterministic("bounds");
        for _ in 0..1000 {
            let v = Strategy::generate(&(5u32..17), &mut rng);
            assert!((5..17).contains(&v));
            let f = Strategy::generate(&(0.25f64..0.75), &mut rng);
            assert!((0.25..0.75).contains(&f));
            let n = Strategy::generate(&(3usize..4), &mut rng);
            assert_eq!(n, 3);
        }
    }

    #[test]
    fn vec_and_tuple_strategies_compose() {
        let mut rng = crate::TestRng::deterministic("compose");
        let strat = crate::collection::vec((0u32..10, 0u32..5), 2..6).prop_map(|v| v.len());
        for _ in 0..100 {
            let len = strat.generate(&mut rng);
            assert!((2..6).contains(&len));
        }
    }

    #[test]
    fn string_pattern_generates_printable_ascii() {
        let mut rng = crate::TestRng::deterministic("ascii");
        for _ in 0..200 {
            let s = Strategy::generate(&"[ -~]{0,200}", &mut rng);
            assert!(s.len() <= 200);
            assert!(s.chars().all(|c| (' '..='~').contains(&c)), "{s:?}");
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn harness_runs_and_passes(v in 0u64..100, w in crate::collection::vec(0u32..9, 1..4)) {
            prop_assert!(v < 100);
            prop_assert_eq!(w.len(), w.len());
        }
    }

    #[test]
    fn failing_property_panics_with_inputs() {
        proptest! {
            fn always_fails(v in 0u32..10) {
                prop_assert!(v > 100, "v was {}", v);
            }
        }
        let caught = std::panic::catch_unwind(always_fails);
        let msg = *caught.unwrap_err().downcast::<String>().unwrap();
        assert!(msg.contains("always_fails"), "{msg}");
        assert!(msg.contains("inputs:"), "{msg}");
    }
}
